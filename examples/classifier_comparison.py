"""Classifier comparison on paper datasets (Table 2 in miniature).

Run with::

    python examples/classifier_comparison.py [--datasets CT ALL] [--scale 0.04]

For each chosen dataset: split samples into the paper's train/test sizes,
discretize with entropy-MDL fitted on the training samples, train the IRG
classifier, CBA and the linear SVM, and report test accuracies plus what
the IRG classifier actually learned (its top rule groups).
"""

import argparse

from repro.classify.cba import CBAClassifier
from repro.classify.evaluate import (
    evaluate_matrix_based,
    evaluate_rule_based,
    split_matrix,
)
from repro.classify.irg import IRGClassifier
from repro.classify.svm import LinearSVM
from repro.data.discretize import EntropyMDLDiscretizer
from repro.data.registry import PAPER_DATASETS, load, train_test_rows


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--datasets", nargs="+", default=["CT", "ALL"])
    parser.add_argument("--scale", type=float, default=0.04)
    arguments = parser.parse_args()

    for name in arguments.datasets:
        spec = PAPER_DATASETS[name.upper()]
        matrix = load(spec.name, scale=arguments.scale)
        train_rows, test_rows = train_test_rows(spec)
        train, test = split_matrix(matrix, train_rows, test_rows)
        print(
            f"\n=== {spec.long_name} ({spec.name}): "
            f"{len(train_rows)} train / {len(test_rows)} test, "
            f"{matrix.n_genes} genes ==="
        )

        discretizer = EntropyMDLDiscretizer()
        irg = IRGClassifier()
        irg_accuracy = evaluate_rule_based(irg, train, test, discretizer)
        print(f"IRG classifier : {irg_accuracy:7.2%}")

        cba_accuracy = evaluate_rule_based(
            CBAClassifier(), train, test, EntropyMDLDiscretizer()
        )
        print(f"CBA            : {cba_accuracy:7.2%}")

        svm_accuracy = evaluate_matrix_based(LinearSVM(seed=0), train, test)
        print(f"linear SVM     : {svm_accuracy:7.2%}")

        train_items = discretizer.transform(train)
        print(
            f"\nIRG classifier keeps {len(irg.rules)} rule groups "
            f"(default class: {irg.default_class}); the top ones:"
        )
        for group in irg.rules[:3]:
            lowers = ", ".join(
                train_items.format_itemset(bound)
                for bound in (group.lower_bounds or ())[:2]
            )
            print(
                f"  -> {group.consequent}: conf={group.confidence:.2f} "
                f"sup={group.support}  fires on {lowers or '(upper bound)'}"
            )


if __name__ == "__main__":
    main()
