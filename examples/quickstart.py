"""Quickstart: mine interesting rule groups from a synthetic microarray.

Run with::

    python examples/quickstart.py

Generates a small two-class expression matrix with planted co-regulated
gene blocks, discretizes it the way the paper's efficiency experiments do
(equal-depth, 10 buckets), mines the interesting rule groups for the
cancer class, and prints each group with its upper bound, lower bounds
and statistics.
"""

from repro import EqualDepthDiscretizer, mine_irgs
from repro.data.synthetic import BlockSpec, make_microarray


def main() -> None:
    # A 40-sample, 60-gene cohort: the first block of genes activates in
    # cancer samples, the second in normal samples, the rest is noise.
    matrix = make_microarray(
        n_samples=40,
        n_genes=60,
        n_class1=10,
        blocks=[
            BlockSpec(size=4, target_class=0, shift=5.0, penetrance=0.9),
            BlockSpec(size=4, target_class=1, shift=5.0, penetrance=0.9),
        ],
        class_labels=("cancer", "normal"),
        n_subtypes=0,
        seed=42,
        name="quickstart",
    )
    print(f"matrix: {matrix.n_samples} samples x {matrix.n_genes} genes")

    # 4 buckets puts ~10 samples per bucket — matching the block's ~9
    # active samples, so the block's genes co-discretize into one bucket
    # and the mined groups have multi-gene upper bounds.
    data = EqualDepthDiscretizer(n_buckets=4).fit_transform(matrix)
    print(f"discretized: {data.n_items} items, {data.max_row_length()} per row")

    result = mine_irgs(
        data,
        consequent="cancer",
        minsup=4,
        minconf=0.9,
        compute_lower_bounds=True,
    )
    print(
        f"\n{len(result.groups)} interesting rule groups "
        f"(minsup=4, minconf=0.9) in {result.elapsed_seconds:.3f}s, "
        f"{result.counters.nodes} search nodes\n"
    )
    for rank, group in enumerate(result.sorted_groups()[:5], start=1):
        print(f"--- rule group #{rank} ({group.member_count()} member rules)")
        print(group.format(data))
        print()


if __name__ == "__main__":
    main()
