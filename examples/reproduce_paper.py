"""Regenerate every table and figure of the paper's evaluation section.

Run with::

    python examples/reproduce_paper.py                  # full run (~tens of minutes)
    python examples/reproduce_paper.py --quick          # small-scale smoke run
    python examples/reproduce_paper.py --artifacts fig10 table2

Produces plain-text counterparts of Table 1, Figure 10(a-f), Figure
11(a-f), Table 2, the Section 4.1.3 replication experiment and the two
ablations, in the order the paper presents them.  See EXPERIMENTS.md for
a recorded run and the paper-vs-measured comparison.
"""

import argparse
import sys
import time

from repro import experiments


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--artifacts",
        nargs="+",
        default=["table1", "fig10", "fig11", "table2", "scaling", "ablation"],
        choices=["table1", "fig10", "fig11", "table2", "scaling", "ablation"],
    )
    parser.add_argument("--scale", type=float, default=0.08)
    parser.add_argument("--timeout", type=float, default=60.0)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="tiny scale + short timeouts (CI smoke run)",
    )
    parser.add_argument(
        "--charts",
        action="store_true",
        help="also draw the figures as ASCII log-scale charts",
    )
    parser.add_argument(
        "--datasets", nargs="+", default=["LC", "BC", "PC", "ALL", "CT"]
    )
    arguments = parser.parse_args()
    if arguments.quick:
        arguments.scale = 0.02
        arguments.timeout = 20.0

    datasets = tuple(name.upper() for name in arguments.datasets)
    started = time.perf_counter()

    if "table1" in arguments.artifacts:
        print(experiments.table1_report(
            experiments.run_table1(datasets, scale=arguments.scale)
        ))
        print()

    if "fig10" in arguments.artifacts:
        results = experiments.run_fig10(
            datasets, scale=arguments.scale, timeout=arguments.timeout
        )
        print(experiments.fig10_report(results))
        if arguments.charts:
            for name, series in results.items():
                print()
                print(
                    experiments.ascii_chart(
                        f"Figure 10 ({name})", series[:3]
                    )
                )
        print()

    if "fig11" in arguments.artifacts:
        results = experiments.run_fig11(
            datasets, scale=arguments.scale, timeout=arguments.timeout
        )
        print(experiments.fig11_report(results))
        if arguments.charts:
            for name, series in results.items():
                print()
                print(
                    experiments.ascii_chart(
                        f"Figure 11 ({name})", series[:2]
                    )
                )
        print()

    if "table2" in arguments.artifacts:
        rows = experiments.run_table2(
            datasets, scale=min(arguments.scale, 0.08)
        )
        print(experiments.table2_report(rows))
        print()

    if "scaling" in arguments.artifacts:
        series = experiments.run_scaling(
            dataset="CT",
            scale=arguments.scale,
            timeout=arguments.timeout,
            factors=(1, 2, 3) if arguments.quick else (1, 2, 3, 4, 5),
        )
        print(experiments.scaling_report(series, dataset="CT"))
        print()

    if "ablation" in arguments.artifacts:
        rows = experiments.run_pruning_ablation(
            dataset="CT",
            scale=min(arguments.scale, 0.04),
            timeout=arguments.timeout,
        )
        print(experiments.pruning_ablation_report(rows))
        print()
        print(
            experiments.minelb_ablation_report(
                experiments.run_minelb_ablation(
                    dataset="CT", scale=min(arguments.scale, 0.04)
                )
            )
        )
        print()

    print(f"total: {time.perf_counter() - started:.1f}s")
    return 0


if __name__ == "__main__":
    sys.exit(main())
