"""Gene-network construction from rule groups (intro application #2).

Run with::

    python examples/gene_network_analysis.py [--scale 0.05]

The paper's introduction motivates rule mining on microarrays partly
because "association rules can be used to build gene networks".  This
example mines interesting rule groups for both classes of the colon-tumor
workload, links genes that co-occur in the same groups' upper bounds, and
reads off co-regulation modules — recovering the generator's planted
blocks.
"""

import argparse

from repro import mine_irgs
from repro.data.discretize import EqualDepthDiscretizer
from repro.data.registry import PAPER_DATASETS, load
from repro.extensions import build_gene_network, gene_modules


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--minsup", type=int, default=5)
    parser.add_argument("--minconf", type=float, default=0.8)
    arguments = parser.parse_args()

    spec = PAPER_DATASETS["CT"]
    matrix = load("CT", scale=arguments.scale)
    data = EqualDepthDiscretizer(n_buckets=10).fit_transform(matrix)
    print(
        f"dataset: {spec.long_name} — {matrix.n_samples} samples x "
        f"{matrix.n_genes} genes"
    )

    all_groups = []
    for label in (spec.class1, spec.class0):
        result = mine_irgs(
            data, label, minsup=arguments.minsup, minconf=arguments.minconf
        )
        print(f"mined {len(result.groups):4d} IRGs for consequent {label!r}")
        all_groups.extend(result.groups)

    graph = build_gene_network(data, all_groups, min_confidence=0.9)
    print(
        f"\ngene network: {graph.number_of_nodes()} genes, "
        f"{graph.number_of_edges()} associations"
    )
    heaviest = sorted(
        graph.edges(data=True), key=lambda edge: -edge[2]["weight"]
    )[:5]
    for left, right, attrs in heaviest:
        print(
            f"  {left} -- {right}: weight={attrs['weight']:.1f} "
            f"({attrs['count']} shared rule groups)"
        )

    modules = gene_modules(graph, min_edge_weight=1.0)
    print(f"\n{len(modules)} co-regulation modules (weight >= 1.0):")
    for module in modules[:6]:
        print("  {" + ", ".join(sorted(module)) + "}")
    print(
        "\n(the generator plants its co-regulated blocks on the lowest "
        "gene indices,\n so modules of consecutive g0..g50 genes are "
        "recovered structure, not noise)"
    )


if __name__ == "__main__":
    main()
