"""Rule discovery on the ALL-AML leukemia workload (paper Section 4.1).

Run with::

    python examples/leukemia_rule_discovery.py [--scale 0.05]

Recreates the paper's motivating analysis on the synthetic ALL-AML
stand-in: mine interesting rule groups for the ALL class at several
constraint settings, show how the counts and runtimes respond (the
Figure 10/11 story in miniature), then inspect the strongest group —
upper bound, lower bounds, and how many individual association rules the
single group represents (the intro's 31-rules-in-one-group point).
"""

import argparse

from repro import Constraints, Farmer, mine_irgs
from repro.data.discretize import EqualDepthDiscretizer
from repro.data.registry import PAPER_DATASETS, load


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.05)
    arguments = parser.parse_args()

    spec = PAPER_DATASETS["ALL"]
    matrix = load("ALL", scale=arguments.scale)
    print(
        f"dataset: {spec.long_name} — {matrix.n_samples} samples, "
        f"{matrix.n_genes} genes (paper: {spec.paper_cols}), "
        f"{spec.n_class1} x {spec.class1} / {spec.n_class0} x {spec.class0}"
    )
    data = EqualDepthDiscretizer(n_buckets=10).fit_transform(matrix)
    print(f"equal-depth discretized: {data.n_items} items\n")

    print("minsup sweep (minconf=0) — the Figure 10 effect:")
    for minsup in (7, 6, 5):
        result = mine_irgs(data, spec.class1, minsup=minsup)
        print(
            f"  minsup={minsup}: {len(result.groups):5d} IRGs, "
            f"{result.counters.nodes:7d} nodes, "
            f"{result.elapsed_seconds:6.2f}s"
        )

    print("\nminconf sweep (minsup=5) — the Figure 11 effect:")
    for minconf in (0.0, 0.8, 0.95):
        result = mine_irgs(data, spec.class1, minsup=5, minconf=minconf)
        exact = sum(1 for g in result.groups if g.confidence == 1.0)
        print(
            f"  minconf={minconf:.2f}: {len(result.groups):5d} IRGs "
            f"({exact} with 100% confidence), "
            f"{result.counters.nodes:7d} nodes, "
            f"{result.elapsed_seconds:6.2f}s"
        )

    print("\nchi-square pruning (minsup=5, minconf=0.8):")
    for minchi in (0.0, 10.0):
        result = mine_irgs(
            data, spec.class1, minsup=5, minconf=0.8, minchi=minchi
        )
        print(
            f"  minchi={minchi:4.1f}: {len(result.groups):5d} IRGs, "
            f"{result.counters.nodes:7d} nodes"
        )

    print("\nstrongest interesting rule group for", spec.class1)
    miner = Farmer(
        constraints=Constraints(minsup=5, minconf=0.9),
        compute_lower_bounds=True,
    )
    result = miner.mine(data, spec.class1)
    if not result.groups:
        print("  (none at these thresholds — lower minconf)")
        return
    best = result.sorted_groups()[0]
    print(best.format(data))
    members = best.member_count()
    print(
        f"\nthis single group stands for {members} individual association "
        f"rules\nfirst members: "
        + ", ".join(
            data.format_itemset(member) for member in best.iter_members(limit=4)
        )
    )


if __name__ == "__main__":
    main()
