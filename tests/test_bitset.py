"""Unit tests for the bitset algebra."""

import pytest

from repro.core import bitset


class TestFromToIndices:
    def test_round_trip(self):
        assert bitset.to_indices(bitset.from_indices([5, 0, 2])) == [0, 2, 5]

    def test_empty(self):
        assert bitset.from_indices([]) == bitset.EMPTY
        assert bitset.to_indices(0) == []

    def test_duplicates_collapse(self):
        assert bitset.from_indices([3, 3, 3]) == 1 << 3

    def test_large_index(self):
        mask = bitset.from_indices([1000])
        assert bitset.to_indices(mask) == [1000]


class TestIterBits:
    def test_ascending_order(self):
        assert list(bitset.iter_bits(0b101101)) == [0, 2, 3, 5]

    def test_empty(self):
        assert list(bitset.iter_bits(0)) == []

    def test_single(self):
        assert list(bitset.iter_bits(1 << 63)) == [63]


class TestCountContains:
    def test_bit_count(self):
        assert bitset.bit_count(0) == 0
        assert bitset.bit_count(0b1011) == 3

    def test_contains(self):
        mask = bitset.from_indices([1, 4])
        assert bitset.contains(mask, 1)
        assert bitset.contains(mask, 4)
        assert not bitset.contains(mask, 0)
        assert not bitset.contains(mask, 5)


class TestAddRemove:
    def test_add(self):
        assert bitset.add(0, 3) == 0b1000
        assert bitset.add(0b1000, 3) == 0b1000

    def test_remove(self):
        assert bitset.remove(0b1010, 1) == 0b1000

    def test_remove_absent_is_noop(self):
        assert bitset.remove(0b1000, 1) == 0b1000


class TestSubset:
    def test_is_subset(self):
        assert bitset.is_subset(0b0101, 0b1101)
        assert bitset.is_subset(0, 0b1101)
        assert not bitset.is_subset(0b0011, 0b0001)

    def test_is_proper_subset(self):
        assert bitset.is_proper_subset(0b01, 0b11)
        assert not bitset.is_proper_subset(0b11, 0b11)
        assert not bitset.is_proper_subset(0b100, 0b011)


class TestUniverseComplement:
    def test_universe(self):
        assert bitset.universe(0) == 0
        assert bitset.universe(3) == 0b111

    def test_complement(self):
        assert bitset.complement(0b010, 3) == 0b101
        assert bitset.complement(0, 4) == 0b1111


class TestExtremes:
    def test_lowest_highest(self):
        assert bitset.lowest_bit(0b10100) == 2
        assert bitset.highest_bit(0b10100) == 4

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            bitset.lowest_bit(0)
        with pytest.raises(ValueError):
            bitset.highest_bit(0)


class TestBelowMaskSingletons:
    def test_below_mask(self):
        assert bitset.below_mask(0) == 0
        assert bitset.below_mask(3) == 0b111

    def test_singletons(self):
        assert list(bitset.singletons(0b1010)) == [0b10, 0b1000]
