"""Unit tests for the independent rule-group validator."""

import dataclasses

import pytest

from conftest import random_dataset

from repro import Constraints, mine_irgs
from repro.core.rulegroup import RuleGroup
from repro.core.validate import validate_group, validate_result
from repro.errors import DataError


def mutate(group: RuleGroup, **changes) -> RuleGroup:
    return dataclasses.replace(group, **changes)


@pytest.fixture
def mined(paper_dataset):
    return mine_irgs(
        paper_dataset, "C", minsup=1, compute_lower_bounds=True
    )


class TestValidGroups:
    def test_mined_groups_pass(self, paper_dataset, mined):
        for group in mined.groups:
            assert validate_group(paper_dataset, group) == []

    def test_mined_result_passes(self, paper_dataset, mined):
        problems = validate_result(
            paper_dataset,
            mined.groups,
            consequent="C",
            constraints=Constraints(minsup=1),
        )
        assert problems == []

    def test_randomized_results_pass(self):
        for seed in range(15):
            data = random_dataset(seed + 3000)
            result = mine_irgs(data, "C", minsup=1, compute_lower_bounds=True)
            assert validate_result(data, result.groups, consequent="C") == []


class TestCorruptionDetection:
    def test_wrong_support(self, paper_dataset, mined):
        group = mined.groups[0]
        bad = mutate(group, support=group.support - 1 if group.support else 1)
        assert any(
            "support" in problem
            for problem in validate_group(paper_dataset, bad)
        )

    def test_wrong_rows(self, paper_dataset, mined):
        group = next(g for g in mined.groups if g.antecedent_support >= 2)
        smaller_rows = frozenset(list(group.rows)[:-1])
        bad = mutate(
            group,
            rows=smaller_rows,
            antecedent_support=len(smaller_rows),
            support=min(group.support, len(smaller_rows)),
        )
        problems = validate_group(paper_dataset, bad)
        assert any("R(upper)" in problem for problem in problems)

    def test_non_closed_upper(self, paper_dataset):
        # {e, h} is not closed (its closure adds a).
        from conftest import letter_items

        group = RuleGroup(
            upper=frozenset(letter_items("eh")),
            consequent="C",
            rows=frozenset({1, 2, 3}),
            support=2,
            antecedent_support=3,
            n=5,
            m=3,
        )
        problems = validate_group(paper_dataset, group)
        assert any("not closed" in problem for problem in problems)

    def test_bad_lower_bound(self, paper_dataset, mined):
        group = next(g for g in mined.groups if len(g.upper) >= 2)
        # Claim the whole upper set is also a lower bound alongside a
        # fabricated singleton that generates different rows.
        wrong = tuple(frozenset({item}) for item in list(group.upper)[:1])
        bad = mutate(group, lower_bounds=wrong + (group.upper,))
        problems = validate_group(paper_dataset, bad)
        assert problems  # nested bounds and/or wrong generation

    def test_wrong_constants(self, paper_dataset, mined):
        bad = mutate(mined.groups[0], n=99)
        assert any(
            "n=99" in problem
            for problem in validate_group(paper_dataset, bad)
        )


class TestResultLevelChecks:
    def test_duplicate_support_sets(self, paper_dataset, mined):
        duplicated = mined.groups + [mined.groups[0]]
        problems = validate_result(paper_dataset, duplicated)
        assert any("share a row support set" in problem for problem in problems)

    def test_dominated_group_detected(self, paper_dataset):
        # Include a group FARMER rejected: aeh is dominated by a.
        from conftest import letter_items

        accepted = mine_irgs(paper_dataset, "C", minsup=1).groups
        aeh = RuleGroup(
            upper=frozenset(letter_items("aeh")),
            consequent="C",
            rows=frozenset({1, 2, 3}),
            support=2,
            antecedent_support=3,
            n=5,
            m=3,
        )
        problems = validate_result(paper_dataset, accepted + [aeh])
        assert any("dominated" in problem for problem in problems)

    def test_constraint_violation_detected(self, paper_dataset, mined):
        problems = validate_result(
            paper_dataset, mined.groups, constraints=Constraints(minsup=4)
        )
        assert any("constraints" in problem for problem in problems)

    def test_wrong_consequent_detected(self, paper_dataset, mined):
        problems = validate_result(
            paper_dataset, mined.groups, consequent="N"
        )
        assert any("consequent" in problem for problem in problems)

    def test_raise_on_error(self, paper_dataset, mined):
        with pytest.raises(DataError, match="validation failed"):
            validate_result(
                paper_dataset,
                mined.groups + [mined.groups[0]],
                raise_on_error=True,
            )


class TestSerializeValidateIntegration:
    def test_loaded_groups_validate(self, tmp_path, paper_dataset, mined):
        from repro.core.serialize import load_rule_groups, save_rule_groups

        path = tmp_path / "groups.irgs"
        save_rule_groups(path, mined.groups)
        loaded, _ = load_rule_groups(path)
        assert validate_result(paper_dataset, loaded, consequent="C") == []
