"""Checkpoint/resume and fault-injection suite for the sharded miner.

Three contracts are pinned here:

* **Kill-anywhere determinism** — a run killed after *any* checkpoint
  write and resumed from that checkpoint produces byte-identical
  serialized output (and identical merged counters) to an uninterrupted
  run, for every checkpoint index and worker count.
* **Fault tolerance** — a worker that is SIGKILLed, stalls forever, or
  raises is retried/requeued/degraded per
  :class:`~repro.core.parallel.RetryPolicy` and the run still completes
  with byte-identical output; a worker death is surfaced immediately
  (child exit code ``-9`` recorded), not treated as a hang.
* **Checkpoint integrity** — corrupt, truncated or wrong-run checkpoint
  files are rejected with :class:`~repro.errors.DataError`; files from a
  newer format version with :class:`~repro.errors.UsageError`; state
  round-trips serialize -> deserialize -> serialize to identical bytes.

All faults are injected at logical coordinates (shard index, attempt
number, checkpoint write count) via :mod:`repro.testing.chaos` — no
sleeps, no wall-clock coupling, no randomness in what fires when.
"""

import dataclasses
import hashlib
import os
import random
import signal
import subprocess
import sys
from pathlib import Path

import pytest

from conftest import random_dataset

import repro
from repro.core.checkpoint import (
    Checkpointer,
    CheckpointState,
    TaskRecord,
    run_fingerprint,
)
from repro.core.constraints import Constraints
from repro.core.enumeration import NodeCounters, SearchBudget, semantic_counters
from repro.core.farmer import Candidate, Farmer, mine_irgs
from repro.core.parallel import RetryPolicy, shutdown_workers
from repro.core.serialize import (
    CHECKPOINT_FORMAT,
    canonical_json,
    load_checkpoint,
    save_checkpoint,
    save_rule_groups,
)
from repro.errors import DataError, UsageError
from repro.testing.chaos import ChaosSpec, InjectedFault, active_spec, _parse

MINSUP = 1
NO_BACKOFF = RetryPolicy(backoff_base=0.0)


@pytest.fixture(scope="module", autouse=True)
def _drain_pools():
    """Tear the cached worker pools down once the module is done."""
    yield
    shutdown_workers()


def _serialized(result, tmp_path, tag):
    """The exact bytes ``core.serialize`` writes for ``result``."""
    path = tmp_path / f"{tag}.irgs"
    save_rule_groups(path, result.groups, constraints=result.constraints)
    return path.read_bytes()


def _baseline(data, tmp_path, tag="baseline"):
    """Serial reference run (no pools, no checkpoints, no chaos)."""
    result = mine_irgs(data, "C", minsup=MINSUP)
    return result, _serialized(result, tmp_path, tag)


# ----------------------------------------------------------------------
# The chaos harness itself
# ----------------------------------------------------------------------


class TestChaosSpec:
    """Spec parsing and matching are exact and fail loudly."""

    def test_unset_means_no_faults(self, monkeypatch):
        monkeypatch.delenv("FARMER_CHAOS", raising=False)
        assert active_spec() is None

    def test_parses_fields(self):
        spec = _parse("kill:shard=2:times=1")
        assert spec == ChaosSpec(mode="kill", shard=2, times=1)
        assert spec.matches_worker(2, 0)
        assert not spec.matches_worker(2, 1)  # second attempt survives
        assert not spec.matches_worker(1, 0)  # other shards untouched

    def test_unscoped_worker_spec_matches_everything(self):
        spec = _parse("raise")
        assert spec.matches_worker(0, 0) and spec.matches_worker(7, 5)
        assert not spec.matches_checkpoint(1)

    def test_checkpoint_spec(self):
        spec = _parse("ckpt-raise:after=3")
        assert spec.matches_checkpoint(3)
        assert not spec.matches_checkpoint(2)
        assert not spec.matches_worker(0, 0)

    @pytest.mark.parametrize(
        "bad",
        ["explode", "kill:shards=1", "kill:shard=x", "raise:times=2", ""],
    )
    def test_bad_specs_rejected(self, bad, monkeypatch):
        if bad == "":
            monkeypatch.setenv("FARMER_CHAOS", bad)
            assert active_spec() is None  # empty = unset, not an error
            return
        with pytest.raises(UsageError):
            _parse(bad)


class TestWorkerFaults:
    """Crashed / stalled / raising workers never change the output."""

    def _mine(self, data, n_workers=2, retry=NO_BACKOFF):
        miner = Farmer(
            constraints=Constraints(minsup=MINSUP),
            n_workers=n_workers,
            retry=retry,
        )
        return miner.mine(data, "C")

    def test_sigkilled_worker_is_requeued(self, paper_dataset, tmp_path, chaos):
        _, reference = _baseline(paper_dataset, tmp_path)
        chaos.arm("kill:shard=1:times=1")
        result = self._mine(paper_dataset)
        assert result.parallel.n_tasks > 1
        assert _serialized(result, tmp_path, "kill") == reference
        # The death was surfaced immediately as a broken pool, with the
        # child's SIGKILL exit code recorded — not sat out as a hang.
        assert result.parallel.pool_failures >= 1
        assert result.parallel.retries >= 1
        assert -signal.SIGKILL in result.parallel.worker_exit_codes

    def test_raising_task_is_retried_without_pool_loss(
        self, paper_dataset, tmp_path, chaos
    ):
        _, reference = _baseline(paper_dataset, tmp_path)
        chaos.arm("raise:shard=0:times=1")
        result = self._mine(paper_dataset)
        assert _serialized(result, tmp_path, "raise") == reference
        assert result.parallel.retries >= 1
        assert result.parallel.pool_failures == 0  # the worker survived

    def test_stalled_worker_is_reaped_by_heartbeat(
        self, paper_dataset, tmp_path, chaos
    ):
        _, reference = _baseline(paper_dataset, tmp_path)
        chaos.arm("stall:shard=1:times=1")
        result = self._mine(
            paper_dataset,
            retry=RetryPolicy(backoff_base=0.0, shard_timeout=0.25),
        )
        assert _serialized(result, tmp_path, "stall") == reference
        assert result.parallel.pool_failures >= 1

    def test_permanently_crashing_worker_degrades_to_inline(
        self, paper_dataset, tmp_path, chaos
    ):
        """Every pool attempt dies; the run must still complete (exit 0
        semantics) via the degradation ladder's inline fallback."""
        _, reference = _baseline(paper_dataset, tmp_path)
        chaos.arm("kill")
        result = self._mine(
            paper_dataset,
            retry=RetryPolicy(backoff_base=0.0, max_attempts=2, degrade_after=1),
        )
        assert _serialized(result, tmp_path, "perm") == reference
        assert result.parallel.inline_tasks > 0
        assert result.parallel.pool_failures >= 1

    def test_permanently_raising_task_falls_back_inline(
        self, paper_dataset, tmp_path, chaos
    ):
        _, reference = _baseline(paper_dataset, tmp_path)
        chaos.arm("raise")
        result = self._mine(
            paper_dataset, retry=RetryPolicy(backoff_base=0.0, max_attempts=2)
        )
        assert _serialized(result, tmp_path, "raise-perm") == reference
        assert result.parallel.inline_tasks > 0

    def test_counters_identical_under_faults(self, paper_dataset, chaos):
        serial = mine_irgs(paper_dataset, "C", minsup=MINSUP)
        clean = self._mine(paper_dataset)
        chaos.arm("kill:shard=0:times=1")
        result = self._mine(paper_dataset)
        # Semantic counters match the serial run; cache telemetry is
        # scoped per shard task, so it matches the *sharded* baseline
        # exactly — a retried shard reruns with a fresh task cache.
        assert semantic_counters(result.counters) == semantic_counters(
            serial.counters
        )
        assert result.counters == clean.counters


# ----------------------------------------------------------------------
# Kill-anywhere differential resume
# ----------------------------------------------------------------------


class TestKillAnywhere:
    """Crash after the k-th checkpoint write, resume, compare bytes —
    for every k and several worker counts."""

    @pytest.mark.parametrize("n_workers", [1, 2])
    def test_resume_is_byte_identical_at_every_checkpoint(
        self, paper_dataset, tmp_path, chaos, n_workers
    ):
        serial, reference = _baseline(paper_dataset, tmp_path)
        full = mine_irgs(
            paper_dataset,
            "C",
            minsup=MINSUP,
            n_workers=n_workers,
            checkpoint=str(tmp_path / "full.ckpt"),
        )
        writes = full.parallel.checkpoints_written
        assert writes >= 2, "dataset too small to exercise the sweep"
        assert _serialized(result=full, tmp_path=tmp_path, tag="full") == reference

        for k in range(1, writes + 1):
            ckpt = str(tmp_path / f"crash-{n_workers}-{k}.ckpt")
            chaos.arm(f"ckpt-raise:after={k}")
            with pytest.raises(InjectedFault):
                mine_irgs(
                    paper_dataset,
                    "C",
                    minsup=MINSUP,
                    n_workers=n_workers,
                    checkpoint=ckpt,
                )
            chaos.disarm()
            resumed = mine_irgs(
                paper_dataset,
                "C",
                minsup=MINSUP,
                n_workers=n_workers,
                resume=ckpt,
            )
            tag = f"resumed-{n_workers}-{k}"
            assert _serialized(resumed, tmp_path, tag) == reference, k
            assert semantic_counters(resumed.counters) == semantic_counters(
                serial.counters
            ), k
            # Cache hit/miss counters ride in the checkpoint's task
            # records, so a resumed run reports them identically to the
            # uninterrupted sharded run — full equality, telemetry
            # included.
            assert resumed.counters == full.counters, k
            assert resumed.parallel.resumed_tasks >= k

    def test_resume_with_different_worker_count(
        self, paper_dataset, tmp_path, chaos
    ):
        """The checkpoint pins the decomposition, so the shard structure
        (and the output) survives a worker-count change on resume."""
        _, reference = _baseline(paper_dataset, tmp_path)
        for resume_workers in (1, 4):
            ckpt = str(tmp_path / f"w-{resume_workers}.ckpt")
            chaos.arm("ckpt-raise:after=2")
            with pytest.raises(InjectedFault):
                mine_irgs(
                    paper_dataset,
                    "C",
                    minsup=MINSUP,
                    n_workers=2,
                    checkpoint=ckpt,
                )
            chaos.disarm()
            resumed = mine_irgs(
                paper_dataset,
                "C",
                minsup=MINSUP,
                n_workers=resume_workers,
                resume=ckpt,
            )
            tag = f"reworkered-{resume_workers}"
            assert _serialized(resumed, tmp_path, tag) == reference

    def test_resume_of_complete_checkpoint_runs_nothing(
        self, paper_dataset, tmp_path
    ):
        _, reference = _baseline(paper_dataset, tmp_path)
        ckpt = str(tmp_path / "complete.ckpt")
        full = mine_irgs(
            paper_dataset, "C", minsup=MINSUP, n_workers=2, checkpoint=ckpt
        )
        resumed = mine_irgs(
            paper_dataset, "C", minsup=MINSUP, n_workers=2, resume=ckpt
        )
        assert _serialized(resumed, tmp_path, "complete") == reference
        assert resumed.parallel.resumed_tasks == full.parallel.n_tasks

    def test_random_datasets_resume_identically(self, tmp_path, chaos):
        """The invariant is not special to the paper example."""
        exercised = 0
        for seed in range(6):
            data = random_dataset(seed + 40)
            result, reference = _baseline(data, tmp_path, f"rand-{seed}")
            probe = mine_irgs(
                data, "C", minsup=MINSUP, n_workers=2,
                checkpoint=str(tmp_path / f"probe-{seed}.ckpt"),
            )
            if probe.parallel.checkpoints_written == 0:
                # Tiny tree: the coordinator expanded everything during
                # decomposition, so there are no shards to checkpoint.
                continue
            exercised += 1
            ckpt = str(tmp_path / f"rand-{seed}.ckpt")
            chaos.arm("ckpt-raise:after=1")
            with pytest.raises(InjectedFault):
                mine_irgs(
                    data, "C", minsup=MINSUP, n_workers=2, checkpoint=ckpt
                )
            chaos.disarm()
            resumed = mine_irgs(
                data, "C", minsup=MINSUP, n_workers=2, resume=ckpt
            )
            assert (
                _serialized(resumed, tmp_path, f"rand-resumed-{seed}")
                == reference
            ), seed
        assert exercised >= 2, "too few seeds decomposed into shards"


class TestTrueSigkill:
    """One end-to-end crash: the coordinator process is SIGKILLed after
    the first durable checkpoint write, then resumed in this process."""

    ROWS = [[0, 1, 2], [0, 3, 4], [0, 2, 5], [3, 4, 5], [1, 2, 3, 4]]
    LABELS = ["C", "C", "C", "N", "N"]

    def _dataset(self):
        from repro.data.dataset import ItemizedDataset

        return ItemizedDataset.from_lists(self.ROWS, self.LABELS, n_items=6)

    def test_sigkilled_run_resumes_byte_identical(self, tmp_path, monkeypatch):
        ckpt = tmp_path / "killed.ckpt"
        src = str(Path(repro.__file__).resolve().parents[1])
        script = (
            "from repro.data.dataset import ItemizedDataset\n"
            "from repro.core.farmer import mine_irgs\n"
            f"data = ItemizedDataset.from_lists({self.ROWS!r}, "
            f"{self.LABELS!r}, n_items=6)\n"
            f"mine_irgs(data, 'C', minsup=1, n_workers=1, "
            f"checkpoint={str(ckpt)!r})\n"
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        env["FARMER_CHAOS"] = "ckpt-kill:after=1"
        proc = subprocess.run(
            [sys.executable, "-c", script],
            env=env,
            capture_output=True,
            timeout=120,
        )
        assert proc.returncode == -signal.SIGKILL, proc.stderr.decode()
        assert ckpt.exists()

        monkeypatch.delenv("FARMER_CHAOS", raising=False)
        data = self._dataset()
        serial = mine_irgs(data, "C", minsup=1)
        reference = _serialized(serial, tmp_path, "sigkill-serial")
        resumed = mine_irgs(data, "C", minsup=1, n_workers=1, resume=str(ckpt))
        assert resumed.parallel.resumed_tasks >= 1
        assert _serialized(resumed, tmp_path, "sigkill-resumed") == reference


# ----------------------------------------------------------------------
# Checkpoint file integrity
# ----------------------------------------------------------------------


class TestCheckpointRobustness:
    """Corrupt or mismatched checkpoints fail loudly, never silently."""

    def _written(self, paper_dataset, tmp_path) -> Path:
        ckpt = tmp_path / "good.ckpt"
        mine_irgs(
            paper_dataset, "C", minsup=MINSUP, n_workers=2,
            checkpoint=str(ckpt),
        )
        assert ckpt.exists()
        return ckpt

    def test_missing_file_is_data_error_on_load(self, tmp_path):
        with pytest.raises(DataError):
            CheckpointState.load(tmp_path / "nope.ckpt")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.ckpt"
        path.write_text("")
        with pytest.raises(DataError):
            load_checkpoint(path)

    def test_truncated_payload_rejected(self, paper_dataset, tmp_path):
        ckpt = self._written(paper_dataset, tmp_path)
        lines = ckpt.read_text().splitlines()
        ckpt.write_text(lines[0] + "\n" + lines[1][: len(lines[1]) // 2] + "\n")
        with pytest.raises(DataError, match="checksum"):
            load_checkpoint(ckpt)

    def test_missing_payload_line_rejected(self, paper_dataset, tmp_path):
        ckpt = self._written(paper_dataset, tmp_path)
        ckpt.write_text(ckpt.read_text().splitlines()[0] + "\n")
        with pytest.raises(DataError, match="truncated"):
            load_checkpoint(ckpt)

    def test_flipped_byte_rejected(self, paper_dataset, tmp_path):
        ckpt = self._written(paper_dataset, tmp_path)
        raw = bytearray(ckpt.read_bytes())
        # Flip a byte well inside the payload line.
        position = len(raw) - 10
        raw[position] = raw[position] ^ 0x01
        ckpt.write_bytes(bytes(raw))
        with pytest.raises(DataError, match="checksum"):
            load_checkpoint(ckpt)

    def test_non_checkpoint_file_rejected(self, paper_dataset, tmp_path):
        irgs = tmp_path / "groups.irgs"
        result = mine_irgs(paper_dataset, "C", minsup=MINSUP)
        save_rule_groups(irgs, result.groups, constraints=result.constraints)
        with pytest.raises(DataError, match="not a checkpoint"):
            load_checkpoint(irgs)

    def test_newer_format_version_is_usage_error(self, tmp_path):
        path = tmp_path / "future.ckpt"
        body = canonical_json({"from": "the future"})
        digest = hashlib.sha256(body.encode("utf-8")).hexdigest()
        header = canonical_json(
            {"format": "repro-checkpoint/99", "sha256": digest}
        )
        path.write_text(header + "\n" + body + "\n")
        with pytest.raises(UsageError, match="not supported"):
            load_checkpoint(path)

    def test_resume_rejects_other_dataset(self, paper_dataset, tmp_path):
        ckpt = self._written(paper_dataset, tmp_path)
        other = random_dataset(7)
        shutdown_workers()
        with pytest.raises(DataError, match="different run"):
            mine_irgs(other, "C", minsup=MINSUP, n_workers=2, resume=str(ckpt))

    def test_resume_rejects_other_constraints(self, paper_dataset, tmp_path):
        ckpt = self._written(paper_dataset, tmp_path)
        with pytest.raises(DataError, match="different run"):
            mine_irgs(
                paper_dataset, "C", minsup=MINSUP + 1, n_workers=2,
                resume=str(ckpt),
            )

    @pytest.mark.parametrize(
        "payload",
        [
            {},  # every key missing
            {  # task index out of range
                "fingerprint": "f", "n_tasks": 1, "target": 2,
                "expansion_cap": 4, "advisory": None,
                "completed": [{
                    "task": 5, "candidates": [], "drops": 0,
                    "counters": {},
                }],
            },
            {  # duplicate task index
                "fingerprint": "f", "n_tasks": 2, "target": 2,
                "expansion_cap": 4, "advisory": None,
                "completed": [
                    {"task": 0, "candidates": [], "drops": 0, "counters": {}},
                    {"task": 0, "candidates": [], "drops": 0, "counters": {}},
                ],
            },
            {  # malformed candidate entry
                "fingerprint": "f", "n_tasks": 1, "target": 2,
                "expansion_cap": 4, "advisory": None,
                "completed": [{
                    "task": 0, "candidates": [[1, 2]], "drops": 0,
                    "counters": {},
                }],
            },
            {  # non-integer counter
                "fingerprint": "f", "n_tasks": 1, "target": 2,
                "expansion_cap": 4, "advisory": None,
                "completed": [{
                    "task": 0, "candidates": [], "drops": 0,
                    "counters": {"nodes": "many"},
                }],
            },
            {  # malformed advisory entry
                "fingerprint": "f", "n_tasks": 1, "target": 2,
                "expansion_cap": 4, "advisory": [[0.5]],
                "completed": [],
            },
        ],
    )
    def test_malformed_payloads_rejected(self, tmp_path, payload):
        path = tmp_path / "bad.ckpt"
        save_checkpoint(path, payload)  # envelope is fine, payload is not
        with pytest.raises(DataError):
            CheckpointState.load(path)


# ----------------------------------------------------------------------
# Serialization round-trip properties
# ----------------------------------------------------------------------


def _random_state(seed: int) -> CheckpointState:
    rng = random.Random(seed)
    n_tasks = rng.randint(1, 12)
    completed = {}
    for index in rng.sample(range(n_tasks), rng.randint(0, n_tasks)):
        candidates = []
        for _ in range(rng.randint(0, 5)):
            ids = tuple(sorted(rng.sample(range(16), rng.randint(1, 5))))
            mask = 0
            for item in ids:
                mask |= 1 << item
            candidates.append(
                Candidate(
                    item_ids=ids,
                    item_mask=mask,
                    supp=rng.randint(0, 9),
                    supn=rng.randint(0, 9),
                    row_mask=rng.getrandbits(10),
                )
            )
        counters = NodeCounters()
        for spec in dataclasses.fields(NodeCounters):
            setattr(counters, spec.name, rng.randint(0, 1000))
        completed[index] = TaskRecord(
            index=index,
            candidates=candidates,
            counters=counters,
            drops=rng.randint(0, 4),
        )
    advisory = None
    if rng.random() < 0.7:
        advisory = sorted(
            (-rng.randint(0, 100) / 100, rng.getrandbits(12), rng.randint(1, 6))
            for _ in range(rng.randint(0, 8))
        )
    return CheckpointState(
        fingerprint=hashlib.sha256(str(seed).encode()).hexdigest(),
        n_tasks=n_tasks,
        target=rng.randint(2, 16),
        expansion_cap=rng.randint(16, 128),
        completed=completed,
        advisory=advisory,
    )


class TestRoundTrip:
    """serialize -> deserialize -> serialize is the identity on bytes."""

    @pytest.mark.parametrize("seed", range(20))
    def test_state_round_trips_to_identical_bytes(self, tmp_path, seed):
        state = _random_state(seed)
        first = tmp_path / "first.ckpt"
        second = tmp_path / "second.ckpt"
        state.save(first)
        reloaded = CheckpointState.load(first)
        reloaded.save(second)
        assert first.read_bytes() == second.read_bytes()
        assert reloaded.to_payload() == state.to_payload()

    @pytest.mark.parametrize("seed", range(20))
    def test_incremental_body_matches_full_encode(self, seed):
        """The fragment-joining assembler and the full encoder agree."""
        from repro.core.checkpoint import _assemble_body
        from repro.core.serialize import canonical_json

        state = _random_state(seed)
        fragments = {
            index: canonical_json(record.to_payload())
            for index, record in state.completed.items()
        }
        body = _assemble_body(
            fragments,
            state.advisory,
            {},
            fingerprint=state.fingerprint,
            n_tasks=state.n_tasks,
            target=state.target,
            expansion_cap=state.expansion_cap,
        )
        assert body == canonical_json(state.to_payload())

    @pytest.mark.parametrize("seed", range(5))
    def test_incremental_writes_match_full_saves(self, tmp_path, seed):
        """Files written through the writer equal CheckpointState.save's."""
        state = _random_state(seed)
        records = list(state.completed.values())
        empty = CheckpointState(
            fingerprint=state.fingerprint,
            n_tasks=state.n_tasks,
            target=state.target,
            expansion_cap=state.expansion_cap,
        )
        incremental = tmp_path / "incremental.ckpt"
        writer = Checkpointer(incremental, empty)
        for record in records:
            writer.record(record, state.advisory)
        writer.close()
        if not records:
            return  # nothing recorded: the writer never writes
        full = tmp_path / "full.ckpt"
        state.save(full)
        assert incremental.read_bytes() == full.read_bytes()

    def test_insertion_order_does_not_leak_into_bytes(self, tmp_path):
        state = _random_state(3)
        shuffled = CheckpointState(
            fingerprint=state.fingerprint,
            n_tasks=state.n_tasks,
            target=state.target,
            expansion_cap=state.expansion_cap,
            completed=dict(reversed(list(state.completed.items()))),
            advisory=state.advisory,
        )
        a, b = tmp_path / "a.ckpt", tmp_path / "b.ckpt"
        state.save(a)
        shuffled.save(b)
        assert a.read_bytes() == b.read_bytes()

    def test_fingerprint_is_sensitive_to_every_input(self):
        base = dict(
            n=5, m=3, consequent="C", item_masks=[1, 3, 7],
            positive_mask=7, constraints=Constraints(minsup=1),
            prunings=("p1", "p2"), target=4, expansion_cap=16,
            task_masks=[1, 2],
        )
        reference = run_fingerprint(**base)
        assert run_fingerprint(**base) == reference  # stable
        for key, value in [
            ("n", 6), ("m", 2), ("consequent", "D"),
            ("item_masks", [1, 3, 6]), ("positive_mask", 3),
            ("constraints", Constraints(minsup=2)),
            ("prunings", ("p1",)), ("target", 5),
            ("expansion_cap", 17), ("task_masks", [1, 4]),
        ]:
            changed = dict(base)
            changed[key] = value
            assert run_fingerprint(**changed) != reference, key


# ----------------------------------------------------------------------
# API surface
# ----------------------------------------------------------------------


class TestApi:
    def test_checkpoint_every_batches_writes(self, paper_dataset, tmp_path):
        ckpt = tmp_path / "batched.ckpt"
        eager = mine_irgs(
            paper_dataset, "C", minsup=MINSUP, n_workers=2,
            checkpoint=str(tmp_path / "eager.ckpt"),
        )
        batched = mine_irgs(
            paper_dataset, "C", minsup=MINSUP, n_workers=2,
            checkpoint=str(ckpt), checkpoint_every=4,
        )
        assert (
            batched.parallel.checkpoints_written
            < eager.parallel.checkpoints_written
        )
        # The final flush still leaves a complete state on disk.
        state = CheckpointState.load(ckpt)
        assert len(state.completed) == batched.parallel.n_tasks

    def test_missing_resume_file_starts_fresh_and_checkpoints(
        self, paper_dataset, tmp_path
    ):
        ckpt = tmp_path / "fresh.ckpt"
        result = mine_irgs(
            paper_dataset, "C", minsup=MINSUP, n_workers=2, resume=str(ckpt)
        )
        assert result.parallel.resumed_tasks == 0
        assert ckpt.exists()  # resume= doubles as the checkpoint target

    def test_checkpoint_implies_sharded_pipeline(self, paper_dataset, tmp_path):
        result = mine_irgs(
            paper_dataset, "C", minsup=MINSUP,
            checkpoint=str(tmp_path / "implied.ckpt"),
        )
        assert result.parallel is not None
        assert result.parallel.n_workers == 1

    def test_checkpoint_with_node_budget_is_usage_error(self, tmp_path):
        with pytest.raises(UsageError, match="max_nodes"):
            Farmer(
                checkpoint=str(tmp_path / "x.ckpt"),
                budget=SearchBudget(max_nodes=100),
            )

    def test_checkpoint_on_unshardable_miner_is_usage_error(self, tmp_path):
        class Tracer(Farmer):
            _supports_sharding = False

        with pytest.raises(UsageError, match="cannot shard"):
            Tracer(checkpoint=str(tmp_path / "x.ckpt"))

    def test_checkpoint_every_must_be_positive(self, paper_dataset, tmp_path):
        from repro.errors import ConstraintError

        with pytest.raises(ConstraintError, match="checkpoint_every"):
            mine_irgs(
                paper_dataset, "C", minsup=MINSUP, n_workers=2,
                checkpoint=str(tmp_path / "x.ckpt"), checkpoint_every=0,
            )

    def test_cli_exposes_checkpoint_flags(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            [
                "mine", "--tsv", "data.tsv",
                "--checkpoint", "run.ckpt",
                "--checkpoint-every", "3",
                "--resume", "old.ckpt",
            ]
        )
        assert args.checkpoint == "run.ckpt"
        assert args.checkpoint_every == 3
        assert args.resume == "old.ckpt"

    def test_checkpointer_records_then_flushes(self, tmp_path):
        state = CheckpointState(
            fingerprint="f", n_tasks=3, target=2, expansion_cap=8
        )
        writer = Checkpointer(tmp_path / "c.ckpt", state, every=2)
        record = TaskRecord(index=0, candidates=[], counters=NodeCounters())
        writer.record(record, None)
        assert writer.writes == 0  # below the batch threshold
        writer.record(
            TaskRecord(index=1, candidates=[], counters=NodeCounters()), None
        )
        assert writer.writes == 1
        writer.flush()
        assert writer.writes == 1  # nothing unsaved: no-op
        loaded = CheckpointState.load(tmp_path / "c.ckpt")
        assert sorted(loaded.completed) == [0, 1]
