"""Unit tests for the closure operators (Section 2.1's R and I)."""

from conftest import letter_items, random_dataset

from repro.core import closure


class TestPaperExample1:
    """Example 1 of the paper, on the Figure 1 table."""

    def test_rows_of_aeh(self, paper_dataset):
        assert closure.rows_of(paper_dataset, letter_items("aeh")) == {1, 2, 3}

    def test_items_of_23(self, paper_dataset):
        got = closure.items_of(paper_dataset, [1, 2])
        assert got == frozenset(letter_items("aeh"))

    def test_rows_of_empty_is_all(self, paper_dataset):
        assert closure.rows_of(paper_dataset, []) == frozenset(range(5))

    def test_items_of_empty_is_vocabulary(self, paper_dataset):
        assert closure.items_of(paper_dataset, []) == frozenset(range(20))

    def test_enumeration_tree_labels(self, paper_dataset):
        # Spot-check node labels from Figure 3.
        cases = {
            (0, 1): "al",
            (0, 2): "aco",
            (1, 3): "aehpr",
            (1, 4): "dl",
            # Figure 3 labels node "35" as {q}, but Figure 1(b) puts item
            # t in rows 3 and 5 too — the figure label is a typo.
            (2, 4): "qt",
            (3, 4): "f",
            (0, 2, 4): "",
            (1, 2, 3): "aeh",
        }
        for rows, letters in cases.items():
            got = closure.items_of(paper_dataset, rows)
            assert got == frozenset(letter_items(letters)), (rows, letters)


class TestClosureLaws:
    """Galois-connection laws, exercised on random datasets."""

    def test_itemset_closure_is_extensive_and_idempotent(self):
        for seed in range(20):
            data = random_dataset(seed)
            for start in range(data.n_items):
                base = frozenset({start})
                closed = closure.close_itemset(data, base)
                if closure.rows_of(data, base):
                    assert base <= closed
                assert closure.close_itemset(data, closed) == closed

    def test_rowset_closure_is_extensive_and_idempotent(self):
        for seed in range(20):
            data = random_dataset(seed + 100)
            for row in range(data.n_rows):
                base = frozenset({row})
                closed = closure.close_rowset(data, base)
                assert base <= closed
                assert closure.close_rowset(data, closed) == closed

    def test_monotone_in_reverse(self):
        # Bigger itemset -> smaller (or equal) row support set.
        for seed in range(20):
            data = random_dataset(seed + 200)
            if data.n_items < 2:
                continue
            small = closure.rows_of(data, [0])
            large = closure.rows_of(data, [0, 1])
            assert large <= small

    def test_is_closed_itemset(self, paper_dataset):
        assert closure.is_closed_itemset(paper_dataset, letter_items("aeh"))
        assert not closure.is_closed_itemset(paper_dataset, letter_items("eh"))
