"""Fixture-driven tests for every farmer-lint rule (FRM001..FRM008).

Each rule gets at least: a snippet that triggers it, a near-identical
snippet that must not, and a suppression-comment check.  Fixtures are
written under ``tmp_path/repro/...`` so package-scoped rules (core/,
baselines/) see the same package paths as the real tree.
"""

from pathlib import Path

import pytest

from repro.analysis import Engine
from repro.analysis.rules import ALL_RULES, RULES_BY_ID


def lint_snippet(tmp_path, package_path: str, source: str):
    """Write ``source`` at ``tmp_path/<package_path>`` and lint it."""
    target = tmp_path / package_path
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source)
    engine = Engine(root=tmp_path)
    module = engine.parse_module(target)
    findings, n_suppressed = engine.lint_module(module)
    return findings, n_suppressed


def rule_ids(findings):
    return [finding.rule_id for finding in findings]


class TestCatalogue:
    def test_twelve_rules_with_unique_ids(self):
        assert len(ALL_RULES) == 12
        assert sorted(RULES_BY_ID) == [f"FRM{i:03d}" for i in range(1, 13)]

    def test_every_rule_documented(self):
        for rule in ALL_RULES:
            assert rule.name
            assert rule.description
            assert rule.__doc__


class TestFRM001NondeterministicIteration:
    TRIGGERS = [
        "for x in {1, 2, 3}:\n    print(x)\n",
        "for x in set(items):\n    print(x)\n",
        "for x in frozenset(items):\n    print(x)\n",
        "for x in mapping.keys():\n    print(x)\n",
        "out = [x for x in {1, 2}]\n",
        "out = list({str(x) for x in items})\n",
        "for i, x in enumerate(set(items)):\n    print(i, x)\n",
    ]

    @pytest.mark.parametrize("snippet", TRIGGERS)
    def test_triggers_in_core(self, tmp_path, snippet):
        findings, _ = lint_snippet(tmp_path, "repro/core/mod.py", snippet)
        assert "FRM001" in rule_ids(findings)

    def test_sorted_wrapping_is_clean(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            "for x in sorted(set(items)):\n    print(x)\n",
        )
        assert "FRM001" not in rule_ids(findings)

    def test_list_iteration_is_clean(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path, "repro/core/mod.py", "for x in [1, 2]:\n    print(x)\n"
        )
        assert "FRM001" not in rule_ids(findings)

    def test_out_of_scope_module_not_checked(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/experiments/mod.py",
            "for x in {1, 2, 3}:\n    print(x)\n",
        )
        assert "FRM001" not in rule_ids(findings)

    def test_suppression(self, tmp_path):
        findings, n_suppressed = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            "for x in {1, 2}:  # farmer-lint: disable=FRM001\n    print(x)\n",
        )
        assert "FRM001" not in rule_ids(findings)
        assert n_suppressed == 1


class TestFRM002NondeterminismSource:
    TRIGGERS = [
        "import random\nvalue = random.random()\n",
        "import random\nrng = random.Random()\n",
        "import time\nstamp = time.time()\n",
        "import os\npid = os.getpid()\n",
        "import os\nnoise = os.urandom(8)\n",
        "import uuid\ntoken = uuid.uuid4()\n",
        "key = id(node)\n",
        "import numpy as np\nrng = np.random.default_rng()\n",
        "import numpy as np\nvalue = np.random.rand()\n",
        "from datetime import datetime\nnow = datetime.now()\n",
    ]
    CLEAN = [
        "import random\nrng = random.Random(42)\n",
        "import time\nstarted = time.perf_counter()\n",
        "import time\ndeadline = time.monotonic() + 5\n",
        "import numpy as np\nrng = np.random.default_rng(0)\n",
    ]

    @pytest.mark.parametrize("snippet", TRIGGERS)
    def test_triggers_in_core(self, tmp_path, snippet):
        findings, _ = lint_snippet(tmp_path, "repro/core/mod.py", snippet)
        assert "FRM002" in rule_ids(findings)

    @pytest.mark.parametrize("snippet", CLEAN)
    def test_seeded_and_monotonic_are_clean(self, tmp_path, snippet):
        findings, _ = lint_snippet(tmp_path, "repro/core/mod.py", snippet)
        assert "FRM002" not in rule_ids(findings)

    def test_applies_to_baselines_package(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path, "repro/baselines/mod.py", "import time\nt = time.time()\n"
        )
        assert "FRM002" in rule_ids(findings)

    def test_suppression(self, tmp_path):
        findings, n_suppressed = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            "import time\nt = time.time()  # farmer-lint: disable=FRM002\n",
        )
        assert "FRM002" not in rule_ids(findings)
        assert n_suppressed == 1


class TestFRM003WorkerPicklability:
    def test_lambda_attribute_in_multiprocessing_module(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/workers.py",
            "import multiprocessing\n"
            "class Task:\n"
            "    def __init__(self):\n"
            "        self.score = lambda x: x + 1\n",
        )
        assert "FRM003" in rule_ids(findings)

    def test_named_worker_class_checked_everywhere(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/state.py",
            "class NodeState:\n"
            "    def __init__(self):\n"
            "        self.stream = open('x.txt')\n",
        )
        assert "FRM003" in rule_ids(findings)

    def test_generator_and_closure_attributes(self, tmp_path):
        source = (
            "from concurrent.futures import ProcessPoolExecutor\n"
            "class Task:\n"
            "    def __init__(self, rows):\n"
            "        self.rows = (r for r in rows)\n"
            "    def bind(self, offset):\n"
            "        def shifted(x):\n"
            "            return x + offset\n"
            "        self.shift = shifted\n"
        )
        findings, _ = lint_snippet(tmp_path, "repro/core/workers.py", source)
        messages = [f.message for f in findings if f.rule_id == "FRM003"]
        assert len(messages) == 2
        assert any("generator" in m for m in messages)
        assert any("closure" in m for m in messages)

    def test_class_level_lambda(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/workers.py",
            "import multiprocessing\nclass Task:\n    key = lambda x: x\n",
        )
        assert "FRM003" in rule_ids(findings)

    def test_plain_class_in_plain_module_is_clean(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            "class Helper:\n"
            "    def __init__(self):\n"
            "        self.score = lambda x: x\n",
        )
        assert "FRM003" not in rule_ids(findings)

    def test_picklable_worker_state_is_clean(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/workers.py",
            "import multiprocessing\n"
            "class Task:\n"
            "    def __init__(self, rows):\n"
            "        self.rows = list(rows)\n",
        )
        assert "FRM003" not in rule_ids(findings)

    def test_suppression(self, tmp_path):
        findings, n_suppressed = lint_snippet(
            tmp_path,
            "repro/core/workers.py",
            "import multiprocessing\n"
            "class Task:\n"
            "    def __init__(self):\n"
            "        self.f = lambda: 0  # farmer-lint: disable=FRM003\n",
        )
        assert "FRM003" not in rule_ids(findings)
        assert n_suppressed == 1


class TestFRM004BitsetDiscipline:
    def test_bin_count_popcount(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/extensions/mod.py",
            'def popcount(x):\n    return bin(x).count("1")\n',
        )
        assert "FRM004" in rule_ids(findings)

    def test_format_b_count_popcount(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/extensions/mod.py",
            'def popcount(x):\n    return format(x, "b").count("1")\n',
        )
        assert "FRM004" in rule_ids(findings)

    def test_format_padded_binary_count_popcount(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/extensions/mod.py",
            'def popcount(x):\n    return format(x, "064b").count("1")\n',
        )
        assert "FRM004" in rule_ids(findings)

    def test_fstring_binary_count_popcount(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/extensions/mod.py",
            'def popcount(x):\n    return f"{x:b}".count("1")\n',
        )
        assert "FRM004" in rule_ids(findings)

    def test_format_decimal_count_is_clean(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/extensions/mod.py",
            'def digits(x):\n    return format(x, "d").count("1")\n',
        )
        assert "FRM004" not in rule_ids(findings)

    def test_fstring_decimal_count_is_clean(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/extensions/mod.py",
            'def digits(x):\n    return f"{x:d}".count("1")\n',
        )
        assert "FRM004" not in rule_ids(findings)

    def test_bit_count_helper_is_clean(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/extensions/mod.py",
            "from repro.core import bitset\n"
            "def popcount(x):\n"
            "    return bitset.bit_count(x)\n",
        )
        assert "FRM004" not in rule_ids(findings)

    def test_numpy_lut_construction_is_clean(self, tmp_path):
        # The sanctioned vectorized-popcount-table idiom (npbitset's
        # POPCOUNT8): a string popcount inside a comprehension feeding a
        # NumPy array constructor, built once at import.
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            "import numpy as np\n"
            "POPCOUNT8 = np.array(\n"
            '    [bin(value).count("1") for value in range(256)],'
            " dtype=np.uint8\n"
            ")\n",
        )
        assert "FRM004" not in rule_ids(findings)

    def test_numpy_fromiter_lut_is_clean(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            "import numpy\n"
            "TABLE = numpy.fromiter(\n"
            '    (format(v, "b").count("1") for v in range(256)), "uint8"\n'
            ")\n",
        )
        assert "FRM004" not in rule_ids(findings)

    def test_popcount_outside_lut_construction_still_flagged(self, tmp_path):
        # The same popcount spelling outside a NumPy table constructor
        # keeps triggering — only the LUT construction is exempt.
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            "import numpy as np\n"
            'COUNTS = [bin(value).count("1") for value in range(256)]\n',
        )
        assert "FRM004" in rule_ids(findings)

    def test_float_equality_in_measures(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/measures.py",
            "def degenerate(conf):\n    return conf == 1.0\n",
        )
        assert "FRM004" in rule_ids(findings)

    def test_float_inequality_bound_is_clean(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/measures.py",
            "def saturated(conf):\n    return conf >= 1.0\n",
        )
        assert "FRM004" not in rule_ids(findings)

    def test_float_equality_outside_measures_is_clean(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            "def degenerate(conf):\n    return conf == 1.0\n",
        )
        assert "FRM004" not in rule_ids(findings)

    def test_suppression(self, tmp_path):
        findings, n_suppressed = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            "def popcount(x):\n"
            '    return bin(x).count("1")  # farmer-lint: disable=FRM004\n',
        )
        assert "FRM004" not in rule_ids(findings)
        assert n_suppressed == 1


class TestFRM005PublicApiHygiene:
    CLEAN = (
        '"""Module docstring."""\n'
        '__all__ = ["helper"]\n'
        "def helper():\n"
        '    """Docstring."""\n'
    )

    def test_clean_module(self, tmp_path):
        findings, _ = lint_snippet(tmp_path, "repro/mod.py", self.CLEAN)
        assert "FRM005" not in rule_ids(findings)

    def test_missing_dunder_all(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/mod.py",
            '"""Doc."""\ndef helper():\n    """Doc."""\n',
        )
        assert any(
            f.rule_id == "FRM005" and "no __all__" in f.message
            for f in findings
        )

    def test_undefined_name_in_dunder_all(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/mod.py",
            '"""Doc."""\n__all__ = ["ghost"]\n',
        )
        assert any(
            f.rule_id == "FRM005" and "'ghost'" in f.message for f in findings
        )

    def test_public_def_missing_from_dunder_all(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/mod.py",
            '"""Doc."""\n'
            '__all__ = ["helper"]\n'
            "def helper():\n"
            '    """Doc."""\n'
            "def stray():\n"
            '    """Doc."""\n',
        )
        assert any(
            f.rule_id == "FRM005" and "'stray'" in f.message for f in findings
        )

    def test_missing_docstrings(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/mod.py",
            '__all__ = ["helper"]\ndef helper():\n    pass\n',
        )
        messages = [f.message for f in findings if f.rule_id == "FRM005"]
        assert any("module has no docstring" in m for m in messages)
        assert any("'helper' has no docstring" in m for m in messages)

    def test_private_names_ignored(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/mod.py",
            '"""Doc."""\ndef _internal():\n    pass\n',
        )
        assert "FRM005" not in rule_ids(findings)

    def test_reexporting_init_is_clean(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/sub/__init__.py",
            '"""Doc."""\nfrom .mod import helper\n__all__ = ["helper"]\n',
        )
        assert "FRM005" not in rule_ids(findings)


class TestFRM006ExceptionDiscipline:
    def test_builtin_raise_in_core(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            'def check(x):\n    raise ValueError("bad")\n',
        )
        assert "FRM006" in rule_ids(findings)

    def test_repro_errors_raise_is_clean(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            "from repro.errors import DataError\n"
            "def check(x):\n"
            '    raise DataError("bad")\n',
        )
        assert "FRM006" not in rule_ids(findings)

    def test_bare_reraise_is_clean(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            "def check(x):\n"
            "    try:\n"
            "        x()\n"
            "    except Exception:\n"
            "        raise\n",
        )
        assert "FRM006" not in rule_ids(findings)

    def test_builtin_raise_outside_core_is_clean(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/classify/mod.py",
            'def check(x):\n    raise ValueError("bad")\n',
        )
        assert "FRM006" not in rule_ids(findings)

    def test_assert_in_library_code(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/classify/mod.py",
            "def check(x):\n    assert x is not None\n",
        )
        assert "FRM006" in rule_ids(findings)

    def test_assert_in_tests_is_clean(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "tests/test_mod.py",
            "def test_x():\n    assert 1 + 1 == 2\n",
        )
        assert findings == []

    def test_suppression(self, tmp_path):
        findings, n_suppressed = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            'def check(x):\n'
            '    raise ValueError("bad")  # farmer-lint: disable=FRM006\n',
        )
        assert "FRM006" not in rule_ids(findings)
        assert n_suppressed == 1


class TestFRM007PersistenceDiscipline:
    TRIGGERS = [
        "import pickle\npickle.dump(state, fh)\n",
        "import pickle\nblob = pickle.dumps(state)\n",
        "import pickle\nstate = pickle.load(fh)\n",
        "import json\njson.dump(payload, fh)\n",
        "import json\ntext = json.dumps(payload)\n",
        "import json\npayload = json.loads(text)\n",
        "import marshal\nmarshal.dump(code, fh)\n",
        "import shelve\ndb = shelve.open('state')\n",
        "from pickle import dump\ndump(state, fh)\n",
        "from json import dumps as render\ntext = render(payload)\n",
    ]

    @pytest.mark.parametrize("snippet", TRIGGERS)
    def test_triggers_in_core(self, tmp_path, snippet):
        findings, _ = lint_snippet(tmp_path, "repro/core/mod.py", snippet)
        assert "FRM007" in rule_ids(findings)

    def test_serialize_module_is_exempt(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/serialize.py",
            "import json\ntext = json.dumps(payload)\n",
        )
        assert "FRM007" not in rule_ids(findings)

    def test_out_of_scope_module_not_checked(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/experiments/mod.py",
            "import json\njson.dump(payload, fh)\n",
        )
        assert "FRM007" not in rule_ids(findings)

    def test_unrelated_dump_name_is_clean(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            "def dump(x):\n    return x\n\nvalue = dump(1)\n",
        )
        assert "FRM007" not in rule_ids(findings)

    def test_envelope_calls_are_clean(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            "from .serialize import canonical_json, save_checkpoint\n"
            "save_checkpoint(path, canonical_json(payload))\n",
        )
        assert "FRM007" not in rule_ids(findings)

    def test_suppression(self, tmp_path):
        findings, n_suppressed = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            "import json\n"
            "text = json.dumps(x)  # farmer-lint: disable=FRM007\n",
        )
        assert "FRM007" not in rule_ids(findings)
        assert n_suppressed == 1


class TestFRM012RawWriteSurface:
    TRIGGERS = [
        "fh = open(path, 'w')\n",
        "fh = open(path, mode='wb')\n",
        "fh = open(path, 'a')\n",
        "fh = open(path, 'x')\n",
        "fh = open(path, 'r+')\n",
        "fh = path.open('w')\n",
        "path.write_text(body)\n",
        "path.write_bytes(blob)\n",
        "import os\nos.replace(tmp, path)\n",
        "import os\nos.rename(tmp, path)\n",
    ]

    CLEAN = [
        "fh = open(path)\n",
        "fh = open(path, 'r')\n",
        "fh = open(path, mode='rb')\n",
        "fh = path.open('r')\n",
        "fh = path.open()\n",
        "text = path.read_text()\n",
        "fh = open(path, flags)\n",
        "import os\nos.remove(path)\n",
        "from .serialize import save_checkpoint\nsave_checkpoint(path, payload)\n",
    ]

    @pytest.mark.parametrize("snippet", TRIGGERS)
    def test_triggers_in_core(self, tmp_path, snippet):
        findings, _ = lint_snippet(tmp_path, "repro/core/mod.py", snippet)
        assert "FRM012" in rule_ids(findings)

    @pytest.mark.parametrize("snippet", CLEAN)
    def test_read_surfaces_are_clean(self, tmp_path, snippet):
        findings, _ = lint_snippet(tmp_path, "repro/core/mod.py", snippet)
        assert "FRM012" not in rule_ids(findings)

    def test_serialize_module_is_exempt(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/serialize.py",
            "import os\nfh = open(path, 'w')\nos.replace(tmp, path)\n",
        )
        assert "FRM012" not in rule_ids(findings)

    def test_out_of_scope_module_not_checked(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/experiments/mod.py",
            "path.write_text(body)\n",
        )
        assert "FRM012" not in rule_ids(findings)

    def test_suppression(self, tmp_path):
        findings, n_suppressed = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            "path.write_text(body)  # farmer-lint: disable=FRM012\n",
        )
        assert "FRM012" not in rule_ids(findings)
        assert n_suppressed == 1


class TestFRM008DocstringSections:
    MULTILINE_TWO_PARAMS = (
        '"""Doc."""\n'
        '__all__ = ["combine"]\n'
        "def combine(left: int, right: int) -> int:\n"
        '    """Combine two values.\n\n'
        "    Longer explanation of the combination.\n"
        '    """\n'
        "    return left + right\n"
    )

    def test_multiline_docstring_without_args_triggers(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path, "repro/core/mod.py", self.MULTILINE_TWO_PARAMS
        )
        assert any(
            f.rule_id == "FRM008" and "'Args:'" in f.message for f in findings
        )

    def test_applies_to_obs_package(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path, "repro/obs/mod.py", self.MULTILINE_TWO_PARAMS
        )
        assert "FRM008" in rule_ids(findings)

    def test_out_of_scope_package_exempt(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path, "repro/baselines/mod.py", self.MULTILINE_TWO_PARAMS
        )
        assert "FRM008" not in rule_ids(findings)

    def test_one_line_docstring_is_legal(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            '"""Doc."""\n'
            '__all__ = ["combine"]\n'
            "def combine(left: int, right: int) -> int:\n"
            '    """Combine two values."""\n'
            "    return left + right\n",
        )
        assert "FRM008" not in rule_ids(findings)

    def test_single_parameter_exempt(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            '"""Doc."""\n'
            '__all__ = ["double"]\n'
            "def double(value: int) -> int:\n"
            '    """Double a value.\n\n'
            "    Longer explanation.\n"
            '    """\n'
            "    return value * 2\n",
        )
        assert "FRM008" not in rule_ids(findings)

    def test_structured_docstring_without_returns_triggers(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            '"""Doc."""\n'
            '__all__ = ["combine"]\n'
            "def combine(left: int, right: int) -> int:\n"
            '    """Combine two values.\n\n'
            "    Args:\n"
            "        left: first value.\n"
            "        right: second value.\n"
            '    """\n'
            "    return left + right\n",
        )
        assert any(
            f.rule_id == "FRM008" and "'Returns:'" in f.message
            for f in findings
        )

    def test_args_and_returns_is_clean(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            '"""Doc."""\n'
            '__all__ = ["combine"]\n'
            "def combine(left: int, right: int) -> int:\n"
            '    """Combine two values.\n\n'
            "    Args:\n"
            "        left: first value.\n"
            "        right: second value.\n\n"
            "    Returns:\n"
            "        The sum.\n"
            '    """\n'
            "    return left + right\n",
        )
        assert "FRM008" not in rule_ids(findings)

    def test_yields_satisfies_returns(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            '"""Doc."""\n'
            "from typing import Iterator\n"
            '__all__ = ["pairs"]\n'
            "def pairs(left: int, right: int) -> Iterator[int]:\n"
            '    """Yield both values.\n\n'
            "    Args:\n"
            "        left: first value.\n"
            "        right: second value.\n\n"
            "    Yields:\n"
            "        Each value in turn.\n"
            '    """\n'
            "    yield left\n"
            "    yield right\n",
        )
        assert "FRM008" not in rule_ids(findings)

    def test_none_return_needs_no_returns_section(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            '"""Doc."""\n'
            '__all__ = ["record"]\n'
            "def record(name: str, value: int) -> None:\n"
            '    """Record a value.\n\n'
            "    Args:\n"
            "        name: the key.\n"
            "        value: the value.\n"
            '    """\n',
        )
        assert "FRM008" not in rule_ids(findings)

    def test_property_and_private_and_dunder_exempt(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            '"""Doc."""\n'
            '__all__ = ["Box"]\n'
            "class Box:\n"
            '    """A box."""\n'
            "    @property\n"
            "    def content(self) -> int:\n"
            '        """The content.\n\n'
            "        Longer explanation.\n"
            '        """\n'
            "        return 1\n"
            "    def _helper(self, a: int, b: int) -> int:\n"
            '        """Private.\n\n'
            "        Longer explanation.\n"
            '        """\n'
            "        return a + b\n"
            "    def __call__(self, a: int, b: int) -> int:\n"
            '        """Dunder.\n\n'
            "        Longer explanation.\n"
            '        """\n'
            "        return a + b\n",
        )
        assert "FRM008" not in rule_ids(findings)

    def test_missing_docstring_left_to_frm005(self, tmp_path):
        findings, _ = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            '"""Doc."""\n'
            '__all__ = ["combine"]\n'
            "def combine(left: int, right: int) -> int:\n"
            "    return left + right\n",
        )
        assert "FRM008" not in rule_ids(findings)

    def test_suppression_comment(self, tmp_path):
        findings, n_suppressed = lint_snippet(
            tmp_path,
            "repro/core/mod.py",
            '"""Doc."""\n'
            '__all__ = ["combine"]\n'
            "def combine(left: int, right: int) -> int:  "
            "# farmer-lint: disable=FRM008\n"
            '    """Combine two values.\n\n'
            "    Longer explanation.\n"
            '    """\n'
            "    return left + right\n",
        )
        assert "FRM008" not in rule_ids(findings)
        assert n_suppressed >= 1


class TestRepoIsClean:
    def test_shipped_tree_has_zero_findings(self):
        """Acceptance: the shipped tree lints clean with no baseline."""
        import repro

        package_root = Path(repro.__file__).resolve().parent
        result = Engine(root=package_root.parent).lint_paths([package_root])
        assert result.findings == [], [
            finding.format() for finding in result.findings
        ]
        assert result.n_files > 60
