"""Tests for footnote-3 measure constraints (extension)."""

import pytest

from conftest import random_dataset

from repro import mine_irgs
from repro.core import measures
from repro.errors import ConstraintError
from repro.extensions import (
    constraints_for_measures,
    filter_groups,
    mine_irgs_with_measures,
)


class TestConstraintTranslation:
    def test_lift_reduces_to_confidence(self):
        # m/n = 0.4; lift >= 2 means conf >= 0.8.
        constraints = constraints_for_measures(10, 4, min_lift=2.0)
        assert constraints.minconf == pytest.approx(0.8)

    def test_conviction_reduces_to_confidence(self):
        # m/n = 0.5; conviction >= 2 means conf >= 0.75.
        constraints = constraints_for_measures(10, 5, min_conviction=2.0)
        assert constraints.minconf == pytest.approx(0.75)

    def test_correlation_reduces_to_chi(self):
        constraints = constraints_for_measures(20, 8, min_correlation=0.5)
        assert constraints.minchi == pytest.approx(5.0)  # 0.25 * 20

    def test_strictest_confidence_wins(self):
        constraints = constraints_for_measures(
            10, 4, minconf=0.9, min_lift=2.0
        )
        assert constraints.minconf == pytest.approx(0.9)

    def test_confidence_capped_at_one(self):
        constraints = constraints_for_measures(10, 9, min_lift=5.0)
        assert constraints.minconf == 1.0

    def test_validation(self):
        with pytest.raises(ConstraintError):
            constraints_for_measures(10, 0, min_lift=1.0)
        with pytest.raises(ConstraintError):
            constraints_for_measures(10, 4, min_lift=-1.0)
        with pytest.raises(ConstraintError):
            constraints_for_measures(10, 4, min_conviction=0.0)
        with pytest.raises(ConstraintError):
            constraints_for_measures(10, 4, min_correlation=1.5)


class TestMiningWithMeasures:
    def test_lift_threshold_holds(self, paper_dataset):
        result = mine_irgs_with_measures(
            paper_dataset, "C", minsup=1, min_lift=1.5
        )
        for group in result.groups:
            assert group.upper_rule.measure("lift") >= 1.5 - 1e-9

    def test_equivalent_to_plain_confidence_mining(self, paper_dataset):
        # lift >= 5/3 on this dataset (m/n = 3/5) == conf >= 1.0.
        via_measures = mine_irgs_with_measures(
            paper_dataset, "C", minsup=1, min_lift=5 / 3
        )
        via_confidence = mine_irgs(paper_dataset, "C", minsup=1, minconf=1.0)
        assert (
            via_measures.upper_antecedents()
            == via_confidence.upper_antecedents()
        )

    def test_correlation_sign_post_check(self):
        for seed in range(10):
            data = random_dataset(seed + 2000)
            result = mine_irgs_with_measures(
                data, "C", minsup=1, min_correlation=0.3
            )
            for group in result.groups:
                phi = measures.correlation(
                    group.antecedent_support, group.support, group.n, group.m
                )
                assert phi >= 0.3 - 1e-9

    def test_conviction_threshold_holds(self, paper_dataset):
        result = mine_irgs_with_measures(
            paper_dataset, "C", minsup=1, min_conviction=2.0
        )
        for group in result.groups:
            assert group.upper_rule.measure("conviction") >= 2.0 - 1e-9


class TestPostFilters:
    def test_entropy_gain_filter(self, paper_dataset):
        groups = mine_irgs(paper_dataset, "C", minsup=1).groups
        kept = filter_groups(groups, min_entropy_gain=0.2)
        assert len(kept) <= len(groups)
        for group in kept:
            assert group.upper_rule.measure("entropy_gain") >= 0.2

    def test_gini_filter(self, paper_dataset):
        groups = mine_irgs(paper_dataset, "C", minsup=1).groups
        kept = filter_groups(groups, min_gini_gain=0.1)
        for group in kept:
            assert group.upper_rule.measure("gini_gain") >= 0.1

    def test_no_thresholds_keeps_all(self, paper_dataset):
        groups = mine_irgs(paper_dataset, "C", minsup=1).groups
        assert filter_groups(groups) == groups
