"""Observability suite: metrics merge laws, run-log integrity, and the
byte-identity guarantee (telemetry on == telemetry off, bit for bit).

The load-bearing invariant is the last one: a `Telemetry` must be a pure
observer.  Serial `.irgs` output, sharded output, checkpoint bytes and
killed/resumed runs are all compared against un-instrumented references.
"""

import io
import json
import random
from pathlib import Path

import pytest

from conftest import random_dataset

from repro import Constraints, Farmer, mine_irgs
from repro.cli import main
from repro.core.parallel import shutdown_workers
from repro.core.serialize import save_rule_groups
from repro.errors import DataError, UsageError
from repro.obs import (
    MetricsRegistry,
    MetricsSnapshot,
    ProgressReporter,
    RunLog,
    Telemetry,
    merge_snapshots,
    read_runlog,
)
from repro.obs.progress import format_count, format_eta
from repro.testing.chaos import InjectedFault

MINSUP = 1


@pytest.fixture(scope="module", autouse=True)
def _drain_pools():
    """Tear the cached worker pools down once the module is done."""
    yield
    shutdown_workers()


def _serialized(result, tmp_path, tag):
    """The exact bytes ``core.serialize`` writes for ``result``."""
    path = tmp_path / f"{tag}.irgs"
    save_rule_groups(path, result.groups, constraints=result.constraints)
    return path.read_bytes()


def _checkpoint_payload(path):
    """Checkpoint content normalized for cross-run comparison.

    Advisory bounds accumulate in task-*completion* order, which depends
    on scheduling even without telemetry; everything else (fingerprint,
    task records, counters) must match exactly.
    """
    payload = json.loads(Path(path).read_text().splitlines()[1])
    payload["advisory"] = sorted(map(tuple, payload.get("advisory", [])))
    return payload


def _random_snapshot(seed: int) -> MetricsSnapshot:
    """A populated snapshot driven by a seeded registry workload."""
    rng = random.Random(seed)
    registry = MetricsRegistry()
    for _ in range(rng.randrange(1, 30)):
        registry.inc(f"c.{rng.randrange(4)}", rng.randrange(1, 100))
    for _ in range(rng.randrange(0, 10)):
        registry.set_gauge(f"g.{rng.randrange(3)}", rng.uniform(0, 1000))
    for _ in range(rng.randrange(0, 20)):
        registry.observe(f"t.{rng.randrange(3)}", rng.uniform(0.0001, 10.0))
    return registry.snapshot()


# ----------------------------------------------------------------------
# MetricsRegistry and snapshot algebra
# ----------------------------------------------------------------------


class TestMetricsRegistry:
    def test_counters_sum(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        registry.inc("hits", 4)
        assert registry.snapshot().counters["hits"] == 5

    def test_negative_increment_rejected(self):
        registry = MetricsRegistry()
        with pytest.raises(UsageError):
            registry.inc("hits", -1)

    def test_gauge_keeps_last_value(self):
        registry = MetricsRegistry()
        registry.set_gauge("depth", 7.0)
        registry.set_gauge("depth", 3.0)
        assert registry.snapshot().gauges["depth"] == 3.0

    def test_timer_context_and_buckets(self):
        registry = MetricsRegistry()
        with registry.time("step.seconds") as timer:
            pass
        assert timer.elapsed >= 0.0
        stats = registry.snapshot().timers["step.seconds"]
        assert stats.count == 1
        assert stats.minimum == stats.maximum == stats.total
        assert sum(stats.buckets) == 1

    def test_kind_collision_rejected(self):
        registry = MetricsRegistry()
        registry.inc("name")
        with pytest.raises(UsageError):
            registry.set_gauge("name", 1.0)
        with pytest.raises(UsageError):
            registry.observe("name", 0.5)

    def test_snapshot_is_decoupled_from_registry(self):
        registry = MetricsRegistry()
        registry.inc("hits")
        snapshot = registry.snapshot()
        registry.inc("hits")
        assert snapshot.counters["hits"] == 1


def _assert_snapshots_close(left: MetricsSnapshot, right: MetricsSnapshot):
    """Equality up to float rounding in timer totals.

    Counters, gauges, timer counts and histogram buckets are integers or
    max-folds and must match exactly; timer ``total`` is a float sum, so
    re-association may differ in the last ulp.
    """
    assert left.counters == right.counters
    assert left.gauges == right.gauges
    assert sorted(left.timers) == sorted(right.timers)
    for name, stats in left.timers.items():
        other = right.timers[name]
        assert stats.count == other.count, name
        assert stats.buckets == other.buckets, name
        assert stats.minimum == other.minimum, name
        assert stats.maximum == other.maximum, name
        assert stats.total == pytest.approx(other.total), name


class TestSnapshotMergeLaws:
    """merge is associative and commutative with ``empty`` as identity —
    the properties the sharded reduce relies on for scheduling freedom.
    (Associativity of timer totals holds up to float rounding.)"""

    SEEDS = range(12)

    def test_identity(self):
        empty = MetricsSnapshot.empty()
        for seed in self.SEEDS:
            snapshot = _random_snapshot(seed)
            assert snapshot.merge(empty) == snapshot, seed
            assert empty.merge(snapshot) == snapshot, seed

    def test_associativity(self):
        for seed in self.SEEDS:
            a = _random_snapshot(seed)
            b = _random_snapshot(seed + 100)
            c = _random_snapshot(seed + 200)
            _assert_snapshots_close(a.merge(b).merge(c), a.merge(b.merge(c)))

    def test_commutativity(self):
        for seed in self.SEEDS:
            a = _random_snapshot(seed)
            b = _random_snapshot(seed + 100)
            _assert_snapshots_close(a.merge(b), b.merge(a))

    def test_merge_semantics(self):
        left = MetricsRegistry()
        left.inc("n", 2)
        left.set_gauge("peak", 5.0)
        right = MetricsRegistry()
        right.inc("n", 3)
        right.set_gauge("peak", 9.0)
        merged = left.snapshot().merge(right.snapshot())
        assert merged.counters["n"] == 5  # counters sum
        assert merged.gauges["peak"] == 9.0  # gauges keep the peak

    def test_merge_snapshots_folds_many(self):
        parts = [_random_snapshot(seed) for seed in self.SEEDS]
        folded = merge_snapshots(parts)
        expected = MetricsSnapshot.empty()
        for part in parts:
            expected = expected.merge(part)
        _assert_snapshots_close(folded, expected)
        assert merge_snapshots([]) == MetricsSnapshot.empty()

    def test_payload_round_trip_is_json_stable(self):
        payload = _random_snapshot(3).to_payload()
        assert json.loads(json.dumps(payload)) == payload


# ----------------------------------------------------------------------
# RunLog integrity
# ----------------------------------------------------------------------


class TestRunLog:
    def _write(self, tmp_path, events):
        path = tmp_path / "run.jsonl"
        with RunLog(path) as log:
            for kind, fields in events:
                log.emit(kind, **fields)
        return path

    def test_round_trip(self, tmp_path):
        path = self._write(
            tmp_path,
            [("run_start", {"minsup": 3}), ("phase_start", {"phase": "search"})],
        )
        events = read_runlog(path)
        assert [event["kind"] for event in events] == [
            "run_start",
            "phase_start",
        ]
        assert events[0]["minsup"] == 3
        times = [event["t"] for event in events]
        assert times == sorted(times)

    def test_reserved_envelope_field_rejected(self, tmp_path):
        # 'kind' is the positional parameter itself, so passing it as a
        # field is a TypeError at call time; 't' reaches the guard.
        with RunLog(tmp_path / "run.jsonl") as log:
            with pytest.raises(UsageError):
                log.emit("evt", t=1.0)

    def test_no_file_until_first_emit(self, tmp_path):
        path = tmp_path / "run.jsonl"
        log = RunLog(path)
        assert not path.exists()
        log.close()
        assert not path.exists()

    def test_checksum_corruption_detected(self, tmp_path):
        path = self._write(tmp_path, [("run_start", {"minsup": 3})])
        text = path.read_text()
        path.write_text(text.replace('"minsup":3', '"minsup":4'))
        with pytest.raises(DataError):
            read_runlog(path)

    def test_sequence_gap_detected(self, tmp_path):
        path = self._write(
            tmp_path,
            [("a", {}), ("b", {}), ("c", {})],
        )
        lines = path.read_text().splitlines()
        path.write_text("\n".join([lines[0], lines[2]]) + "\n")
        with pytest.raises(DataError):
            read_runlog(path)

    def test_newer_format_version_rejected_as_usage(self, tmp_path):
        path = self._write(tmp_path, [("a", {})])
        path.write_text(path.read_text().replace("repro-runlog/1", "repro-runlog/2"))
        with pytest.raises(UsageError):
            read_runlog(path)

    def test_foreign_format_rejected_as_data(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"not": "a runlog"}\n')
        with pytest.raises(DataError):
            read_runlog(path)

    def test_torn_final_line_dropped(self, tmp_path):
        path = self._write(tmp_path, [("a", {}), ("b", {})])
        text = path.read_text()
        path.write_text(text[: len(text) - 20])  # tear the last record
        events = read_runlog(path)
        assert [event["kind"] for event in events] == ["a"]

    def test_close_idempotent(self, tmp_path):
        log = RunLog(tmp_path / "run.jsonl")
        log.emit("a")
        log.close()
        log.close()
        assert len(read_runlog(tmp_path / "run.jsonl")) == 1


# ----------------------------------------------------------------------
# Progress rendering
# ----------------------------------------------------------------------


class _TtyStream(io.StringIO):
    def isatty(self) -> bool:
        return True


class TestProgress:
    def test_format_count(self):
        assert format_count(999) == "999"
        assert format_count(12480) == "12,480"
        assert format_count(310_200) == "310.2k"
        assert format_count(1_500_000) == "1.5M"

    def test_format_eta(self):
        assert format_eta(None) == "--:--"
        assert format_eta(-3) == "--:--"
        assert format_eta(122) == "2:02"
        assert format_eta(3723) == "1:02:03"

    def test_non_tty_plain_lines(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream)
        reporter.update(
            "search", nodes=12480, rate=310_200.0,
            pruned_fraction=0.613, groups=18, eta_seconds=122, force=True,
        )
        text = stream.getvalue()
        assert "\r" not in text
        assert "search" in text
        assert "12,480" in text
        assert "310.2k/s" in text
        assert "61.3%" in text
        assert "2:02" in text

    def test_tty_rewrites_line(self):
        stream = _TtyStream()
        reporter = ProgressReporter(stream)
        reporter.update("search", nodes=1, rate=1.0, force=True)
        reporter.update("search", nodes=2, rate=1.0, force=True)
        reporter.finish("done")
        text = stream.getvalue()
        assert "\r" in text
        assert text.rstrip().endswith("done")

    def test_throttle_without_force(self):
        stream = io.StringIO()
        reporter = ProgressReporter(stream)
        reporter.update("search", nodes=1, rate=1.0, force=True)
        reporter.update("search", nodes=2, rate=1.0)  # within interval
        assert stream.getvalue().count("nodes") == 1


# ----------------------------------------------------------------------
# Byte-identity: telemetry is a pure observer
# ----------------------------------------------------------------------


def _telemetry(tmp_path, tag):
    return Telemetry(
        runlog=RunLog(tmp_path / f"{tag}.jsonl"),
        progress=ProgressReporter(io.StringIO(), interval=0.0),
        sample_interval=0.01,
    )


class TestByteIdentity:
    def test_serial_output_identical(self, paper_dataset, tmp_path):
        reference = _serialized(
            mine_irgs(paper_dataset, "C", minsup=MINSUP), tmp_path, "ref"
        )
        telemetry = _telemetry(tmp_path, "serial")
        observed = Farmer(
            Constraints(minsup=MINSUP), telemetry=telemetry
        ).mine(paper_dataset, "C")
        telemetry.close()
        assert _serialized(observed, tmp_path, "obs") == reference
        events = read_runlog(tmp_path / "serial.jsonl")
        kinds = [event["kind"] for event in events]
        assert kinds[0] == "run_start"
        assert kinds[-1] == "run_end"
        assert "metrics" in kinds

    def test_serial_random_datasets_identical(self, tmp_path):
        for seed in range(6):
            data = random_dataset(seed, max_rows=11)
            reference = _serialized(
                mine_irgs(data, "C", minsup=MINSUP), tmp_path, f"r{seed}"
            )
            telemetry = _telemetry(tmp_path, f"rand-{seed}")
            observed = Farmer(
                Constraints(minsup=MINSUP), telemetry=telemetry
            ).mine(data, "C")
            telemetry.close()
            assert _serialized(observed, tmp_path, f"o{seed}") == reference, seed

    def test_sharded_output_and_checkpoint_identical(
        self, paper_dataset, tmp_path
    ):
        bare_ckpt = tmp_path / "bare.ckpt"
        reference = _serialized(
            mine_irgs(
                paper_dataset,
                "C",
                minsup=MINSUP,
                n_workers=2,
                checkpoint=str(bare_ckpt),
            ),
            tmp_path,
            "bare",
        )
        telemetry = _telemetry(tmp_path, "sharded")
        observed_ckpt = tmp_path / "observed.ckpt"
        observed = Farmer(
            Constraints(minsup=MINSUP),
            n_workers=2,
            checkpoint=str(observed_ckpt),
            telemetry=telemetry,
        ).mine(paper_dataset, "C")
        telemetry.close()
        assert _serialized(observed, tmp_path, "shobs") == reference
        assert _checkpoint_payload(observed_ckpt) == _checkpoint_payload(
            bare_ckpt
        )
        kinds = {event["kind"] for event in read_runlog(tmp_path / "sharded.jsonl")}
        assert {"run_start", "task_done", "checkpoint", "run_end"} <= kinds

    def test_killed_and_resumed_run_identical(
        self, paper_dataset, tmp_path, chaos
    ):
        reference = _serialized(
            mine_irgs(paper_dataset, "C", minsup=MINSUP), tmp_path, "kref"
        )
        ckpt = tmp_path / "crash.ckpt"
        chaos.arm("ckpt-raise:after=1")
        telemetry = _telemetry(tmp_path, "crashed")
        with pytest.raises(InjectedFault):
            Farmer(
                Constraints(minsup=MINSUP),
                n_workers=2,
                checkpoint=str(ckpt),
                telemetry=telemetry,
            ).mine(paper_dataset, "C")
        telemetry.close()
        chaos.disarm()
        resumed_telemetry = _telemetry(tmp_path, "resumed")
        resumed = Farmer(
            Constraints(minsup=MINSUP),
            n_workers=2,
            resume=str(ckpt),
            telemetry=resumed_telemetry,
        ).mine(paper_dataset, "C")
        resumed_telemetry.close()
        assert _serialized(resumed, tmp_path, "kres") == reference
        kinds = {event["kind"] for event in read_runlog(tmp_path / "resumed.jsonl")}
        assert "resume" in kinds

    def test_run_end_snapshot_has_search_counters(self, paper_dataset, tmp_path):
        telemetry = _telemetry(tmp_path, "counters")
        result = Farmer(
            Constraints(minsup=MINSUP), telemetry=telemetry
        ).mine(paper_dataset, "C")
        telemetry.close()
        events = read_runlog(tmp_path / "counters.jsonl")
        metrics = next(e for e in events if e["kind"] == "metrics")
        assert metrics["counters"]["search.nodes"] == result.counters.nodes
        assert "phase.search.seconds" in metrics["timers"]


# ----------------------------------------------------------------------
# CLI end to end
# ----------------------------------------------------------------------


class TestCliEndToEnd:
    def test_mine_with_progress_and_metrics_out(self, tmp_path, capsys):
        bare = tmp_path / "bare.irgs"
        code = main(
            [
                "mine",
                "--dataset",
                "LC",
                "--scale",
                "0.01",
                "--minsup",
                "8",
                "--save",
                str(bare),
            ]
        )
        assert code == 0
        observed = tmp_path / "observed.irgs"
        runlog = tmp_path / "run.jsonl"
        code = main(
            [
                "mine",
                "--dataset",
                "LC",
                "--scale",
                "0.01",
                "--minsup",
                "8",
                "--save",
                str(observed),
                "--progress",
                "--metrics-out",
                str(runlog),
            ]
        )
        captured = capsys.readouterr()
        assert code == 0
        assert observed.read_bytes() == bare.read_bytes()
        assert f"wrote run log to {runlog}" in captured.out
        assert "mined" in captured.err  # progress summary on stderr
        events = read_runlog(runlog)
        assert events[0]["kind"] == "run_start"
        assert events[-1]["kind"] == "run_end"


# ----------------------------------------------------------------------
# Documentation catalogue coverage
# ----------------------------------------------------------------------


class TestDocsCatalogue:
    """Every emitted metric and event name is documented."""

    @pytest.fixture(scope="class")
    def catalogue(self, tmp_path_factory):
        tmp_path = tmp_path_factory.mktemp("catalogue")
        data_holder = {}

        def run(tag, **farmer_kwargs):
            from conftest import letter_items  # paper fixture is function-scoped

            from repro.data.dataset import ItemizedDataset

            if "data" not in data_holder:
                rows = [
                    letter_items("abclos"),
                    letter_items("adehplr"),
                    letter_items("acehoqt"),
                    letter_items("aefhpr"),
                    letter_items("bdfglqst"),
                ]
                data_holder["data"] = ItemizedDataset.from_lists(
                    rows,
                    ["C", "C", "C", "N", "N"],
                    n_items=20,
                    name="figure1",
                )
            telemetry = _telemetry(tmp_path, tag)
            Farmer(
                Constraints(minsup=MINSUP), telemetry=telemetry, **farmer_kwargs
            ).mine(data_holder["data"], "C")
            telemetry.close()
            return read_runlog(tmp_path / f"{tag}.jsonl")

        serial = run("serial")
        sharded = run(
            "sharded", n_workers=2, checkpoint=str(tmp_path / "cat.ckpt")
        )
        kinds, names = set(), set()
        for event in serial + sharded:
            kinds.add(event["kind"])
            if event["kind"] == "metrics":
                for section in ("counters", "gauges", "timers"):
                    names.update(event.get(section, {}))
        return kinds, names

    def test_all_emitted_names_documented(self, catalogue):
        doc = (
            Path(__file__).resolve().parent.parent
            / "docs"
            / "observability.md"
        ).read_text()
        kinds, names = catalogue
        missing = sorted(
            {kind for kind in kinds if f"`{kind}`" not in doc}
            | {name for name in names if f"`{name}`" not in doc}
        )
        assert not missing, f"undocumented metrics/events: {missing}"

    def test_catalogue_is_substantial(self, catalogue):
        kinds, names = catalogue
        assert {"run_start", "phase_start", "phase_end", "metrics", "run_end"} <= kinds
        assert any(name.startswith("search.") for name in names)
        assert any(name.startswith("parallel.") for name in names)
        assert any(name.startswith("kernel.") for name in names)
