"""Unit tests for the ASCII figure renderer."""

from repro.experiments.harness import Series, TimedRun
from repro.experiments.plots import ascii_chart


def make_series():
    farmer = Series(
        "FARMER",
        [9, 8, 7],
        [TimedRun(0.5, 10), TimedRun(1.0, 20), TimedRun(2.0, 40)],
    )
    charm = Series(
        "CHARM",
        [9, 8, 7],
        [TimedRun(30.0, 1), TimedRun(31.0, 1), TimedRun(32.0, 1)],
    )
    return farmer, charm


class TestAsciiChart:
    def test_contains_title_and_legend(self):
        farmer, charm = make_series()
        text = ascii_chart("Figure 10 (X)", [farmer, charm])
        assert "Figure 10 (X)" in text
        assert "[F]FARMER" in text
        assert "[C]CHARM" in text

    def test_distinct_markers_for_colliding_names(self):
        columne = Series("ColumnE", [1], [TimedRun(1.0, 1)])
        charm = Series("CHARM", [1], [TimedRun(2.0, 1)])
        text = ascii_chart("t", [columne, charm])
        assert "[C]ColumnE" in text
        assert "[H]CHARM" in text

    def test_extremes_labelled(self):
        farmer, charm = make_series()
        text = ascii_chart("t", [farmer, charm])
        assert "0.500s" in text  # min
        assert "32.0s" in text  # max

    def test_log_scale_note(self):
        farmer, _ = make_series()
        assert "log-scale" in ascii_chart("t", [farmer])
        assert "log-scale" not in ascii_chart("t", [farmer], log_y=False)

    def test_x_axis_values(self):
        farmer, _ = make_series()
        text = ascii_chart("t", [farmer])
        last_axis_line = [l for l in text.splitlines() if "9" in l][-1]
        assert "8" in last_axis_line and "7" in last_axis_line

    def test_timeout_points_dropped(self):
        broken = Series(
            "Broken", [1, 2], [TimedRun(1.0, 5), TimedRun(60.0, 0, "timeout")]
        )
        text = ascii_chart("t", [broken])
        assert text.count("B") >= 1  # only the ok point plotted

    def test_no_points(self):
        empty = Series("Empty", [1], [TimedRun(60.0, 0, "timeout")])
        assert "no completed points" in ascii_chart("t", [empty])

    def test_flat_series(self):
        flat = Series("Flat", [1, 2], [TimedRun(1.0, 1), TimedRun(1.0, 1)])
        text = ascii_chart("t", [flat])
        assert "F" in text
