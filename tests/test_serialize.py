"""Unit tests for rule-group persistence."""

import pytest

from repro import Constraints, mine_irgs
from repro.core.serialize import load_rule_groups, save_rule_groups
from repro.errors import DataError


@pytest.fixture
def mined(paper_dataset):
    result = mine_irgs(
        paper_dataset, "C", minsup=1, compute_lower_bounds=True
    )
    return result


class TestRoundTrip:
    def test_groups_survive(self, tmp_path, mined):
        path = tmp_path / "groups.irgs"
        save_rule_groups(
            path, mined.groups, constraints=mined.constraints,
            dataset_name="figure1",
        )
        loaded, header = load_rule_groups(path)
        assert {g.upper for g in loaded} == mined.upper_antecedents()
        by_upper = {g.upper: g for g in loaded}
        for group in mined.groups:
            twin = by_upper[group.upper]
            assert twin.rows == group.rows
            assert twin.support == group.support
            assert twin.lower_bounds == group.lower_bounds
            assert twin.confidence == pytest.approx(group.confidence)

    def test_header_metadata(self, tmp_path, mined):
        path = tmp_path / "groups.irgs"
        save_rule_groups(
            path, mined.groups, constraints=Constraints(minsup=1),
            dataset_name="figure1",
        )
        _, header = load_rule_groups(path)
        assert header["dataset"] == "figure1"
        assert header["consequent"] == "C"
        assert header["n"] == 5 and header["m"] == 3
        assert header["constraints"]["minsup"] == 1
        assert header["count"] == len(mined.groups)

    def test_groups_without_lower_bounds(self, tmp_path, paper_dataset):
        result = mine_irgs(paper_dataset, "C", minsup=2)
        path = tmp_path / "nolb.irgs"
        save_rule_groups(path, result.groups)
        loaded, _ = load_rule_groups(path)
        assert all(group.lower_bounds is None for group in loaded)

    def test_empty_result(self, tmp_path):
        path = tmp_path / "empty.irgs"
        save_rule_groups(path, [])
        loaded, header = load_rule_groups(path)
        assert loaded == [] and header["count"] == 0


class TestValidation:
    def test_mixed_consequents_rejected(self, tmp_path, paper_dataset):
        c_groups = mine_irgs(paper_dataset, "C", minsup=1).groups
        n_groups = mine_irgs(paper_dataset, "N", minsup=1).groups
        with pytest.raises(DataError):
            save_rule_groups(tmp_path / "x.irgs", c_groups + n_groups)

    def test_bad_format(self, tmp_path):
        path = tmp_path / "bad.irgs"
        path.write_text('{"format": "something-else"}\n')
        with pytest.raises(DataError, match="format"):
            load_rule_groups(path)

    def test_bad_json(self, tmp_path):
        path = tmp_path / "corrupt.irgs"
        path.write_text("not json at all\n")
        with pytest.raises(DataError):
            load_rule_groups(path)

    def test_count_mismatch(self, tmp_path, mined):
        path = tmp_path / "short.irgs"
        save_rule_groups(path, mined.groups)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop one group
        with pytest.raises(DataError, match="promises"):
            load_rule_groups(path)

    def test_corrupt_record(self, tmp_path, mined):
        path = tmp_path / "rec.irgs"
        save_rule_groups(path, mined.groups)
        lines = path.read_text().splitlines()
        lines[1] = '{"upper": [0]}'  # missing fields
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(DataError, match=":2"):
            load_rule_groups(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "void.irgs"
        path.write_text("")
        with pytest.raises(DataError):
            load_rule_groups(path)
