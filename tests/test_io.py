"""Unit tests for dataset and matrix persistence."""

import numpy as np
import pytest

from repro.data.dataset import ItemizedDataset
from repro.data.io import (
    load_expression,
    load_itemized,
    save_expression,
    save_itemized,
)
from repro.data.matrix import GeneExpressionMatrix
from repro.errors import DataError


class TestItemizedRoundTrip:
    def test_round_trip(self, tmp_path):
        data = ItemizedDataset.from_lists(
            [[0, 2], [1], []],
            ["C", "D", "C"],
            n_items=3,
            item_names=["alpha", "beta", "gamma"],
            name="rt",
        )
        path = tmp_path / "data.items"
        save_itemized(data, path)
        loaded = load_itemized(path)
        assert loaded.rows == data.rows
        assert loaded.labels == ("C", "D", "C")
        assert loaded.n_items == 3
        assert loaded.item_names == ("alpha", "beta", "gamma")
        assert loaded.name == "rt"

    def test_round_trip_without_names(self, tmp_path):
        data = ItemizedDataset.from_lists([[0]], ["x"], n_items=1)
        path = tmp_path / "plain.items"
        save_itemized(data, path)
        assert load_itemized(path).item_names is None

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.items"
        path.write_text("not a dataset\n")
        with pytest.raises(DataError):
            load_itemized(path)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "nohdr.items"
        path.write_text("# repro-itemized v1\nC\t0 1\n")
        with pytest.raises(DataError, match="n_items"):
            load_itemized(path)

    def test_bad_item_id(self, tmp_path):
        path = tmp_path / "badid.items"
        path.write_text("# repro-itemized v1\n# n_items 3\nC\t0 zebra\n")
        with pytest.raises(DataError, match="badid.items:3"):
            load_itemized(path)

    def test_missing_tab(self, tmp_path):
        path = tmp_path / "notab.items"
        path.write_text("# repro-itemized v1\n# n_items 3\njust-a-label\n")
        with pytest.raises(DataError, match="tab"):
            load_itemized(path)


class TestExpressionRoundTrip:
    def test_round_trip(self, tmp_path):
        matrix = GeneExpressionMatrix.from_arrays(
            [[1.5, -2.25], [0.0, 3.125]],
            ["t", "n"],
            gene_names=["gA", "gB"],
            name="expr",
        )
        path = tmp_path / "expr.tsv"
        save_expression(matrix, path)
        loaded = load_expression(path)
        assert np.array_equal(loaded.values, matrix.values)
        assert loaded.labels == ("t", "n")
        assert loaded.gene_names == ("gA", "gB")

    def test_name_defaults_to_stem(self, tmp_path):
        matrix = GeneExpressionMatrix.from_arrays([[1.0]], ["a"])
        path = tmp_path / "mystem.tsv"
        save_expression(matrix, path)
        assert load_expression(path).name == "mystem"

    def test_bad_header(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("nope\t1\n")
        with pytest.raises(DataError, match="header"):
            load_expression(path)

    def test_field_count_mismatch(self, tmp_path):
        path = tmp_path / "short.tsv"
        path.write_text("label\tg0\tg1\na\t1.0\n")
        with pytest.raises(DataError, match="expected 3 fields"):
            load_expression(path)

    def test_bad_value(self, tmp_path):
        path = tmp_path / "badval.tsv"
        path.write_text("label\tg0\na\tnot-a-number\n")
        with pytest.raises(DataError, match="bad value"):
            load_expression(path)

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.tsv"
        path.write_text("")
        with pytest.raises(DataError):
            load_expression(path)
