"""Reusable cross-engine conformance machinery.

The repo's guarantee structure is byte-identity: every engine registered
in :data:`repro.core.farmer.ENGINES` must serialize the exact same
``.irgs`` bytes as the ``kernel`` engine on the exact same search tree.
This module holds the machinery — engine discovery, serialization
helpers, the shared constraint/pruning grids — and
``test_engine_conformance.py`` drives it over every registered engine.

A new engine gets the whole suite for free: register it in ``ENGINES``
(and make :func:`repro.core.farmer.available_engines` report it) and the
parameterized tests pick it up — no new test code.  CI legs that only
care about one engine can restrict the sweep with the
:data:`ENGINES_ENV` environment variable (comma-separated engine
names).
"""

from __future__ import annotations

import os

import test_farmer_oracle

from repro.core.farmer import available_engines, mine_irgs
from repro.core.serialize import save_rule_groups

#: Comma-separated engine-name filter for the conformance sweep; unset
#: runs every available non-kernel engine.
ENGINES_ENV = "FARMER_CONFORMANCE_ENGINES"

#: The constraint grid every engine is differentially mined over
#: (shared with the oracle suite, the ground truth these engines chase).
CONSTRAINT_GRID = test_farmer_oracle.CONSTRAINT_GRID

#: Every pruning on/off combination (shared with the ablation suite).
PRUNING_COMBOS = test_farmer_oracle.TestPruningAblation.PRUNING_COMBOS


def engines_under_test() -> list[str]:
    """The engines the conformance suite compares against ``kernel``.

    Every available engine except the kernel baseline itself, optionally
    filtered down by :data:`ENGINES_ENV`.
    """
    names = [name for name in available_engines() if name != "kernel"]
    selected = os.environ.get(ENGINES_ENV)
    if selected is not None:
        wanted = {part.strip() for part in selected.split(",") if part.strip()}
        names = [name for name in names if name in wanted]
    return names


def irgs_bytes(result, tmp_path, tag) -> bytes:
    """The serialized ``.irgs`` bytes of a mining result."""
    path = tmp_path / f"{tag}.irgs"
    save_rule_groups(path, result.groups, constraints=result.constraints)
    return path.read_bytes()


def assert_serial_conformant(
    data, engine: str, tmp_path, tag: str, **constraints
):
    """Mine ``data`` serially with ``engine`` and ``kernel``; both runs
    must serialize identical bytes over an identical search tree.

    Returns:
        ``(kernel_result, engine_result)`` for additional assertions.
    """
    kernel = mine_irgs(data, "C", engine="kernel", **constraints)
    candidate = mine_irgs(data, "C", engine=engine, **constraints)
    assert irgs_bytes(candidate, tmp_path, f"{tag}-{engine}") == irgs_bytes(
        kernel, tmp_path, f"{tag}-kernel"
    ), (engine, tag)
    # Same traversal, same prunings — only cache telemetry and
    # bound-evaluation counts may differ between engines.
    assert candidate.counters.nodes == kernel.counters.nodes, (engine, tag)
    return kernel, candidate
