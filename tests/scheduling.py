"""Virtual work-stealing scheduler: a deterministic replay harness.

The production stealing executor
(:func:`repro.core.parallel._execute_tasks_stealing`) schedules *parts*
— slices of a shard's enumeration frontier — on a process pool, so the
interleaving of donations, steals and worker deaths depends on OS
scheduling.  Its correctness argument, however, is purely structural:
whatever the schedule, the per-part results stitch back into each
shard's serial candidate sequence, and the Step-7 admission replay then
reproduces the serial miner byte-for-byte.

This module tests that argument directly.  :func:`run_schedule` runs
the same decompose → part-enumeration → stitch → replay pipeline fully
in-process, with every scheduling decision — which pending part runs
next, how many nodes it may expand, whether its donated frontier is
split (and where), whether the attempt is killed before its results
land — drawn from an explicit :class:`Schedule`.  Hypothesis generates
adversarial schedules; shrinking then reports a *minimal* interleaving
for any violation, which no amount of re-running the real pool can do.

Schedules are plain decision streams, so a failing example can be
persisted with :func:`save_trace` (the same checksummed envelope the
checkpoint/steal wire format uses) and replayed bit-for-bit later.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.constraints import Constraints
from repro.core.enumeration import NodeCounters, merge_counters
from repro.core.farmer import (
    ALL_PRUNINGS,
    FRONTIER_STATE,
    Farmer,
    SearchContext,
    _IRGStore,
    enumerate_frontier,
)
from repro.core.parallel import (
    DEFAULT_ADVISORY_CAP,
    AdvisoryBounds,
    _assemble,
    _decompose,
)
from repro.core.serialize import load_checkpoint, save_checkpoint
from repro.data.transpose import TransposedTable

__all__ = [
    "MAX_ATTEMPTS",
    "Schedule",
    "VirtualRun",
    "load_trace",
    "run_schedule",
    "save_trace",
    "serialized_store",
]

#: Attempts per part before kill decisions are ignored (mirrors the
#: production retry ladder's "retries exhausted -> run inline" exit, and
#: guarantees the virtual run terminates under all-kill schedules).
MAX_ATTEMPTS = 3

#: Envelope tag for persisted traces.
TRACE_FORMAT = "repro-sched-trace/1"


@dataclass(frozen=True)
class Schedule:
    """Decision streams for one virtual run, each consumed cyclically.

    An empty stream means "always the default": FIFO dispatch, a large
    quantum (no donations), no splits, no kills, advisory bounds on.
    Streams of different lengths are fine — each advances at its own
    rate, which is exactly what makes short random lists explore long
    adversarial interleavings.

    Attributes:
        picks: selects which pending part runs next (modulo the queue
            length at that moment).
        quanta: node expansions the dispatched part may perform before
            donating its remaining frontier (clamped to >= 1).
        splits: donation split selector — 0 keeps the frontier whole,
            any other value picks the split point (modulo the legal
            positions), exercising *arbitrary* splits rather than the
            production half-split only.
        kills: truthy kills the dispatched attempt after it ran —
            results and donated frontier are discarded and the part is
            requeued, modelling a donor dying mid-donation.
        advisories: falsy runs the dispatched attempt without the
            shared advisory snapshot (a worker that raced ahead of a
            broadcast), which must not change the mined bytes.
    """

    picks: tuple[int, ...] = ()
    quanta: tuple[int, ...] = ()
    splits: tuple[int, ...] = ()
    kills: tuple[int, ...] = ()
    advisories: tuple[int, ...] = ()

    def to_payload(self) -> dict:
        """JSON-able form for the checksummed trace envelope."""
        return {
            "format": TRACE_FORMAT,
            "picks": list(self.picks),
            "quanta": list(self.quanta),
            "splits": list(self.splits),
            "kills": list(self.kills),
            "advisories": list(self.advisories),
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "Schedule":
        """Inverse of :meth:`to_payload`."""
        if payload.get("format") != TRACE_FORMAT:
            raise ValueError(
                f"not a scheduling trace: {payload.get('format')!r}"
            )
        return cls(
            picks=tuple(payload["picks"]),
            quanta=tuple(payload["quanta"]),
            splits=tuple(payload["splits"]),
            kills=tuple(payload["kills"]),
            advisories=tuple(payload["advisories"]),
        )


class _Stream:
    """Cyclic reader over one decision list (default when empty)."""

    def __init__(self, values, default):
        self._values = tuple(values)
        self._default = default
        self._cursor = 0

    def next(self):
        if not self._values:
            return self._default
        value = self._values[self._cursor % len(self._values)]
        self._cursor += 1
        return value


class _VirtualPart:
    """The in-process mirror of :class:`repro.core.parallel._Part`."""

    __slots__ = (
        "shard",
        "seq",
        "units",
        "attempts",
        "candidates",
        "counters",
        "drops",
        "children",
    )

    def __init__(self, shard, seq, units):
        self.shard = shard
        self.seq = seq
        self.units = units
        self.attempts = 0
        self.candidates = []
        self.counters = NodeCounters()
        self.drops = 0
        self.children = []

    def flatten(self, out):
        out.extend(self.candidates)
        for child in self.children:
            child.flatten(out)


@dataclass
class VirtualRun:
    """Everything a differential assertion needs from one virtual run."""

    store: _IRGStore
    counters: NodeCounters
    dispatches: int = 0
    donations: int = 0
    splits: int = 0
    kills: int = 0
    trace: list = field(default_factory=list)


def run_schedule(
    data,
    consequent,
    constraints: Constraints,
    schedule: Schedule,
    *,
    engine: str = "kernel",
    target: int = 6,
    advisory_cap: int = DEFAULT_ADVISORY_CAP,
) -> VirtualRun:
    """Mine ``data`` under an explicit steal schedule, fully in-process.

    Runs the decompose → part-enumeration → stitch → Step-7 replay
    pipeline of the stealing executor with every scheduling decision
    taken from ``schedule`` instead of a process pool, and records the
    decision trace actually consumed.

    Args:
        data: the itemized dataset to mine.
        consequent: the class label on the rule RHS.
        constraints: admission thresholds.
        schedule: the decision streams driving the virtual scheduler.
        engine: per-node expansion engine (the frontier walker is
            engine-generic, so ``kernel`` and ``numpy`` both steal).
        target: decomposition target (small keeps shard counts small so
            ``picks`` values cover the queue densely).
        advisory_cap: maximum advisory bounds kept per snapshot.

    Returns:
        The :class:`VirtualRun` — offer-ordered store, merged counters
        (coordinator + replay + every shard), and scheduling tallies.
    """
    table = TransposedTable.build(data, consequent)
    ctx = SearchContext.for_table(table, constraints, ALL_PRUNINGS, engine=engine)
    coordinator = NodeCounters()
    run = VirtualRun(store=_IRGStore(), counters=NodeCounters())
    store = run.store
    if table.n == 0 or not table.item_masks:
        run.counters = merge_counters([coordinator])
        return run
    plan, tasks, _ = _decompose(
        ctx, ctx.root_state(table), coordinator, target, 4 * target, None, True
    )

    picks = _Stream(schedule.picks, 0)
    quanta = _Stream(schedule.quanta, 2**62)
    splits = _Stream(schedule.splits, 0)
    kills = _Stream(schedule.kills, 0)
    advisories = _Stream(schedule.advisories, 1)

    shared = AdvisoryBounds(cap=advisory_cap)
    pending: list[_VirtualPart] = []
    shard_parts: dict[int, list[_VirtualPart]] = {}
    shard_open: dict[int, int] = {}
    sequence = 0
    for index, leaf in enumerate(tasks):
        part = _VirtualPart(index, sequence, [(FRONTIER_STATE, leaf.state)])
        sequence += 1
        pending.append(part)
        shard_parts[index] = [part]
        shard_open[index] = 1

    while pending:
        index = picks.next() % len(pending)
        part = pending.pop(index)
        quantum = max(1, quanta.next())
        use_advisory = bool(advisories.next())
        advisory = (
            AdvisoryBounds(shared.snapshot(), cap=advisory_cap)
            if use_advisory
            else None
        )
        sink: list = []
        counters = NodeCounters()
        frontier = enumerate_frontier(
            ctx, part.units, counters, sink, quantum, advisory, None
        )
        run.dispatches += 1
        kill = bool(kills.next()) and part.attempts < MAX_ATTEMPTS - 1
        event = {
            "part": part.seq,
            "shard": part.shard,
            "quantum": quantum,
            "advisory": int(use_advisory),
            "killed": int(kill),
            "donated": 0 if frontier is None else len(frontier),
            "split_at": 0,
        }
        if kill:
            # The attempt dies with its results and its donated half —
            # the part itself survives on the queue, like the
            # production requeue after a donor death.
            part.attempts += 1
            run.kills += 1
            run.trace.append(event)
            pending.append(part)
            continue
        part.candidates = sink
        part.counters = counters
        part.drops = advisory.drops if advisory is not None else 0
        for candidate in sink:
            shared.extend(
                candidate.item_mask,
                len(candidate.item_ids),
                candidate.confidence,
            )
        if frontier is not None:
            run.donations += 1
            selector = splits.next()
            if selector and len(frontier) >= 2:
                point = selector % (len(frontier) - 1) + 1
                chunks = [frontier[:point], frontier[point:]]
                event["split_at"] = point
                run.splits += 1
            else:
                chunks = [frontier]
            for chunk in chunks:
                child = _VirtualPart(part.shard, sequence, chunk)
                sequence += 1
                part.children.append(child)
                shard_parts[part.shard].append(child)
                shard_open[part.shard] += 1
                pending.append(child)
        run.trace.append(event)
        shard_open[part.shard] -= 1
        if shard_open[part.shard] == 0:
            parts = shard_parts[part.shard]
            leaf = tasks[part.shard]
            stitched: list = []
            parts[0].flatten(stitched)
            leaf.candidates = stitched
            leaf.counters = merge_counters([p.counters for p in parts])
            leaf.drops = sum(p.drops for p in parts)

    replay = NodeCounters()
    candidates: list = []
    _assemble(plan, candidates)
    for candidate in candidates:
        store.offer(candidate, replay)
    run.counters = merge_counters(
        [coordinator, replay, *(leaf.counters for leaf in tasks)]
    )
    return run


def serialized_store(data, consequent, constraints, store, path) -> bytes:
    """The exact ``.irgs`` bytes ``core.serialize`` writes for ``store``.

    Routes through the same group-building path the serial miner uses
    (:class:`~repro.core.farmer.Farmer`), so comparing these bytes
    against a serial run compares the full user-visible artifact.
    """
    from repro.core.serialize import save_rule_groups

    groups = Farmer(constraints=constraints)._finish_groups(
        TransposedTable.build(data, consequent), store
    )
    save_rule_groups(path, groups, constraints=constraints)
    return path.read_bytes()


def save_trace(path, schedule: Schedule) -> None:
    """Persist a schedule in the checksummed checkpoint envelope."""
    save_checkpoint(path, schedule.to_payload())


def load_trace(path) -> Schedule:
    """Load a schedule persisted by :func:`save_trace` (verified)."""
    return Schedule.from_payload(load_checkpoint(path))
