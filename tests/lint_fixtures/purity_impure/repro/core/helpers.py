"""Fixture helpers: ``fold`` calls ``trace``, which is impure."""

__all__ = ["fold", "trace"]

_SEEN = {}


def trace(value):
    """Impure: console IO plus mutation of module-level state."""
    print("fold", value)
    _SEEN[value] = True
    return value


def fold(state, row):
    """One enumeration step, indirectly impure via ``trace``."""
    return trace(state | row)
