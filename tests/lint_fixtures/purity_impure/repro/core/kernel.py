"""Fixture hot root whose call graph reaches impure helpers."""

from .helpers import fold

__all__ = ["extend_and_scan"]


def extend_and_scan(state, rows):
    """Hot root: two hops below, ``trace`` prints and mutates a cache."""
    best = state
    for row in rows:
        best = fold(best, row)
    return best
