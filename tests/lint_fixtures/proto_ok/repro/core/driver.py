"""Fixture driver registering the conforming engine against the seam."""

from .engines import OkTable
from .kernel import CondTableProtocol

__all__ = ["root_state"]


def root_state(rows):
    """Bind the engine via its classmethod constructor."""
    cond: CondTableProtocol = OkTable.build(rows)
    return cond
