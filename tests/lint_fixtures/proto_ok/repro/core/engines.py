"""Fixture engine that satisfies the protocol exactly.

Data attributes (``inter``, ``union``) live in ``__slots__``, which the
conformance rule must accept as satisfying annotated protocol members.
The engine is registered through a classmethod constructor to exercise
that resolution path too.
"""

__all__ = ["OkTable"]


class OkTable:
    """A conforming ``CondTableProtocol`` implementation."""

    __slots__ = ("inter", "union", "rows")

    def __init__(self, inter, union, rows):
        self.inter = inter
        self.union = union
        self.rows = rows

    @classmethod
    def build(cls, rows):
        """Constructor used by the fixture driver registration."""
        return cls(0, 0, rows)

    @property
    def item_ids(self):
        """Sorted item identifiers."""
        return tuple(sorted(self.rows))

    def __len__(self):
        return len(self.rows)

    def extend(self, row_bit):
        """A new table with ``row_bit`` folded in."""
        return OkTable(self.inter & row_bit, self.union | row_bit, self.rows)

    def max_overlap(self, cand_mask):
        """Best overlap against ``cand_mask``."""
        return self.inter & cand_mask
