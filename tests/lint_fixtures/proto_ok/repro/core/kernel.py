"""Fixture protocol seam mirroring ``CondTableProtocol``."""

from typing import Protocol

__all__ = ["CondTableProtocol"]


class CondTableProtocol(Protocol):
    """Structural contract every fixture engine must satisfy."""

    inter: int
    union: int

    @property
    def item_ids(self):
        """Sorted item identifiers of the conditional table."""
        ...

    def __len__(self):
        """Number of rows."""
        ...

    def extend(self, row_bit):
        """A new table with ``row_bit`` folded in."""
        ...

    def max_overlap(self, cand_mask):
        """Best overlap against ``cand_mask``."""
        ...
