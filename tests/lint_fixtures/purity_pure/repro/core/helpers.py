"""Fixture helpers that mutate only their own parameters."""

__all__ = ["fold"]


def fold(state, row, scratch=None):
    """Pure under the rule: parameter mutation is allowed."""
    merged = state | row
    if scratch is not None:
        scratch.append(merged)
    return merged
