"""Fixture hot root whose whole call graph stays pure."""

from .helpers import fold

__all__ = ["extend_and_scan"]


def extend_and_scan(state, rows, on_step=None):
    """Hot root: helpers only touch parameters and locals."""
    best = state
    for row in rows:
        best = fold(best, row)
        if on_step is not None:
            on_step(best)
    return best
