"""Fixture pipeline: two tainted paths into sinks, two clean paths."""

from .checkpoint import TaskRecord
from .helpers import stamp, wrap
from .serialize import save_rule_groups

__all__ = ["Envelope", "clean", "emit", "project_clean", "record_task"]


def emit(path, groups):
    """BAD: a clock value crosses two helpers into the writer."""
    meta = wrap(stamp())
    return save_rule_groups(path, groups, meta)


def record_task(shard):
    """BAD: a clock value lands in a checkpoint record."""
    return TaskRecord(shard, stamp())


def clean(path, groups):
    """GOOD: only deterministic data reaches the writer."""
    return save_rule_groups(path, groups, {"n": len(groups)})


class Envelope:
    """Carrier object with a timing field next to payload data."""

    def __init__(self, groups, elapsed):
        self.groups = groups
        self.elapsed = elapsed


def project_clean(path, groups):
    """GOOD: the clock taint stays confined to ``Envelope.elapsed``."""
    box = Envelope(groups=groups, elapsed=stamp())
    return save_rule_groups(path, box.groups, {"n": 1})
