"""Fixture helpers: one entropy source behind two layers of calls.

``time.monotonic()`` is deliberately the source here: FRM002 allows
monotonic clocks (budgets and timings are legitimate), so only the
interprocedural taint pass can see that this particular value ends up
inside persisted records.
"""

import time

__all__ = ["stamp", "wrap"]


def stamp():
    """A monotonic reading, laundered through ``round``."""
    return round(time.monotonic(), 6)


def wrap(value):
    """Tuck ``value`` into an envelope dict."""
    return {"t": value}
