"""Fixture stand-in for the ``.irgs`` writer surface."""

__all__ = ["save_rule_groups"]


def save_rule_groups(path, groups, meta):
    """Pretend to persist ``groups`` with ``meta`` to ``path``."""
    return (path, tuple(groups), dict(meta))
