"""Fixture stand-in for the checkpoint record surface."""

__all__ = ["TaskRecord"]


class TaskRecord:
    """One fixture shard record."""

    def __init__(self, shard, payload):
        self.shard = shard
        self.payload = payload
