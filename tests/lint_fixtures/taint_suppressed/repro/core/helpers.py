"""Fixture helper whose source line carries a FRM009 suppression."""

import time

__all__ = ["stamp"]


def stamp():
    """A clock value some sink will receive — deliberately waved off."""
    return time.monotonic()  # farmer-lint: disable=FRM009
