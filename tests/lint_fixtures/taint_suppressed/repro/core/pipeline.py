"""Fixture pipeline whose only flow is suppressed at the source."""

from .helpers import stamp
from .serialize import save_rule_groups

__all__ = ["emit"]


def emit(path, groups):
    """The flow exists, but its source line is suppressed."""
    return save_rule_groups(path, groups, {"t": stamp()})
