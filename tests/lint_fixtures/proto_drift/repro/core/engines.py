"""Fixture engine that has drifted from the protocol.

Two deliberate violations: ``max_overlap`` is missing entirely, and
``extend`` renamed its parameter (``bit`` instead of ``row_bit``), so a
caller using the protocol's keyword name breaks.
"""

__all__ = ["DriftTable"]


class DriftTable:
    """An engine that no longer satisfies ``CondTableProtocol``."""

    __slots__ = ("inter", "union", "rows")

    def __init__(self, inter, union, rows):
        self.inter = inter
        self.union = union
        self.rows = rows

    @property
    def item_ids(self):
        """Sorted item identifiers."""
        return tuple(sorted(self.rows))

    def __len__(self):
        return len(self.rows)

    def extend(self, bit):
        """Renamed parameter: protocol callers pass ``row_bit=``."""
        return DriftTable(self.inter & bit, self.union | bit, self.rows)
