"""Fixture driver registering the drifted engine against the seam."""

from .engines import DriftTable
from .kernel import CondTableProtocol

__all__ = ["root_state"]


def root_state(rows):
    """Bind the engine exactly like the real ``root_state`` does."""
    cond: CondTableProtocol
    cond = DriftTable(0, 0, rows)
    return cond
