"""Fixture helpers with no entropy reaching any sink.

A monotonic deadline is read and *used* — but only for control flow,
never as a value that lands in persisted output; and iteration happens
over a sorted view of the set, which is deterministic.
"""

import time

__all__ = ["budget_ok", "ordered_items"]


def budget_ok(deadline):
    """Control flow on the clock is fine; the value goes nowhere."""
    return time.monotonic() < deadline


def ordered_items(items):
    """Sorting launders the unordered container before iteration."""
    return [item for item in sorted(set(items))]
