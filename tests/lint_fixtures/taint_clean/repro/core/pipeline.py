"""Fixture pipeline where every sink call is deterministic."""

from .helpers import ordered_items
from .serialize import save_rule_groups

__all__ = ["emit"]


def emit(path, groups):
    """Deterministic data only: sorted items and counts."""
    meta = {"n": len(groups), "items": ordered_items(groups)}
    return save_rule_groups(path, groups, meta)
