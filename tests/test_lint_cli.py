"""Tests for the farmer-lint engine plumbing, reporters, baseline and CLI."""

import json

import pytest

from repro.analysis import Engine, load_baseline, save_baseline
from repro.analysis.base import parse_suppressions
from repro.analysis.baseline import BASELINE_VERSION, partition
from repro.analysis.engine import iter_python_files
from repro.analysis.reporters import JSON_REPORT_VERSION, render_json, render_text
from repro.cli import main
from repro.errors import DataError

BAD_CORE = (
    '"""Doc."""\n'
    '__all__ = ["check"]\n'
    "def check(x):\n"
    '    """Doc."""\n'
    '    raise ValueError("bad")\n'
)


@pytest.fixture
def bad_tree(tmp_path):
    """A fixture package with one FRM006 violation in core/."""
    target = tmp_path / "repro" / "core" / "mod.py"
    target.parent.mkdir(parents=True)
    target.write_text(BAD_CORE)
    return tmp_path


class TestSuppressionParsing:
    def test_single_and_multiple_ids(self):
        lines = [
            "x = 1  # farmer-lint: disable=FRM001",
            "y = 2  # farmer-lint: disable=FRM002, FRM006",
            "z = 3  # farmer-lint: disable",
            "w = 4",
        ]
        parsed = parse_suppressions(lines)
        assert parsed[1] == frozenset({"FRM001"})
        assert parsed[2] == frozenset({"FRM002", "FRM006"})
        assert parsed[3] == frozenset({"*"})
        assert 4 not in parsed


class TestEngine:
    def test_missing_path_raises_data_error(self, tmp_path):
        with pytest.raises(DataError):
            list(iter_python_files([tmp_path / "nope"]))

    def test_discovery_is_sorted_and_skips_pycache(self, tmp_path):
        (tmp_path / "b.py").write_text("")
        (tmp_path / "a.py").write_text("")
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "a.cpython-312.pyc.py").write_text("")
        names = [p.name for p in iter_python_files([tmp_path])]
        assert names == ["a.py", "b.py"]

    def test_syntax_error_reported_as_data_error(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        with pytest.raises(DataError, match="syntax error"):
            Engine(root=tmp_path).lint_paths([tmp_path])

    def test_findings_are_sorted(self, bad_tree):
        target = bad_tree / "repro" / "core" / "mod2.py"
        target.write_text(BAD_CORE + 'def more(x):\n    raise TypeError("x")\n')
        result = Engine(root=bad_tree).lint_paths([bad_tree])
        keys = [f.sort_key for f in result.findings]
        assert keys == sorted(keys)
        assert result.n_files == 2


class TestReporters:
    def test_text_report_lines(self, bad_tree):
        result = Engine(root=bad_tree).lint_paths([bad_tree])
        text = render_text(result)
        assert "repro/core/mod.py:5:4: FRM006" in text
        assert text.endswith("1 finding in 1 file")

    def test_json_schema(self, bad_tree):
        result = Engine(root=bad_tree).lint_paths([bad_tree])
        payload = json.loads(render_json(result))
        assert payload["version"] == JSON_REPORT_VERSION
        assert payload["summary"] == {
            "files": 1,
            "findings": 1,
            "baselined": 0,
            "suppressed": 0,
        }
        (finding,) = payload["findings"]
        assert sorted(finding) == ["col", "line", "message", "name", "path", "rule"]
        assert finding["rule"] == "FRM006"
        assert finding["path"] == "repro/core/mod.py"
        assert finding["line"] == 5


class TestBaseline:
    def test_round_trip(self, bad_tree, tmp_path):
        result = Engine(root=bad_tree).lint_paths([bad_tree])
        baseline_file = tmp_path / "baseline.json"
        save_baseline(baseline_file, result.findings)
        payload = json.loads(baseline_file.read_text())
        assert payload["version"] == BASELINE_VERSION
        baseline = load_baseline(baseline_file)
        new, grandfathered = partition(result.findings, baseline)
        assert new == []
        assert len(grandfathered) == 1

    def test_multiplicity_matters(self, bad_tree, tmp_path):
        result = Engine(root=bad_tree).lint_paths([bad_tree])
        (finding,) = result.findings
        baseline_file = tmp_path / "baseline.json"
        save_baseline(baseline_file, [finding])
        baseline = load_baseline(baseline_file)
        # Two identical violations against one baselined occurrence: one
        # is grandfathered, the duplicate is new.
        new, grandfathered = partition([finding, finding], baseline)
        assert len(new) == 1
        assert len(grandfathered) == 1

    def test_malformed_baseline_rejected(self, tmp_path):
        target = tmp_path / "baseline.json"
        target.write_text("[]")
        with pytest.raises(DataError):
            load_baseline(target)
        target.write_text("{not json")
        with pytest.raises(DataError):
            load_baseline(target)
        with pytest.raises(DataError):
            load_baseline(tmp_path / "missing.json")


class TestCli:
    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for index in range(1, 12):
            assert f"FRM{index:03d}" in out

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        target = tmp_path / "repro" / "ok.py"
        target.parent.mkdir()
        target.write_text('"""Doc."""\n')
        assert main(["lint", str(target)]) == 0
        assert "0 findings" in capsys.readouterr().out

    def test_findings_exit_one(self, bad_tree, capsys):
        assert main(["lint", str(bad_tree)]) == 1
        assert "FRM006" in capsys.readouterr().out

    def test_bad_path_one_line_error(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "missing")]) == 2
        out = capsys.readouterr().out.strip()
        assert out.startswith("error:")
        assert len(out.splitlines()) == 1

    def test_json_format(self, bad_tree, capsys):
        assert main(["lint", str(bad_tree), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["summary"]["findings"] == 1

    def test_update_baseline_then_clean(self, bad_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "lint",
                    str(bad_tree),
                    "--baseline",
                    str(baseline),
                    "--update-baseline",
                ]
            )
            == 0
        )
        assert "wrote 1 finding" in capsys.readouterr().out
        assert (
            main(["lint", str(bad_tree), "--baseline", str(baseline)]) == 0
        )
        out = capsys.readouterr().out
        assert "0 findings" in out and "1 baselined" in out

    def test_new_finding_beyond_baseline_fails(self, bad_tree, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        main(["lint", str(bad_tree), "--baseline", str(baseline),
              "--update-baseline"])
        capsys.readouterr()
        extra = bad_tree / "repro" / "core" / "extra.py"
        extra.write_text("def check(x):\n    assert x\n")
        assert main(["lint", str(bad_tree), "--baseline", str(baseline)]) == 1
        assert "FRM006" in capsys.readouterr().out

    def test_unreadable_baseline_one_line_error(self, bad_tree, tmp_path, capsys):
        baseline = tmp_path / "broken.json"
        baseline.write_text("{")
        assert main(["lint", str(bad_tree), "--baseline", str(baseline)]) == 2
        assert capsys.readouterr().out.startswith("error:")

    def test_repo_gate_matches_ci_invocation(self, capsys, monkeypatch):
        """The exact CI gate: ``farmer lint <package>`` exits 0."""
        import repro
        from pathlib import Path

        package_root = Path(repro.__file__).resolve().parent
        assert main(["lint", str(package_root)]) == 0
        capsys.readouterr()
