"""Tests for the dataset profiler."""

import pytest

from repro.data.dataset import ItemizedDataset
from repro.data.profile import profile_dataset, profile_report
from repro.errors import DataError


def wide_dataset():
    """3 rows, 9 items: row-enumeration territory."""
    rows = [[0, 1, 2, 3], [2, 3, 4, 5], [5, 6, 7, 8]]
    return ItemizedDataset.from_lists(
        rows, ["a", "a", "b"], n_items=9, name="wide"
    )


def tall_dataset():
    """12 rows, 2 items: column-enumeration territory."""
    rows = [[0], [1], [0, 1]] * 4
    return ItemizedDataset.from_lists(
        rows, ["a", "b"] * 6, n_items=2, name="tall"
    )


class TestProfileDataset:
    def test_shape_fields(self):
        profile = profile_dataset(wide_dataset())
        assert profile.n_rows == 3
        assert profile.n_items == 9
        assert profile.n_occurring_items == 9
        assert profile.max_row_length == 4

    def test_class_counts(self):
        profile = profile_dataset(wide_dataset())
        assert profile.class_counts == {"a": 2, "b": 1}

    def test_item_supports(self):
        profile = profile_dataset(wide_dataset())
        assert profile.max_item_support == 2  # items 2, 3 and 5
        assert profile.item_support_quartiles[1] in (1, 2)

    def test_direction_wide(self):
        assert "row enumeration" in profile_dataset(
            wide_dataset()
        ).recommended_direction

    def test_direction_tall(self):
        assert "column enumeration" in profile_dataset(
            tall_dataset()
        ).recommended_direction

    def test_minsup_grid_below_ceiling(self):
        profile = profile_dataset(tall_dataset())
        assert all(
            value <= profile.max_item_support
            for value in profile.recommended_minsup_grid
        )
        assert all(value >= 1 for value in profile.recommended_minsup_grid)

    def test_absent_items_excluded(self):
        data = ItemizedDataset.from_lists([[0]], ["a"], n_items=5)
        profile = profile_dataset(data)
        assert profile.n_occurring_items == 1
        assert profile.n_items == 5

    def test_empty_dataset_rejected(self):
        with pytest.raises(DataError):
            profile_dataset(ItemizedDataset.from_lists([], [], n_items=0))

    def test_shape_ratio(self):
        assert profile_dataset(wide_dataset()).shape_ratio == pytest.approx(3.0)


class TestProfileReport:
    def test_report_mentions_key_facts(self):
        text = profile_report(profile_dataset(wide_dataset()))
        assert "wide" in text
        assert "3 rows" in text
        assert "row enumeration" in text
        assert "minsup sweep" in text


class TestCLIProfile:
    def test_profile_command(self, capsys):
        from repro.cli import main

        code = main(["profile", "--dataset", "CT", "--scale", "0.01"])
        out = capsys.readouterr().out
        assert code == 0
        assert "dataset profile" in out
        assert "row enumeration" in out
