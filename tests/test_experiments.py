"""Unit/integration tests for the experiment harness (tiny scales)."""

import pytest

from repro.experiments import (
    MINSUP_GRIDS,
    Series,
    TimedRun,
    build_workload,
    fig10_report,
    fig11_report,
    format_series,
    format_table,
    minelb_ablation_report,
    naive_lower_bounds,
    pruning_ablation_report,
    run_fig10,
    run_fig11,
    run_minelb_ablation,
    run_pruning_ablation,
    run_scaling,
    run_table1,
    run_table2,
    scaling_report,
    table1_report,
    table2_report,
    timed,
)
from repro.errors import BudgetExceeded

TINY = dict(scale=0.01)


class TestHarness:
    def test_timed_ok(self):
        run = timed(lambda: [1, 2, 3])
        assert run.ok and run.count == 3

    def test_timed_budget_exceeded(self):
        def boom():
            raise BudgetExceeded("no")

        run = timed(boom)
        assert not run.ok
        assert run.cell() == "timeout"

    def test_format_table_alignment(self):
        text = format_table(["a", "bbbb"], [["x", 1], ["yyyy", 22]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_format_series(self):
        series = Series("S")
        series.add(5, TimedRun(0.1, 7))
        text = format_series("title", "minsup", [series])
        assert "title" in text and "0.100s (7)" in text


class TestWorkloads:
    def test_build_workload_cached(self):
        first = build_workload("CT", scale=0.01)
        second = build_workload("CT", scale=0.01)
        assert first is second

    def test_grids_cover_all_datasets(self):
        assert set(MINSUP_GRIDS) == {"LC", "BC", "PC", "ALL", "CT"}

    def test_workload_fields(self):
        workload = build_workload("ALL", scale=0.01)
        assert workload.consequent == "ALL"
        assert workload.fig11_minsup == workload.minsup_grid[-1]


class TestTable1:
    def test_rows_and_report(self):
        rows = run_table1(("CT", "ALL"), scale=0.01)
        assert [row["dataset"] for row in rows] == ["CT", "ALL"]
        assert rows[0]["paper_cols"] == 2000
        report = table1_report(rows)
        assert "Table 1" in report and "negative" in report


class TestFig10:
    def test_single_dataset_sweep(self):
        results = run_fig10(("CT",), timeout=30, minsup_grid=[6, 5], **TINY)
        series = results["CT"]
        names = [curve.name for curve in series]
        assert names == ["FARMER", "ColumnE", "CHARM", "#IRGs"]
        assert all(len(curve.xs) == 2 for curve in series)
        report = fig10_report(results)
        assert "Figure 10 (CT)" in report

    def test_farmer_always_completes_at_tiny_scale(self):
        results = run_fig10(("CT",), timeout=30, minsup_grid=[5], **TINY)
        farmer = results["CT"][0]
        assert all(run.ok for run in farmer.ys)

    def test_miner_agreement_on_counts(self):
        # FARMER and ColumnE must find the same number of IRGs.
        results = run_fig10(("CT",), timeout=60, minsup_grid=[6], **TINY)
        farmer, columne = results["CT"][0], results["CT"][1]
        if columne.ys[0].ok:
            assert columne.ys[0].count == farmer.ys[0].count


class TestFig11:
    def test_sweep_shape(self):
        results = run_fig11(
            ("CT",), timeout=30, minconf_grid=[0.0, 0.9], **TINY
        )
        chi_zero, chi_ten, irgs = results["CT"]
        assert len(chi_zero.ys) == 2
        assert len(chi_ten.ys) == 2
        report = fig11_report(results)
        assert "Figure 11 (CT)" in report

    def test_irg_count_decreases_with_confidence(self):
        results = run_fig11(
            ("CT",), timeout=60, minconf_grid=[0.0, 0.99], **TINY
        )
        irgs = results["CT"][2]
        assert irgs.ys[0].count >= irgs.ys[1].count

    def test_chi_pruning_never_finds_more(self):
        results = run_fig11(
            ("CT",), timeout=60, minconf_grid=[0.5], **TINY
        )
        chi_zero, chi_ten, _ = results["CT"]
        assert chi_ten.ys[0].count <= chi_zero.ys[0].count


class TestTable2:
    def test_single_dataset(self):
        rows = run_table2(("CT",), scale=0.02)
        assert len(rows) == 1
        row = rows[0]
        assert row["n_train"] == 47 and row["n_test"] == 15
        for key in ("IRG", "CBA", "SVM"):
            assert 0.0 <= row[key] <= 1.0
        report = table2_report(rows)
        assert "average" in report


class TestScaling:
    def test_two_factors(self):
        series = run_scaling("CT", factors=(1, 2), timeout=30, **TINY)
        assert [curve.name for curve in series] == [
            "FARMER",
            "CHARM",
            "CARPENTER",
        ]
        assert all(len(curve.xs) == 2 for curve in series)
        assert "factor" in scaling_report(series)


class TestAblation:
    def test_pruning_ablation_rows(self):
        rows = run_pruning_ablation("CT", scale=0.01, timeout=30)
        assert len(rows) == 5
        finished = [row for row in rows if row["status"] == "ok"]
        groups = {row["groups"] for row in finished}
        assert len(groups) == 1  # identical output across configs
        assert "Pruning ablation" in pruning_ablation_report(rows)

    def test_minelb_ablation(self):
        result = run_minelb_ablation("CT", scale=0.01, max_groups=5)
        assert result["groups_timed"] >= 1
        assert "MineLB" in minelb_ablation_report(result)

    def test_naive_lower_bounds_matches_minelb(self, paper_dataset):
        from repro import mine_irgs
        from repro.core.minelb import lower_bounds_for_group

        result = mine_irgs(paper_dataset, "C", minsup=1)
        for group in result.groups:
            assert set(naive_lower_bounds(paper_dataset, group)) == set(
                lower_bounds_for_group(paper_dataset, group)
            )


class TestCrossover:
    def test_wide_sweep_counts_agree(self):
        from repro.experiments import crossover_report, run_crossover

        series = run_crossover(gene_counts=(80,), minsup=5, timeout=60)
        carpenter, charm, cobbler = series
        assert (
            carpenter.ys[0].count == charm.ys[0].count == cobbler.ys[0].count
        )
        assert "crossover" in crossover_report(series)

    def test_tall_sweep_counts_agree(self):
        from repro.experiments import run_tall_crossover

        series = run_tall_crossover(factors=(2,), genes=20, timeout=60)
        carpenter, charm, cobbler = series
        assert (
            carpenter.ys[0].count == charm.ys[0].count == cobbler.ys[0].count
        )
