"""Unit tests for the transposed table and the ORD row ordering."""

import pytest

from conftest import letter_items

from repro.core import bitset
from repro.data.dataset import ItemizedDataset
from repro.data.transpose import TransposedTable, ord_permutation
from repro.errors import DataError


class TestOrdPermutation:
    def test_positives_first_stable(self):
        labels = ("N", "C", "N", "C", "C")
        assert ord_permutation(labels, "C") == [1, 3, 4, 0, 2]

    def test_all_positive(self):
        assert ord_permutation(("C", "C"), "C") == [0, 1]


class TestBuild:
    def test_paper_table(self, paper_dataset):
        """Figure 1(b): spot-check item row supports under ORD."""
        table = TransposedTable.build(paper_dataset, "C")
        assert table.n == 5
        assert table.m == 3
        # Rows already arrive C-first, so ORD order == original order.
        assert table.ord_to_original == (0, 1, 2, 3, 4)
        item_a = letter_items("a")[0]
        assert bitset.to_indices(table.item_masks[item_a]) == [0, 1, 2, 3]
        item_d = letter_items("d")[0]
        assert bitset.to_indices(table.item_masks[item_d]) == [1, 4]

    def test_reordering(self):
        data = ItemizedDataset.from_lists(
            [[0], [1], [0, 1]], ["N", "C", "N"], n_items=2
        )
        table = TransposedTable.build(data, "C")
        assert table.ord_to_original == (1, 0, 2)
        # Item 0 appears in original rows 0, 2 -> ORD positions 1, 2.
        assert bitset.to_indices(table.item_masks[0]) == [1, 2]

    def test_unknown_consequent(self, paper_dataset):
        with pytest.raises(DataError):
            TransposedTable.build(paper_dataset, "missing")


class TestMasks:
    def test_positive_negative_partition(self, paper_dataset):
        table = TransposedTable.build(paper_dataset, "C")
        assert table.positive_mask == 0b00111
        assert table.negative_mask == 0b11000
        assert table.positive_mask | table.negative_mask == table.all_rows_mask

    def test_is_positive(self, paper_dataset):
        table = TransposedTable.build(paper_dataset, "C")
        assert table.is_positive(0) and table.is_positive(2)
        assert not table.is_positive(3)

    def test_support_counts(self, paper_dataset):
        table = TransposedTable.build(paper_dataset, "C")
        assert table.support_counts(0b01011) == (2, 1)


class TestOperators:
    def test_rows_of_itemset(self, paper_dataset):
        table = TransposedTable.build(paper_dataset, "C")
        mask = table.rows_of_itemset(letter_items("aeh"))
        assert bitset.to_indices(mask) == [1, 2, 3]

    def test_rows_of_empty_itemset(self, paper_dataset):
        table = TransposedTable.build(paper_dataset, "C")
        assert table.rows_of_itemset([]) == table.all_rows_mask

    def test_items_of_rows(self, paper_dataset):
        table = TransposedTable.build(paper_dataset, "C")
        got = table.items_of_rows(bitset.from_indices([1, 2]))
        assert got == frozenset(letter_items("aeh"))

    def test_original_rows_round_trip(self):
        data = ItemizedDataset.from_lists(
            [[0], [1], [0, 1]], ["N", "C", "N"], n_items=2
        )
        table = TransposedTable.build(data, "C")
        # ORD positions {0, 2} are original rows {1, 2}.
        assert table.original_rows(0b101) == {1, 2}
