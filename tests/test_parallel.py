"""Differential harness for the sharded miner (:mod:`repro.core.parallel`).

The contract under test is strict: for every worker count, every
constraint setting, every pruning combination and every dataset shape,
``mine_irgs(..., n_workers=k)`` must produce *bit-identical* output to
the serial miner — same groups, same statistics, same row sets, same
order, same serialized bytes — and both must match the brute-force
oracle.  Scheduling may vary; the output may not.
"""


import pytest

import test_farmer_oracle
from conftest import MINEABLE_SHAPES, random_dataset

from repro import Constraints, Farmer, SearchBudget, mine_irgs
from repro.baselines import interesting_rule_groups
from repro.core.enumeration import (
    NodeCounters,
    merge_counters,
    semantic_counters,
)
from repro.core.parallel import (
    AdvisoryBounds,
    mine_table_parallel,
    shutdown_workers,
)
from repro.core.serialize import save_rule_groups
from repro.data.transpose import TransposedTable

# Shared with the oracle suite (imported via the module so pytest does
# not re-collect that module's test classes here).
CONSTRAINT_GRID = test_farmer_oracle.CONSTRAINT_GRID
PRUNING_COMBOS = test_farmer_oracle.TestPruningAblation.PRUNING_COMBOS

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module", autouse=True)
def _drain_pools():
    """Tear the cached worker pools down once the module is done."""
    yield
    shutdown_workers()


def _serialized(result, tmp_path, tag):
    """The exact bytes ``core.serialize`` writes for ``result``."""
    path = tmp_path / f"{tag}.irgs"
    save_rule_groups(path, result.groups, constraints=result.constraints)
    return path.read_bytes()


def _group_key(group):
    return (sorted(group.upper), group.support, group.antecedent_support, group.rows)


class TestDifferential:
    """Parallel output equals serial output and the oracle."""

    @pytest.mark.parametrize("params", CONSTRAINT_GRID, ids=str)
    def test_bit_identical_to_serial(self, params, tmp_path):
        for seed in range(6):
            data = random_dataset(seed)
            serial = mine_irgs(data, "C", **params)
            reference = _serialized(serial, tmp_path, f"serial-{seed}")
            for n_workers in WORKER_COUNTS:
                parallel = mine_irgs(data, "C", **params, n_workers=n_workers)
                assert _serialized(
                    parallel, tmp_path, f"w{n_workers}-{seed}"
                ) == reference, (seed, params, n_workers)
                # Order-sensitive group comparison, not just set equality.
                assert [_group_key(g) for g in parallel.groups] == [
                    _group_key(g) for g in serial.groups
                ]

    @pytest.mark.parametrize("params", CONSTRAINT_GRID, ids=str)
    def test_matches_oracle(self, params):
        for seed in range(6):
            data = random_dataset(seed + 20)
            oracle = interesting_rule_groups(data, "C", Constraints(**params))
            expected = {
                g.upper: (g.support, g.antecedent_support, g.rows)
                for g in oracle
            }
            for n_workers in WORKER_COUNTS:
                result = mine_irgs(data, "C", **params, n_workers=n_workers)
                got = {
                    g.upper: (g.support, g.antecedent_support, g.rows)
                    for g in result.groups
                }
                assert got == expected, (seed, params, n_workers)

    @pytest.mark.parametrize("prunings", PRUNING_COMBOS, ids=str)
    def test_every_pruning_combo(self, prunings, tmp_path):
        for seed in range(4):
            data = random_dataset(seed + 40)
            serial = mine_irgs(data, "C", minsup=1, minconf=0.5, prunings=prunings)
            parallel = mine_irgs(
                data, "C", minsup=1, minconf=0.5, prunings=prunings, n_workers=2
            )
            assert _serialized(parallel, tmp_path, f"p-{seed}") == _serialized(
                serial, tmp_path, f"s-{seed}"
            ), (seed, prunings)
            # The sharded run does the same work, not just the same output.
            assert semantic_counters(parallel.counters) == semantic_counters(
                serial.counters
            ), (seed, prunings)

    def test_lower_bounds_identical(self):
        for seed in range(4):
            data = random_dataset(seed + 55)
            serial = mine_irgs(data, "C", minsup=1, compute_lower_bounds=True)
            parallel = mine_irgs(
                data, "C", minsup=1, compute_lower_bounds=True, n_workers=2
            )
            assert [
                (sorted(g.upper), sorted(map(sorted, g.lower_bounds or ())))
                for g in parallel.groups
            ] == [
                (sorted(g.upper), sorted(map(sorted, g.lower_bounds or ())))
                for g in serial.groups
            ], seed


class TestDeterminism:
    """Same input, any scheduling -> byte-identical serialized output."""

    def test_five_runs_byte_identical(self, tmp_path):
        data = random_dataset(7, max_rows=12, max_items=12)
        outputs = set()
        for attempt in range(5):
            result = mine_irgs(data, "C", minsup=1, n_workers=4)
            outputs.add(_serialized(result, tmp_path, f"run-{attempt}"))
        assert len(outputs) == 1

    def test_broadcast_on_off_identical(self, tmp_path):
        for seed in range(4):
            data = random_dataset(seed + 30)
            results = [
                Farmer(
                    Constraints(minsup=1),
                    n_workers=2,
                    broadcast_bounds=broadcast,
                ).mine(data, "C")
                for broadcast in (True, False)
            ]
            assert _serialized(results[0], tmp_path, f"on-{seed}") == _serialized(
                results[1], tmp_path, f"off-{seed}"
            ), seed


class TestDegenerateShapesParallel:
    SHAPES = MINEABLE_SHAPES

    @pytest.mark.parametrize("shape", SHAPES)
    def test_identical_to_serial(self, shape, tmp_path):
        for seed in range(4):
            data = random_dataset(seed, shape=shape)
            serial = mine_irgs(data, "C", minsup=1)
            for n_workers in WORKER_COUNTS:
                parallel = mine_irgs(data, "C", minsup=1, n_workers=n_workers)
                assert _serialized(
                    parallel, tmp_path, f"{shape}-{seed}-{n_workers}"
                ) == _serialized(serial, tmp_path, f"{shape}-{seed}-s"), (
                    shape,
                    seed,
                    n_workers,
                )


class TestApi:
    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            Farmer(n_workers=0)
        with pytest.raises(ValueError):
            mine_irgs(random_dataset(0), "C", n_workers=-1)

    def test_node_budget_forces_serial(self):
        # Deterministic node accounting needs one traversal, so a
        # max_nodes budget routes around the sharded path entirely.
        data = random_dataset(1)
        result = mine_irgs(
            data, "C", minsup=1, n_workers=2, budget=SearchBudget(max_nodes=10**6)
        )
        assert result.parallel is None
        table = TransposedTable.build(data, "C")
        with pytest.raises(ValueError):
            mine_table_parallel(
                table,
                constraints=Constraints(minsup=1),
                budget=SearchBudget(max_nodes=10),
            )

    def test_report_populated(self):
        data = random_dataset(5, max_rows=12)  # seed with a 45-node tree
        for n_workers in WORKER_COUNTS:
            result = mine_irgs(data, "C", minsup=1, n_workers=n_workers)
            report = result.parallel
            assert report is not None
            assert report.n_workers == n_workers
            assert report.n_tasks >= 1
            assert len(report.workers) == report.n_tasks
            # Merged counters decompose into coordinator + worker parts.
            merged = merge_counters([report.coordinator, *report.workers])
            assert merged.nodes == result.counters.nodes

    def test_fully_pruned_tree_yields_no_tasks(self):
        # Seed 2's root is tight-pruned (no item occurs in a positive
        # row): the decomposition collapses to zero tasks and the result
        # still matches serial.
        data = random_dataset(2, max_rows=12)
        serial = mine_irgs(data, "C", minsup=1)
        result = mine_irgs(data, "C", minsup=1, n_workers=2)
        assert result.parallel is not None
        assert result.parallel.n_tasks == 0
        assert len(result.groups) == len(serial.groups) == 0
        assert semantic_counters(result.counters) == semantic_counters(
            serial.counters
        )

    def test_serial_result_has_no_report(self):
        result = mine_irgs(random_dataset(3), "C", minsup=1)
        assert result.parallel is None


class TestAdvisoryBounds:
    """Unit coverage for the broadcast dominance table."""

    def test_covers_requires_strict_subset_and_confidence(self):
        bounds = AdvisoryBounds()
        bounds.extend(0b011, 2, 0.8)
        # Strict superset with lower confidence: dominated.
        assert bounds.covers(0b111, 3, 0.7)
        assert bounds.covers(0b111, 3, 0.8)
        # Higher confidence than any stored bound: not dominated.
        assert not bounds.covers(0b111, 3, 0.9)
        # Same mask (not a strict subset): never dominated by itself.
        assert not bounds.covers(0b011, 2, 0.5)
        # Not a superset of the stored antecedent.
        assert not bounds.covers(0b101, 3, 0.5)

    def test_snapshot_round_trip(self):
        bounds = AdvisoryBounds()
        bounds.extend(0b01, 1, 0.9)
        bounds.extend(0b10, 1, 0.6)
        restored = AdvisoryBounds(bounds.snapshot())
        assert restored.snapshot() == bounds.snapshot()

    def test_cap_evicts_weakest(self):
        bounds = AdvisoryBounds(cap=2)
        bounds.extend(0b001, 1, 0.5)
        bounds.extend(0b010, 1, 0.9)
        bounds.extend(0b100, 1, 0.7)  # evicts the 0.5 bound
        assert len(bounds) == 2
        # The weakest (0.5) entry is gone; its mask no longer dominates.
        assert sorted(mask for _, mask, _ in bounds.snapshot()) == [0b010, 0b100]

    def test_drops_never_change_output_counters(self):
        # Counter equality with broadcast on is the strongest form of
        # "advisory only": a drop is counted exactly where the replay
        # would have counted the rejection.
        for seed in range(4):
            data = random_dataset(seed + 10, max_rows=11)
            serial = mine_irgs(data, "C", minsup=1)
            for broadcast in (True, False):
                result = Farmer(
                    Constraints(minsup=1), n_workers=2, broadcast_bounds=broadcast
                ).mine(data, "C")
                assert semantic_counters(result.counters) == semantic_counters(
                    serial.counters
                ), (seed, broadcast)

    def test_merge_counters_sums_fields(self):
        a = NodeCounters(nodes=3, pruned_loose=1, candidates_rejected=2)
        b = NodeCounters(nodes=4, rows_compressed=5)
        merged = merge_counters([a, b])
        assert merged.nodes == 7
        assert merged.pruned_loose == 1
        assert merged.rows_compressed == 5
        assert merged.candidates_rejected == 2
