"""CHARM / CLOSET+ / CARPENTER / COBBLER vs the brute-force oracle.

The four closed-itemset miners use four different search strategies
(IT-tree, FP-tree, row enumeration, dynamic combined enumeration); this
module pins their agreement on the paper example and on randomized data,
plus per-miner unit behaviour.
"""

import pytest

from conftest import itemset_to_letters, random_dataset

from repro.baselines import (
    Carpenter,
    Charm,
    ClosetPlus,
    all_closed_itemsets,
    mine_closed_carpenter,
    mine_closed_charm,
    mine_closed_closet,
)
from repro.core import bitset
from repro.data.dataset import ItemizedDataset
from repro.errors import BudgetExceeded, ConstraintError
from repro.extensions import mine_closed_cobbler

MINERS = {
    "charm": mine_closed_charm,
    "closet": mine_closed_closet,
    "carpenter": mine_closed_carpenter,
    "cobbler": mine_closed_cobbler,
}


@pytest.mark.parametrize("miner_name", sorted(MINERS))
class TestAgainstOracle:
    def test_paper_example(self, paper_dataset, miner_name):
        mine = MINERS[miner_name]
        for minsup in (1, 2, 3):
            expected = all_closed_itemsets(paper_dataset, minsup=minsup)
            got = {closed.items for closed in mine(paper_dataset, minsup=minsup)}
            assert got == expected, minsup

    def test_randomized(self, miner_name):
        mine = MINERS[miner_name]
        for seed in range(30):
            data = random_dataset(seed + 300)
            for minsup in (1, 2):
                expected = all_closed_itemsets(data, minsup=minsup)
                got = {c.items for c in mine(data, minsup=minsup)}
                assert got == expected, (seed, minsup)

    def test_supports_and_row_masks(self, paper_dataset, miner_name):
        mine = MINERS[miner_name]
        for closed in mine(paper_dataset, minsup=1):
            rows = [
                index
                for index, row in enumerate(paper_dataset.rows)
                if closed.items <= row
            ]
            assert closed.support == len(rows)
            assert bitset.to_indices(closed.row_mask) == rows

    def test_empty_dataset(self, miner_name):
        mine = MINERS[miner_name]
        data = ItemizedDataset.from_lists([], [], n_items=0)
        assert mine(data, minsup=1) == []

    def test_minsup_validation(self, miner_name):
        mine = MINERS[miner_name]
        data = ItemizedDataset.from_lists([[0]], ["x"], n_items=1)
        with pytest.raises(ConstraintError):
            mine(data, minsup=0)


class TestPaperClosedSets:
    def test_aeh_found_at_minsup_3(self, paper_dataset):
        closed = {
            itemset_to_letters(c.items)
            for c in mine_closed_charm(paper_dataset, minsup=3)
        }
        assert "aeh" in closed
        assert "a" in closed

    def test_results_sorted_by_support(self, paper_dataset):
        results = mine_closed_charm(paper_dataset, minsup=1)
        supports = [c.support for c in results]
        assert supports == sorted(supports, reverse=True)


class TestBudgets:
    def test_charm_budget(self, paper_dataset):
        from repro.core.enumeration import SearchBudget

        with pytest.raises(BudgetExceeded):
            Charm(minsup=1, budget=SearchBudget(max_nodes=2)).mine(paper_dataset)

    def test_carpenter_budget(self, paper_dataset):
        from repro.core.enumeration import SearchBudget

        with pytest.raises(BudgetExceeded):
            Carpenter(minsup=1, budget=SearchBudget(max_nodes=2)).mine(
                paper_dataset
            )

    def test_closet_budget(self, paper_dataset):
        from repro.core.enumeration import SearchBudget

        with pytest.raises(BudgetExceeded):
            ClosetPlus(minsup=1, budget=SearchBudget(max_nodes=1)).mine(
                paper_dataset
            )


class TestCobblerSwitching:
    def test_switch_ratios_agree(self, paper_dataset):
        expected = all_closed_itemsets(paper_dataset, minsup=1)
        for ratio in (0.1, 1.0, 1e9):
            got = {
                c.items
                for c in mine_closed_cobbler(
                    paper_dataset, minsup=1, switch_ratio=ratio
                )
            }
            assert got == expected, ratio

    def test_eager_switching_actually_switches(self):
        from repro.extensions.cobbler import Cobbler

        data = random_dataset(1234, max_rows=9, max_items=10)
        miner = Cobbler(minsup=1, switch_ratio=1e9)
        miner.mine(data)
        assert miner.column_switches >= 1

    def test_invalid_switch_ratio(self):
        from repro.extensions.cobbler import Cobbler

        with pytest.raises(ConstraintError):
            Cobbler(minsup=1, switch_ratio=0.0)
