"""Shared fixtures: the paper's running example and dataset factories."""

from __future__ import annotations

import random

import pytest
from hypothesis import settings as _hypothesis_settings

from repro.data.dataset import ItemizedDataset

# Hypothesis sweep depth is profile-driven: "ci" (loaded by default)
# keeps tier-1 fast; the scheduled nightly CI leg passes
# ``--hypothesis-profile=nightly`` for a deeper sweep (the pytest plugin
# loads that AFTER this conftest runs, so the flag wins).  Tests that
# pin their own ``@settings(max_examples=...)`` are unaffected — the
# conformance and scheduling property suites deliberately do not, so
# the nightly profile deepens them.  ``print_blob=True`` prints the
# reproduction blob on any failing example, so a nightly failure
# replays locally with ``@reproduce_failure``.
_hypothesis_settings.register_profile("ci", max_examples=30, deadline=None)
_hypothesis_settings.register_profile(
    "nightly", max_examples=400, deadline=None, print_blob=True
)
_hypothesis_settings.load_profile("ci")


class ChaosControl:
    """Arms/disarms the ``FARMER_CHAOS`` fault spec for one test.

    Worker pools inherit the environment at fork time, so both
    :meth:`arm` and :meth:`disarm` tear the cached pools down first — a
    pool forked before arming would never see the spec, and a pool
    forked while armed must not leak faults into later work.
    """

    def __init__(self, monkeypatch) -> None:
        self._monkeypatch = monkeypatch

    def arm(self, spec: str) -> None:
        from repro.core.parallel import shutdown_workers
        from repro.testing.chaos import CHAOS_ENV

        shutdown_workers()
        self._monkeypatch.setenv(CHAOS_ENV, spec)

    def disarm(self) -> None:
        from repro.core.parallel import shutdown_workers
        from repro.testing.chaos import CHAOS_ENV

        shutdown_workers()
        self._monkeypatch.delenv(CHAOS_ENV, raising=False)


@pytest.fixture
def chaos(monkeypatch):
    """Deterministic fault injection (see :mod:`repro.testing.chaos`).

    ``chaos.arm("kill:shard=1:times=1")`` injects the given fault into
    subsequent mining calls; faults are keyed on logical coordinates
    (shard index, attempt number, checkpoint write count), never on
    wall-clock time or randomness.
    """
    control = ChaosControl(monkeypatch)
    yield control
    control.disarm()


def letter_items(letters: str) -> list[int]:
    """Map 'aceh' -> [0, 2, 4, 7] (the paper's a..t item alphabet)."""
    return [ord(letter) - ord("a") for letter in letters]


def itemset_to_letters(items) -> str:
    """Inverse of :func:`letter_items`, sorted."""
    return "".join(sorted(chr(i + ord("a")) for i in items))


@pytest.fixture
def paper_dataset() -> ItemizedDataset:
    """Figure 1(a): 5 rows over items a..t, classes C C C ~C ~C."""
    rows = [
        letter_items("abclos"),
        letter_items("adehplr"),
        letter_items("acehoqt"),
        letter_items("aefhpr"),
        letter_items("bdfglqst"),
    ]
    labels = ["C", "C", "C", "N", "N"]
    names = [chr(ord("a") + index) for index in range(20)]
    return ItemizedDataset.from_lists(
        rows, labels, n_items=20, item_names=names, name="figure1"
    )


#: Degenerate dataset shapes a sharded first enumeration level is most
#: likely to mishandle (empty task lists, all-compressed roots, subtree
#: candidates identical across shards).
DEGENERATE_SHAPES = (
    "single_row",
    "no_consequent",
    "all_identical",
    "shared_item",
    "word_tail_63",
    "word_tail_64",
    "word_tail_65",
    "zero_rows",
    "one_item",
)

#: The shapes that can actually be mined for consequent ``"C"`` — the
#: rest (``no_consequent``, ``zero_rows``) pin the ``DataError`` path.
MINEABLE_SHAPES = tuple(
    shape
    for shape in DEGENERATE_SHAPES
    if shape not in ("no_consequent", "zero_rows")
)

#: The mineable shapes the brute-force oracle can afford: it enumerates
#: all row subsets, so the 63/64/65-row word-boundary shapes (trivial
#: for the miner, whose tree collapses under pruning) are out of reach.
ORACLE_SHAPES = tuple(
    shape for shape in MINEABLE_SHAPES if not shape.startswith("word_tail_")
)


def random_dataset(
    seed: int,
    max_rows: int = 9,
    max_items: int = 10,
    ensure_label: str = "C",
    shape: str | None = None,
) -> ItemizedDataset:
    """Small random labelled dataset for oracle comparisons.

    With ``shape`` set to one of :data:`DEGENERATE_SHAPES`, returns a
    randomized instance of that degenerate family instead (the default
    path's RNG stream is untouched, so existing seeds keep their data):

    * ``"single_row"`` — one row, labelled with the consequent.
    * ``"no_consequent"`` — the consequent class is empty (mining it
      must raise :class:`~repro.errors.DataError`).
    * ``"all_identical"`` — every row carries the same itemset, so
      Pruning 1 compresses the whole candidate list at the root.
    * ``"shared_item"`` — one item occurs in every row (the vocabulary
      intersection is non-empty at every node).
    * ``"word_tail_63"`` / ``"word_tail_64"`` / ``"word_tail_65"`` —
      exactly that many rows over a tiny vocabulary, straddling the
      64-bit word boundary of packed bitset layouts (one word with a
      tail bit, exactly one full word, two words with a near-empty
      second).
    * ``"zero_rows"`` — an empty table (no rows, no labels; mining any
      consequent raises :class:`~repro.errors.DataError`).
    * ``"one_item"`` — a single-column table (vocabulary of one item).
    """
    if shape is not None:
        return _degenerate_dataset(shape, seed)
    rng = random.Random(seed)
    n_rows = rng.randint(2, max_rows)
    n_items = rng.randint(2, max_items)
    density = rng.uniform(0.15, 0.85)
    rows = [
        [item for item in range(n_items) if rng.random() < density]
        for _ in range(n_rows)
    ]
    labels = [rng.choice("CD") for _ in range(n_rows)]
    if ensure_label not in labels:
        labels[0] = ensure_label
    return ItemizedDataset.from_lists(rows, labels, n_items=n_items)


def _degenerate_dataset(shape: str, seed: int) -> ItemizedDataset:
    rng = random.Random(seed ^ 0x5EED)
    n_items = rng.randint(2, 8)
    if shape == "single_row":
        row = sorted(rng.sample(range(n_items), rng.randint(1, n_items)))
        return ItemizedDataset.from_lists([row], ["C"], n_items=n_items)
    if shape == "no_consequent":
        n_rows = rng.randint(2, 6)
        rows = [
            [item for item in range(n_items) if rng.random() < 0.5]
            for _ in range(n_rows)
        ]
        return ItemizedDataset.from_lists(rows, ["D"] * n_rows, n_items=n_items)
    if shape == "all_identical":
        n_rows = rng.randint(2, 6)
        row = sorted(rng.sample(range(n_items), rng.randint(1, n_items)))
        labels = [rng.choice("CD") for _ in range(n_rows)]
        if "C" not in labels:
            labels[0] = "C"
        return ItemizedDataset.from_lists(
            [list(row) for _ in range(n_rows)], labels, n_items=n_items
        )
    if shape == "shared_item":
        n_rows = rng.randint(3, 7)
        shared = rng.randrange(n_items)
        rows = [
            sorted(
                {shared}
                | {item for item in range(n_items) if rng.random() < 0.4}
            )
            for _ in range(n_rows)
        ]
        labels = [rng.choice("CD") for _ in range(n_rows)]
        if "C" not in labels:
            labels[0] = "C"
        return ItemizedDataset.from_lists(rows, labels, n_items=n_items)
    if shape.startswith("word_tail_"):
        # Row count pinned at the word boundary; the vocabulary stays
        # tiny so the row-enumeration tree (and the brute-force oracle)
        # stays small despite the many rows.
        n_rows = int(shape.rsplit("_", 1)[1])
        n_word_items = rng.randint(2, 3)
        rows = [
            [item for item in range(n_word_items) if rng.random() < 0.5]
            for _ in range(n_rows)
        ]
        labels = [rng.choice("CD") for _ in range(n_rows)]
        if "C" not in labels:
            labels[0] = "C"
        return ItemizedDataset.from_lists(rows, labels, n_items=n_word_items)
    if shape == "zero_rows":
        return ItemizedDataset.from_lists([], [], n_items=rng.randint(1, 4))
    if shape == "one_item":
        n_rows = rng.randint(2, 7)
        rows = [[0] if rng.random() < 0.7 else [] for _ in range(n_rows)]
        labels = [rng.choice("CD") for _ in range(n_rows)]
        if "C" not in labels:
            labels[0] = "C"
        return ItemizedDataset.from_lists(rows, labels, n_items=1)
    raise ValueError(f"unknown degenerate shape: {shape!r}")
