"""Shared fixtures: the paper's running example and dataset factories."""

from __future__ import annotations

import random

import pytest

from repro.data.dataset import ItemizedDataset


def letter_items(letters: str) -> list[int]:
    """Map 'aceh' -> [0, 2, 4, 7] (the paper's a..t item alphabet)."""
    return [ord(letter) - ord("a") for letter in letters]


def itemset_to_letters(items) -> str:
    """Inverse of :func:`letter_items`, sorted."""
    return "".join(sorted(chr(i + ord("a")) for i in items))


@pytest.fixture
def paper_dataset() -> ItemizedDataset:
    """Figure 1(a): 5 rows over items a..t, classes C C C ~C ~C."""
    rows = [
        letter_items("abclos"),
        letter_items("adehplr"),
        letter_items("acehoqt"),
        letter_items("aefhpr"),
        letter_items("bdfglqst"),
    ]
    labels = ["C", "C", "C", "N", "N"]
    names = [chr(ord("a") + index) for index in range(20)]
    return ItemizedDataset.from_lists(
        rows, labels, n_items=20, item_names=names, name="figure1"
    )


def random_dataset(
    seed: int,
    max_rows: int = 9,
    max_items: int = 10,
    ensure_label: str = "C",
) -> ItemizedDataset:
    """Small random labelled dataset for oracle comparisons."""
    rng = random.Random(seed)
    n_rows = rng.randint(2, max_rows)
    n_items = rng.randint(2, max_items)
    density = rng.uniform(0.15, 0.85)
    rows = [
        [item for item in range(n_items) if rng.random() < density]
        for _ in range(n_rows)
    ]
    labels = [rng.choice("CD") for _ in range(n_rows)]
    if ensure_label not in labels:
        labels[0] = ensure_label
    return ItemizedDataset.from_lists(rows, labels, n_items=n_items)
