"""Unit tests for mining constraints."""

import pytest

from repro.core.constraints import Constraints
from repro.core.measures import chi_square
from repro.errors import ConstraintError


class TestValidation:
    def test_defaults(self):
        constraints = Constraints()
        assert constraints.minsup == 1
        assert constraints.minconf == 0.0
        assert constraints.minchi == 0.0

    def test_negative_minsup_rejected(self):
        with pytest.raises(ConstraintError):
            Constraints(minsup=-1)

    def test_non_integer_minsup_rejected(self):
        with pytest.raises(ConstraintError):
            Constraints(minsup=2.5)  # type: ignore[arg-type]

    def test_minconf_range(self):
        with pytest.raises(ConstraintError):
            Constraints(minconf=1.5)
        with pytest.raises(ConstraintError):
            Constraints(minconf=-0.1)

    def test_negative_minchi_rejected(self):
        with pytest.raises(ConstraintError):
            Constraints(minchi=-1.0)


class TestFromFraction:
    def test_rounds_up(self):
        constraints = Constraints.from_fraction(10, 0.25)
        assert constraints.minsup == 3  # ceil(2.5)

    def test_exact_fraction(self):
        assert Constraints.from_fraction(10, 0.3).minsup == 3

    def test_zero_and_one(self):
        assert Constraints.from_fraction(10, 0.0).minsup == 0
        assert Constraints.from_fraction(10, 1.0).minsup == 10

    def test_out_of_range_rejected(self):
        with pytest.raises(ConstraintError):
            Constraints.from_fraction(10, 1.5)


class TestSatisfiedBy:
    def test_support_threshold(self):
        constraints = Constraints(minsup=3)
        assert constraints.satisfied_by(3, 0, 10, 5)
        assert not constraints.satisfied_by(2, 0, 10, 5)

    def test_confidence_threshold(self):
        constraints = Constraints(minsup=1, minconf=0.75)
        assert constraints.satisfied_by(3, 1, 10, 5)
        assert not constraints.satisfied_by(2, 1, 10, 5)

    def test_zero_total_rejected(self):
        assert not Constraints(minsup=0).satisfied_by(0, 0, 10, 5)

    def test_chi_threshold(self):
        # supp=5 supn=0 out of n=10, m=5: chi = 10.
        chi = chi_square(5, 5, 10, 5)
        assert Constraints(minsup=1, minchi=chi - 0.1).satisfied_by(5, 0, 10, 5)
        assert not Constraints(minsup=1, minchi=chi + 0.1).satisfied_by(
            5, 0, 10, 5
        )

    def test_chi_zero_disables_check(self):
        # Independent rule (chi = 0) passes when minchi == 0.
        assert Constraints(minsup=1, minchi=0.0).satisfied_by(5, 5, 20, 10)
