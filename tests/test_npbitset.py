"""Property tests for the packed-uint64 layout (:mod:`repro.core.npbitset`).

Every array op is pinned against the int-mask reference
(:mod:`repro.core.bitset` and plain Python int arithmetic): pack/unpack
round-trips, both popcount paths (native ufunc and byte-LUT) against
``int.bit_count``, AND/OR/subset algebra, complement with tail-bit
masking, and :class:`~repro.core.npbitset.NumpyCondTable` against
:class:`~repro.core.kernel.CondTable` over the full protocol surface
(build order, extend, scan results, ``max_overlap``, ``ids_mask``).

Row counts are drawn across the 64-bit word boundary (including exactly
63/64/65) so one-word, exactly-full-word, and straddling layouts are all
exercised; the degenerate end (0 rows, 0 items) is pinned explicitly.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.core import bitset
from repro.core.kernel import CondTable
from repro.core.npbitset import (
    NumpyCondTable,
    complement_words,
    mask_words,
    pack_mask,
    pack_masks,
    popcount_cols,
    popcount_words,
    popcount_words_lut,
    popcount_words_native,
    tail_mask,
    unpack_words,
    word_count,
)

# Word-boundary universes and bitset generators live in the shared
# strategies module so the conformance and scheduling suites draw the
# same shapes.
from strategies import (  # noqa: E402  (import after module docstring)
    mask_and_rows as _mask_and_rows,
    masks_and_rows as _masks_and_rows,
    n_rows_word_boundary as _n_rows,
)


class TestPackRoundTrip:
    @given(_mask_and_rows())
    @settings(max_examples=200, deadline=None)
    def test_pack_unpack_round_trip(self, mask_rows):
        mask, n_rows = mask_rows
        width = word_count(n_rows)
        words = pack_mask(mask, width)
        assert words.shape == (width,)
        assert words.dtype == np.uint64
        assert unpack_words(words) == mask

    @given(_masks_and_rows())
    @settings(max_examples=200, deadline=None)
    def test_pack_masks_rows_mirror_pack_mask(self, masks_rows):
        masks, n_rows = masks_rows
        width = word_count(n_rows)
        packed = pack_masks(masks, width)
        assert packed.shape == (len(masks), width)
        for index, mask in enumerate(masks):
            assert unpack_words(packed[index]) == mask
            assert np.array_equal(packed[index], pack_mask(mask, width))

    @pytest.mark.parametrize("n_rows", [63, 64, 65])
    def test_word_boundary_top_bit(self, n_rows):
        width = word_count(n_rows)
        assert width == (1 if n_rows <= 64 else 2)
        top = 1 << (n_rows - 1)
        assert unpack_words(pack_mask(top, width)) == top

    def test_empty_inputs(self):
        assert word_count(0) == 0
        assert unpack_words(pack_mask(0, 0)) == 0
        assert pack_masks([], 3).shape == (0, 3)


class TestPopcounts:
    @given(_masks_and_rows())
    @settings(max_examples=200, deadline=None)
    def test_both_paths_match_bit_count(self, masks_rows):
        masks, n_rows = masks_rows
        packed = pack_masks(masks, word_count(n_rows))
        expected = [mask.bit_count() for mask in masks]
        assert popcount_words(packed).tolist() == expected
        assert popcount_words_lut(packed).tolist() == expected
        if popcount_words is not popcount_words_native:
            pytest.skip("np.bitwise_count unavailable; native path absent")
        assert popcount_words_native(packed).tolist() == expected

    @given(_masks_and_rows())
    @settings(max_examples=200, deadline=None)
    def test_popcount_cols_is_transposed_popcount_words(self, masks_rows):
        masks, n_rows = masks_rows
        packed = pack_masks(masks, word_count(n_rows))
        columnar = np.ascontiguousarray(packed.T)
        assert popcount_cols(columnar).tolist() == [
            mask.bit_count() for mask in masks
        ]


class TestWordAlgebra:
    @given(_mask_and_rows(), st.integers(min_value=0))
    @settings(max_examples=200, deadline=None)
    def test_and_or_subset_mirror_int_ops(self, mask_rows, raw):
        mask, n_rows = mask_rows
        other = raw & ((1 << n_rows) - 1)
        width = word_count(n_rows)
        a, b = pack_mask(mask, width), pack_mask(other, width)
        assert unpack_words(a & b) == mask & other
        assert unpack_words(a | b) == mask | other
        # Subset in the packed world: a & b == a, same as the int test.
        assert bool(np.array_equal(a & b, a)) == bitset.is_subset(
            mask, other
        )

    @given(_mask_and_rows())
    @settings(max_examples=200, deadline=None)
    def test_complement_masks_tail_bits(self, mask_rows):
        mask, n_rows = mask_rows
        width = word_count(n_rows)
        comp = complement_words(pack_mask(mask, width), n_rows)
        assert unpack_words(comp) == bitset.complement(mask, n_rows)
        # The tail bits above n_rows stay clear even after complement.
        assert unpack_words(comp) < (1 << n_rows)

    @given(_n_rows)
    @settings(max_examples=100, deadline=None)
    def test_tail_mask_is_packed_universe(self, n_rows):
        width = word_count(n_rows)
        assert unpack_words(tail_mask(n_rows, width)) == bitset.universe(
            n_rows
        )


class TestNumpyCondTableEquivalence:
    """NumpyCondTable mirrors CondTable over the whole protocol surface."""

    @given(_masks_and_rows())
    @settings(max_examples=150, deadline=None)
    def test_build_matches_kernel_table(self, masks_rows):
        masks, n_rows = masks_rows
        full = bitset.universe(n_rows)
        packed = NumpyCondTable.build(masks, full)
        kernel = CondTable.build(masks, full)
        assert len(packed) == len(kernel)
        assert packed.item_ids == kernel.item_ids
        assert mask_words(packed) == kernel.masks
        assert packed.inter == kernel.inter
        assert packed.union == kernel.union
        assert packed.full == kernel.full
        assert packed.ids_mask == kernel.ids_mask

    @given(_masks_and_rows(), st.data())
    @settings(max_examples=150, deadline=None)
    def test_extend_matches_kernel_table(self, masks_rows, data):
        masks, n_rows = masks_rows
        full = bitset.universe(n_rows)
        row_bit = 1 << data.draw(
            st.integers(min_value=0, max_value=n_rows - 1), label="row"
        )
        packed = NumpyCondTable.build(masks, full).extend(row_bit)
        kernel = CondTable.build(masks, full).extend(row_bit)
        assert packed.item_ids == kernel.item_ids
        assert mask_words(packed) == kernel.masks
        assert packed.inter == kernel.inter
        assert packed.union == kernel.union

    @given(_masks_and_rows(), st.integers(min_value=0))
    @settings(max_examples=150, deadline=None)
    def test_max_overlap_matches_kernel_table(self, masks_rows, raw):
        masks, n_rows = masks_rows
        full = bitset.universe(n_rows)
        cand = raw & full
        packed = NumpyCondTable.build(masks, full)
        kernel = CondTable.build(masks, full)
        assert packed.max_overlap(cand) == kernel.max_overlap(cand)

    @pytest.mark.parametrize("n_rows", [63, 64, 65])
    def test_word_boundary_extend(self, n_rows):
        # An item containing only the last row: extending by that row
        # must keep exactly the items whose top bit is set.
        full = bitset.universe(n_rows)
        top = 1 << (n_rows - 1)
        masks = [full, top, full ^ top, top | 1]
        packed = NumpyCondTable.build(masks, full).extend(top)
        kernel = CondTable.build(masks, full).extend(top)
        assert packed.item_ids == kernel.item_ids == [0, 3, 1]
        assert mask_words(packed) == kernel.masks
        assert packed.inter == kernel.inter
        assert packed.union == kernel.union

    def test_empty_table_conventions(self):
        full = 0b111
        empty = NumpyCondTable.build([], full)
        assert len(empty) == 0
        assert empty.inter == full and empty.union == 0
        assert empty.max_overlap(full) == 0
        # Extend that strips every item keeps the conventions too.
        child = NumpyCondTable.build([0b001], full).extend(0b100)
        assert len(child) == 0
        assert child.inter == full and child.union == 0

    def test_pickle_round_trip(self):
        table = NumpyCondTable.build([0b0101, 0b1111, 0b0001], 0b1111)
        _ = table.ids_mask  # populate the lazy slot too
        clone = pickle.loads(pickle.dumps(table))
        assert clone.item_ids == table.item_ids
        assert mask_words(clone) == mask_words(table)
        assert (clone.inter, clone.union, clone.full) == (
            table.inter,
            table.union,
            table.full,
        )
        assert clone.ids_mask == table.ids_mask
