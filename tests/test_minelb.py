"""Unit tests for MineLB (Figure 9, Lemmas 3.10-3.11)."""

from itertools import combinations

import pytest

from conftest import itemset_to_letters, letter_items, random_dataset

from repro import mine_irgs
from repro.core.minelb import (
    attach_lower_bounds,
    lower_bounds_for_group,
    mine_lower_bounds,
)


def naive(upper, outside):
    """Smallest-first subset search; singleton floor (see MineLB docs)."""
    projected = [frozenset(o) & upper for o in outside if frozenset(o) & upper != upper]
    items = sorted(upper)
    minimal = []
    for size in range(1, len(items) + 1):
        for subset in combinations(items, size):
            candidate = frozenset(subset)
            if any(candidate <= row for row in projected):
                continue
            if any(bound <= candidate for bound in minimal):
                continue
            minimal.append(candidate)
    return set(minimal)


class TestPaperExample7:
    def test_worked_example(self):
        upper = frozenset(letter_items("abcde"))
        outside = [
            frozenset(letter_items("abcf")),
            frozenset(letter_items("cdeg")),
        ]
        bounds = mine_lower_bounds(upper, outside)
        assert {itemset_to_letters(b) for b in bounds} == {"ad", "ae", "bd", "be"}

    def test_intermediate_step(self):
        # After adding only abc, the bounds are {d, e} (paper's step 2).
        upper = frozenset(letter_items("abcde"))
        bounds = mine_lower_bounds(upper, [frozenset(letter_items("abcf"))])
        assert {itemset_to_letters(b) for b in bounds} == {"d", "e"}


class TestConventions:
    def test_no_outside_rows_gives_singletons(self):
        bounds = mine_lower_bounds(frozenset({1, 2}), [])
        assert set(bounds) == {frozenset({1}), frozenset({2})}

    def test_empty_upper(self):
        assert mine_lower_bounds(frozenset(), []) == (frozenset(),)

    def test_outside_equal_to_upper_tolerated(self):
        # A row supporting all of A is an inside row; passing it anyway
        # must not corrupt the result.
        bounds = mine_lower_bounds(
            frozenset({1, 2}), [frozenset({1, 2}), frozenset({1})]
        )
        assert set(bounds) == {frozenset({2})}

    def test_deterministic_order(self):
        upper = frozenset("abcde")
        outside = [frozenset("abcf"), frozenset("cdeg")]
        first = mine_lower_bounds(upper, outside)
        second = mine_lower_bounds(upper, list(reversed(outside)))
        assert first == second


class TestAgainstNaive:
    def test_randomized(self):
        import random

        rng = random.Random(11)
        for _ in range(80):
            size = rng.randint(1, 7)
            upper = frozenset(range(size))
            outside = [
                frozenset(i for i in range(size) if rng.random() < 0.5)
                for _ in range(rng.randint(0, 6))
            ]
            outside = [o for o in outside if o != upper]
            got = set(mine_lower_bounds(upper, outside))
            if outside:
                want = naive(upper, outside)
            else:
                # Non-empty-antecedent floor: singletons (see MineLB docs).
                want = {frozenset({i}) for i in upper}
            assert got == want, (upper, outside)


class TestGroupIntegration:
    def test_bounds_generate_same_rows(self, paper_dataset):
        """Every lower bound must support exactly the group's rows."""
        from repro.core.closure import rows_of

        result = mine_irgs(paper_dataset, "C", minsup=1)
        for group in result.groups:
            bounds = lower_bounds_for_group(paper_dataset, group)
            assert bounds
            for bound in bounds:
                assert rows_of(paper_dataset, bound) == group.rows, (
                    sorted(group.upper),
                    sorted(bound),
                )

    def test_bounds_are_minimal(self, paper_dataset):
        from repro.core.closure import rows_of

        result = mine_irgs(paper_dataset, "C", minsup=1)
        for group in result.groups:
            for bound in lower_bounds_for_group(paper_dataset, group):
                for item in bound:
                    smaller = bound - {item}
                    if not smaller:
                        continue
                    assert rows_of(paper_dataset, smaller) != group.rows

    def test_attach_lower_bounds(self, paper_dataset):
        result = mine_irgs(paper_dataset, "C", minsup=1)
        group = attach_lower_bounds(paper_dataset, result.groups[0])
        assert group.lower_bounds is not None
        assert group.upper == result.groups[0].upper

    def test_randomized_minimality_and_generation(self):
        from repro.core.closure import rows_of

        for seed in range(25):
            data = random_dataset(seed + 900)
            result = mine_irgs(data, "C", minsup=1)
            for group in result.groups[:10]:
                bounds = lower_bounds_for_group(data, group)
                for bound in bounds:
                    assert rows_of(data, bound) == group.rows
                # No bound contains another.
                for left in bounds:
                    for right in bounds:
                        if left is not right:
                            assert not left < right


class TestMemberRoundTrip:
    def test_members_have_group_rows(self, paper_dataset):
        """Lemma 2.2 round trip: every member generates the same rows."""
        from repro.core.closure import rows_of

        result = mine_irgs(
            paper_dataset, "C", minsup=1, compute_lower_bounds=True
        )
        for group in result.groups:
            for member in group.iter_members(limit=50):
                assert rows_of(paper_dataset, member) == group.rows
