"""Tests for emerging patterns and the CAEP classifier."""

import math

import pytest

from conftest import random_dataset

from repro.core.closure import rows_of
from repro.data.dataset import ItemizedDataset
from repro.data.discretize import EntropyMDLDiscretizer
from repro.data.synthetic import BlockSpec, make_microarray
from repro.errors import ConstraintError
from repro.extensions.emerging import (
    CAEPClassifier,
    mine_emerging_patterns,
)


def simple_data():
    """Item 0 emerges in class a (3/3 vs 1/3); item 1 is flat."""
    rows = [[0, 1], [0, 1], [0], [1], [0, 1], [1]]
    labels = ["a", "a", "a", "b", "b", "b"]
    return ItemizedDataset.from_lists(rows, labels, n_items=2)


class TestMineEmergingPatterns:
    def test_growth_rates_respect_threshold(self):
        data = simple_data()
        patterns = mine_emerging_patterns(data, "a", min_growth=2.0)
        assert patterns
        for pattern in patterns:
            assert pattern.growth_rate >= 2.0

    def test_growth_rate_value(self):
        data = simple_data()
        patterns = mine_emerging_patterns(data, "a", min_growth=2.0)
        by_upper = {pattern.upper: pattern for pattern in patterns}
        ep = by_upper.get(frozenset({0}))
        assert ep is not None
        assert ep.growth_rate == pytest.approx((3 / 3) / (1 / 3))
        assert ep.relative_support == pytest.approx(1.0)

    def test_jumping_ep_is_infinite(self):
        rows = [[0], [0], [1], [1]]
        data = ItemizedDataset.from_lists(
            rows, ["a", "a", "b", "b"], n_items=2
        )
        patterns = mine_emerging_patterns(data, "a", min_growth=2.0)
        jumping = [p for p in patterns if math.isinf(p.growth_rate)]
        assert jumping
        assert jumping[0].strength == jumping[0].relative_support

    def test_bounds_generate_pattern_rows(self):
        for seed in range(8):
            data = random_dataset(seed + 4000)
            try:
                patterns = mine_emerging_patterns(data, "C", min_growth=1.5)
            except ConstraintError:
                continue  # single-class sample
            for pattern in patterns[:5]:
                for bound in pattern.bounds:
                    assert rows_of(data, bound) == rows_of(
                        data, pattern.upper
                    )

    def test_growth_confidence_equivalence(self):
        """Every rule group above the derived minconf passes the exact
        growth filter and vice versa (no group is silently lost)."""
        from repro import mine_irgs

        data = simple_data()
        patterns = mine_emerging_patterns(data, "a", min_growth=2.0)
        n, m = data.n_rows, data.class_count("a")
        minconf = (2.0 * m) / (2.0 * m + (n - m))
        groups = mine_irgs(
            data, "a", minsup=1, minconf=minconf, compute_lower_bounds=True
        ).groups
        assert {p.upper for p in patterns} == {g.upper for g in groups}

    def test_validation(self):
        data = simple_data()
        with pytest.raises(ConstraintError):
            mine_emerging_patterns(data, "a", min_growth=1.0)
        single = ItemizedDataset.from_lists([[0]], ["a"], n_items=1)
        with pytest.raises(ConstraintError):
            mine_emerging_patterns(single, "a", min_growth=2.0)

    def test_sorted_strongest_first(self):
        data = simple_data()
        patterns = mine_emerging_patterns(data, "a", min_growth=1.5)
        keys = [
            (
                -(1e18 if math.isinf(p.growth_rate) else p.growth_rate),
                -p.relative_support,
            )
            for p in patterns
        ]
        assert keys == sorted(keys)


class TestCAEPClassifier:
    def block_matrix(self, seed=0, n=40):
        blocks = [
            BlockSpec(size=3, target_class=0, shift=5.0, penetrance=0.9),
            BlockSpec(size=3, target_class=1, shift=5.0, penetrance=0.9),
        ]
        return make_microarray(
            n_samples=n, n_genes=14, n_class1=n // 2, blocks=blocks,
            n_subtypes=0, seed=seed,
        )

    def test_learns_block_signal(self):
        matrix = self.block_matrix()
        data = EntropyMDLDiscretizer().fit_transform(matrix)
        classifier = CAEPClassifier().fit(data)
        assert classifier.accuracy(data) >= 0.85

    def test_generalizes(self):
        train_matrix = self.block_matrix(seed=1, n=60)
        test_matrix = self.block_matrix(seed=2, n=30)
        discretizer = EntropyMDLDiscretizer().fit(train_matrix)
        classifier = CAEPClassifier().fit(discretizer.transform(train_matrix))
        assert classifier.accuracy(discretizer.transform(test_matrix)) >= 0.75

    def test_unmatched_sample_gets_default(self):
        data = simple_data()
        classifier = CAEPClassifier(min_growth=1.5).fit(data)
        assert classifier.predict_row(frozenset()) == classifier._default

    def test_patterns_capped(self):
        data = simple_data()
        classifier = CAEPClassifier(min_growth=1.5, max_patterns=1).fit(data)
        for label in ("a", "b"):
            assert len(classifier.patterns_for(label)) <= 1

    def test_deterministic(self):
        data = simple_data()
        first = CAEPClassifier(min_growth=1.5).fit(data).predict(data)
        second = CAEPClassifier(min_growth=1.5).fit(data).predict(data)
        assert first == second
