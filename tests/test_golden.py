"""Golden regression tests: pinned numbers for the registry workloads.

The registry datasets are pure functions of their seeds, and every miner
is deterministic, so exact counts are stable across runs and platforms.
If one of these fails after a code change, either the change altered
mining semantics (a bug — the oracle tests should also fail) or it
intentionally altered the generator (update the goldens *and* the
recorded numbers in EXPERIMENTS.md together).
"""

import pytest

from repro import mine_irgs
from repro.baselines import mine_closed_charm
from repro.data.discretize import EqualDepthDiscretizer
from repro.data.registry import PAPER_DATASETS, load


@pytest.fixture(scope="module")
def ct_small():
    matrix = load("CT", scale=0.02)
    return EqualDepthDiscretizer(n_buckets=10).fit_transform(matrix)


class TestGeneratorGoldens:
    def test_ct_matrix_fingerprint(self):
        matrix = load("CT", scale=0.02)
        assert matrix.n_samples == 62
        assert matrix.n_genes == 64
        # A few fixed cells pin the RNG stream end-to-end.
        assert matrix.values[0, 0] == pytest.approx(1.2117620649612577)
        assert matrix.values[61, 63] == pytest.approx(-0.8372009252055121)

    def test_all_matrix_fingerprint(self):
        matrix = load("ALL", scale=0.02)
        assert matrix.n_samples == 72
        assert matrix.values[0, 0] == pytest.approx(0.1492119443097944)

    def test_discretized_shape(self, ct_small):
        assert ct_small.n_rows == 62
        assert ct_small.n_items == 640
        assert ct_small.max_row_length() == 64


class TestMiningGoldens:
    @pytest.mark.parametrize(
        ("minsup", "expected_irgs"),
        [(6, 87), (5, 237), (4, 441)],
    )
    def test_ct_irg_counts(self, ct_small, minsup, expected_irgs):
        result = mine_irgs(ct_small, "negative", minsup=minsup)
        assert len(result.groups) == expected_irgs

    def test_ct_irg_counts_with_confidence(self, ct_small):
        result = mine_irgs(ct_small, "negative", minsup=5, minconf=0.9)
        assert len(result.groups) == 68

    def test_ct_closed_set_count(self, ct_small):
        closed = mine_closed_charm(ct_small, minsup=5)
        assert len(closed) == 711

    def test_counts_stable_across_pruning_configs(self, ct_small):
        for prunings in [(), ("p1", "p2", "p3")]:
            result = mine_irgs(
                ct_small, "negative", minsup=6, prunings=prunings
            )
            assert len(result.groups) == 87


class TestRegistryGoldens:
    def test_table1_constants(self):
        rows = {
            "BC": (97, 24481, 46),
            "LC": (181, 12533, 31),
            "CT": (62, 2000, 40),
            "PC": (136, 12600, 52),
            "ALL": (72, 7129, 47),
        }
        for name, (n_rows, paper_cols, n_class1) in rows.items():
            spec = PAPER_DATASETS[name]
            assert (spec.n_rows, spec.paper_cols, spec.n_class1) == (
                n_rows,
                paper_cols,
                n_class1,
            )

    def test_table2_split_sizes(self):
        sizes = {
            "BC": (78, 19),
            "LC": (32, 149),
            "CT": (47, 15),
            "PC": (102, 34),
            "ALL": (38, 34),
        }
        for name, (train, test) in sizes.items():
            spec = PAPER_DATASETS[name]
            assert (spec.n_train, spec.n_test) == (train, test)
