"""ColumnE (column-enumeration IRG miner) vs FARMER and the oracle."""

import pytest

from conftest import itemset_to_letters, random_dataset

from repro import Constraints, SearchBudget, mine_irgs
from repro.baselines import interesting_rule_groups, mine_irgs_columnwise
from repro.baselines.columne import ColumnE
from repro.errors import BudgetExceeded


class TestPaperExample:
    def test_same_irgs_as_farmer(self, paper_dataset):
        farmer = mine_irgs(paper_dataset, "C", minsup=1)
        columne = mine_irgs_columnwise(paper_dataset, "C", minsup=1)
        assert {g.upper for g in columne} == farmer.upper_antecedents()

    def test_letters(self, paper_dataset):
        groups = mine_irgs_columnwise(paper_dataset, "C", minsup=1)
        assert {itemset_to_letters(g.upper) for g in groups} == {
            "aco",
            "al",
            "a",
            "l",
            "qt",
        }

    def test_statistics_match(self, paper_dataset):
        farmer = {
            g.upper: (g.support, g.antecedent_support, g.rows)
            for g in mine_irgs(paper_dataset, "C", minsup=1).groups
        }
        for group in mine_irgs_columnwise(paper_dataset, "C", minsup=1):
            assert farmer[group.upper] == (
                group.support,
                group.antecedent_support,
                group.rows,
            )


class TestAgainstOracle:
    def test_randomized_with_constraints(self):
        for seed in range(30):
            data = random_dataset(seed + 500)
            for minsup, minconf in [(1, 0.0), (2, 0.0), (1, 0.7), (2, 0.5)]:
                oracle = interesting_rule_groups(
                    data, "C", Constraints(minsup=minsup, minconf=minconf)
                )
                got = mine_irgs_columnwise(
                    data, "C", minsup=minsup, minconf=minconf
                )
                assert {g.upper for g in got} == {g.upper for g in oracle}, (
                    seed,
                    minsup,
                    minconf,
                )


class TestOptions:
    def test_budget(self, paper_dataset):
        miner = ColumnE(
            constraints=Constraints(minsup=1),
            budget=SearchBudget(max_nodes=2),
        )
        with pytest.raises(BudgetExceeded):
            miner.mine(paper_dataset, "C")

    def test_lower_bounds(self, paper_dataset):
        miner = ColumnE(
            constraints=Constraints(minsup=1), compute_lower_bounds=True
        )
        groups = miner.mine(paper_dataset, "C")
        assert all(group.lower_bounds is not None for group in groups)

    def test_counters_populated(self, paper_dataset):
        miner = ColumnE(constraints=Constraints(minsup=1))
        miner.mine(paper_dataset, "C")
        assert miner.counters.nodes > 0
        assert miner.counters.groups_emitted == 5
