"""Integration: FARMER vs the exhaustive oracle, with every pruning combo.

These are the strongest correctness tests in the suite: on dozens of
randomized datasets, the full IRG output (antecedents *and* statistics)
must match the literal Definition 2.2 implementation, for every
constraint setting and every pruning configuration.
"""

import pytest

from conftest import ORACLE_SHAPES, random_dataset

from repro import Constraints, mine_irgs
from repro.baselines import all_rule_groups, interesting_rule_groups
from repro.errors import DataError

CONSTRAINT_GRID = [
    dict(minsup=1, minconf=0.0, minchi=0.0),
    dict(minsup=2, minconf=0.0, minchi=0.0),
    dict(minsup=1, minconf=0.6, minchi=0.0),
    dict(minsup=1, minconf=0.0, minchi=1.5),
    dict(minsup=2, minconf=0.5, minchi=1.0),
]


class TestAgainstOracle:
    @pytest.mark.parametrize("params", CONSTRAINT_GRID, ids=str)
    def test_randomized_uppers_and_stats(self, params):
        for seed in range(25):
            data = random_dataset(seed)
            oracle = interesting_rule_groups(data, "C", Constraints(**params))
            result = mine_irgs(data, "C", **params)
            expected = {
                g.upper: (g.support, g.antecedent_support, g.rows)
                for g in oracle
            }
            got = {
                g.upper: (g.support, g.antecedent_support, g.rows)
                for g in result.groups
            }
            assert got == expected, (seed, params)

    def test_negative_consequent(self):
        for seed in range(10):
            data = random_dataset(seed + 50, ensure_label="D")
            oracle = interesting_rule_groups(data, "D", Constraints(minsup=1))
            result = mine_irgs(data, "D", minsup=1)
            assert result.upper_antecedents() == {g.upper for g in oracle}


class TestDegenerateShapes:
    """The shapes a sharded first enumeration level mishandles first:
    single-row trees (no children to shard), fully-compressed roots,
    items shared by every row.  The oracle is authoritative here too."""

    SHAPES = ORACLE_SHAPES

    @pytest.mark.parametrize("shape", SHAPES)
    @pytest.mark.parametrize("params", CONSTRAINT_GRID, ids=str)
    def test_matches_oracle(self, shape, params):
        for seed in range(6):
            data = random_dataset(seed, shape=shape)
            oracle = interesting_rule_groups(data, "C", Constraints(**params))
            result = mine_irgs(data, "C", **params)
            expected = {
                g.upper: (g.support, g.antecedent_support, g.rows)
                for g in oracle
            }
            got = {
                g.upper: (g.support, g.antecedent_support, g.rows)
                for g in result.groups
            }
            assert got == expected, (shape, seed, params)

    def test_missing_consequent_raises(self):
        data = random_dataset(0, shape="no_consequent")
        with pytest.raises(DataError):
            mine_irgs(data, "C", minsup=1)
        with pytest.raises(DataError):
            mine_irgs(data, "C", minsup=1, n_workers=2)


class TestPruningAblation:
    PRUNING_COMBOS = [
        (),
        ("p1",),
        ("p2",),  # degrades to no-op without p1
        ("p3",),
        ("p1", "p2"),
        ("p1", "p3"),
        ("p2", "p3"),
        ("p1", "p2", "p3"),
    ]

    @pytest.mark.parametrize("prunings", PRUNING_COMBOS, ids=str)
    def test_all_combos_identical_output(self, prunings):
        for seed in range(15):
            data = random_dataset(seed + 60)
            reference = mine_irgs(data, "C", minsup=1, minconf=0.5)
            result = mine_irgs(
                data, "C", minsup=1, minconf=0.5, prunings=prunings
            )
            assert (
                result.upper_antecedents() == reference.upper_antecedents()
            ), seed


class TestRuleGroupDefinitions:
    def test_uppers_are_closed(self):
        """Every rule group's upper bound is a closed set (Lemma 2.1)."""
        from repro.core.closure import close_itemset

        for seed in range(15):
            data = random_dataset(seed + 70)
            for group in all_rule_groups(data, "C"):
                assert close_itemset(data, group.upper) == group.upper

    def test_support_sets_unique(self):
        """One rule group per antecedent support set (Definition 2.1)."""
        for seed in range(15):
            data = random_dataset(seed + 80)
            groups = all_rule_groups(data, "C")
            row_sets = [group.rows for group in groups]
            assert len(row_sets) == len(set(row_sets))

    def test_irg_dominance_invariant(self):
        """No admitted IRG has an admitted strict-subset with >= conf."""
        for seed in range(15):
            data = random_dataset(seed + 90)
            admitted = interesting_rule_groups(data, "C", Constraints(minsup=1))
            for group in admitted:
                for other in admitted:
                    if other.upper < group.upper:
                        assert other.confidence < group.confidence

    def test_rejected_groups_are_dominated(self):
        """Constraint-satisfying groups NOT admitted have a dominating
        admitted subset (completeness of the filter)."""
        for seed in range(15):
            data = random_dataset(seed + 95)
            constraints = Constraints(minsup=1)
            admitted = interesting_rule_groups(data, "C", constraints)
            admitted_uppers = {g.upper for g in admitted}
            for group in all_rule_groups(data, "C"):
                if group.upper in admitted_uppers:
                    continue
                if not constraints.satisfied_by(
                    group.support,
                    group.antecedent_support - group.support,
                    group.n,
                    group.m,
                ):
                    continue
                assert any(
                    other.upper < group.upper
                    and other.confidence >= group.confidence
                    for other in admitted
                ), (seed, sorted(group.upper))
