"""Unit tests for the gene-network extension."""

from repro import mine_irgs
from repro.data.dataset import ItemizedDataset
from repro.data.discretize import EqualDepthDiscretizer
from repro.data.synthetic import BlockSpec, make_microarray
from repro.extensions import build_gene_network, gene_modules, gene_of_item


def block_data():
    """One tight co-regulated block whose active cluster (the 10 class-1
    samples, 25% of rows) matches the top equal-depth bucket, so the
    block's genes co-discretize into one multi-gene rule group."""
    blocks = [
        BlockSpec(size=3, target_class=0, shift=6.0, penetrance=1.0, leakage=0.0),
    ]
    matrix = make_microarray(
        n_samples=40, n_genes=12, n_class1=10, blocks=blocks,
        n_subtypes=0, block_gene_noise=0.1, seed=9,
    )
    return EqualDepthDiscretizer(n_buckets=4).fit_transform(matrix)


class TestGeneOfItem:
    def test_discretizer_names(self):
        data = block_data()
        item = next(iter(data.rows[0]))
        assert gene_of_item(data, item).startswith("g")
        assert "@" not in gene_of_item(data, item)

    def test_plain_names(self):
        data = ItemizedDataset.from_lists(
            [[0]], ["x"], n_items=1, item_names=["TP53"]
        )
        assert gene_of_item(data, 0) == "TP53"


class TestBuildNetwork:
    def test_block_genes_connected(self):
        data = block_data()
        result = mine_irgs(data, "class1", minsup=8, minconf=0.9)
        graph = build_gene_network(data, result.groups)
        # The class-1 block occupies genes g0..g2.
        assert graph.has_edge("g0", "g1") or graph.has_edge("g0", "g2")

    def test_edge_attributes(self):
        data = block_data()
        result = mine_irgs(data, "class1", minsup=8, minconf=0.9)
        graph = build_gene_network(data, result.groups)
        for _, _, attrs in graph.edges(data=True):
            assert attrs["count"] >= 1
            assert attrs["weight"] > 0.0

    def test_min_confidence_filter(self):
        data = block_data()
        result = mine_irgs(data, "class1", minsup=5)
        all_edges = build_gene_network(data, result.groups).number_of_edges()
        strict = build_gene_network(
            data, result.groups, min_confidence=1.1
        ).number_of_edges()
        assert strict == 0
        assert all_edges >= strict

    def test_empty_groups(self):
        data = block_data()
        graph = build_gene_network(data, [])
        assert graph.number_of_nodes() == 0


class TestGeneModules:
    def test_recovers_planted_block(self):
        data = block_data()
        result = mine_irgs(data, "class1", minsup=8, minconf=0.9)
        graph = build_gene_network(data, result.groups)
        modules = gene_modules(graph, min_edge_weight=0.5)
        block_genes = {"g0", "g1", "g2"}
        assert any(block_genes <= module for module in modules)

    def test_weight_floor_splits(self):
        data = block_data()
        result = mine_irgs(data, "class1", minsup=5)
        graph = build_gene_network(data, result.groups)
        low = gene_modules(graph, min_edge_weight=0.0)
        high = gene_modules(graph, min_edge_weight=1e9)
        assert high == []
        assert len(low) >= len(high)

    def test_sorted_output(self):
        data = block_data()
        result = mine_irgs(data, "class1", minsup=5)
        modules = gene_modules(
            build_gene_network(data, result.groups), min_edge_weight=0.5
        )
        sizes = [len(module) for module in modules]
        assert sizes == sorted(sizes, reverse=True)
