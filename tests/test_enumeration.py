"""Unit tests for the shared enumeration machinery and budgets."""

import time

import pytest

from repro.core.enumeration import (
    NodeCounters,
    SearchBudget,
    extend_items,
    scan_items,
)
from repro.errors import BudgetExceeded


class TestExtendItems:
    def test_filters_by_bit(self):
        ids, masks = extend_items([0, 1, 2], [0b011, 0b100, 0b111], 0b100)
        assert ids == [1, 2]
        assert masks == [0b100, 0b111]

    def test_empty_result(self):
        ids, masks = extend_items([0], [0b001], 0b100)
        assert ids == [] and masks == []

    def test_preserves_order(self):
        ids, _ = extend_items([5, 3, 9], [0b1, 0b1, 0b1], 0b1)
        assert ids == [5, 3, 9]


class TestScanItems:
    def test_intersection_and_union(self):
        intersection, union = scan_items([0b0110, 0b1110, 0b0111], 0b1111)
        assert intersection == 0b0110
        assert union == 0b1111

    def test_empty_table_yields_full_mask(self):
        intersection, union = scan_items([], 0b111)
        assert intersection == 0b111
        assert union == 0


class TestSearchBudget:
    def test_node_limit(self):
        budget = SearchBudget(max_nodes=3)
        budget.start()
        for _ in range(3):
            budget.tick()
        with pytest.raises(BudgetExceeded) as info:
            budget.tick()
        assert info.value.nodes_expanded == 4

    def test_unlimited_by_default(self):
        budget = SearchBudget()
        budget.start()
        for _ in range(10_000):
            budget.tick()
        assert budget.nodes == 10_000

    def test_restart_resets(self):
        budget = SearchBudget(max_nodes=5)
        budget.start()
        for _ in range(5):
            budget.tick()
        budget.start()
        budget.tick()
        assert budget.nodes == 1

    def test_time_limit_checked_in_batches(self):
        budget = SearchBudget(max_seconds=0.0)
        budget.start()
        time.sleep(0.01)
        # The first 255 ticks skip the clock check by design.
        for _ in range(255):
            budget.tick()
        with pytest.raises(BudgetExceeded):
            budget.tick()

    def test_strict_flag_default(self):
        assert SearchBudget().strict is True
        assert SearchBudget(strict=False).strict is False


class TestNodeCounters:
    def test_defaults(self):
        counters = NodeCounters()
        assert counters.nodes == 0
        assert counters.pruned_identified == 0
        assert counters.groups_emitted == 0
