"""Unit tests for the Pruning Strategy 3 bound calculators.

Each bound is validated against exhaustive enumeration on the paper's
running example: for every node of the row-enumeration tree, the bound
computed from the node's state must dominate the true statistic of every
rule group discoverable in that node's subtree.
"""

from itertools import combinations

import pytest

from conftest import letter_items

from repro.core import closure
from repro.core.bounds import (
    chi_bound,
    confidence_bound,
    loose_support_bound,
    tight_support_bound,
)
from repro.core.measures import chi_square


class TestLooseSupportBound:
    def test_negative_rm_freezes_support(self):
        assert loose_support_bound(4, 10, rm_is_positive=False) == 4

    def test_positive_rm_adds_candidates(self):
        assert loose_support_bound(4, 10, rm_is_positive=True) == 14

    def test_zero_candidates(self):
        assert loose_support_bound(4, 0, rm_is_positive=True) == 4


class TestTightSupportBound:
    def test_uses_max_per_tuple(self):
        assert tight_support_bound(4, 3, rm_is_positive=True) == 7

    def test_negative_rm(self):
        assert tight_support_bound(4, 3, rm_is_positive=False) == 4

    def test_tight_never_exceeds_loose(self):
        # max-per-tuple <= total candidates, always.
        for candidates in range(6):
            for per_tuple in range(candidates + 1):
                tight = tight_support_bound(2, per_tuple, True)
                loose = loose_support_bound(2, candidates, True)
                assert tight <= loose


class TestConfidenceBound:
    def test_formula(self):
        assert confidence_bound(6, 2) == pytest.approx(0.75)

    def test_zero_denominator(self):
        assert confidence_bound(0, 0) == 0.0

    def test_monotone_in_support(self):
        assert confidence_bound(8, 2) > confidence_bound(6, 2)

    def test_antitone_in_negatives(self):
        assert confidence_bound(6, 4) < confidence_bound(6, 2)


class TestChiBound:
    def test_dominates_node_chi(self):
        for supp in range(0, 6):
            for supn in range(0, 6):
                bound = chi_bound(supp, supn, 12, 6)
                if supp <= 6 and supn <= 6:
                    assert bound >= chi_square(supp + supn, supp, 12, 6) - 1e-9


class TestBoundsAgainstSubtreeTruth:
    """On Figure 1's table: each subtree's real best statistics never
    exceed the bounds computed at the subtree root."""

    def _subtree_groups(self, dataset, node_rows, candidates, allowed):
        """Rule-group stats *discovered* in the node's subtree.

        Groups whose support set escapes ``allowed`` (the node's own
        support set plus its candidates) are exactly the ones Pruning 2
        hands to earlier branches — the bounds of Lemmas 3.7-3.9 only
        claim to cover what the subtree itself reports.
        """
        stats = []
        for size in range(len(candidates) + 1):
            for extra in combinations(candidates, size):
                rows = frozenset(node_rows) | frozenset(extra)
                items = closure.items_of(dataset, rows)
                if not items:
                    continue
                support_set = closure.rows_of(dataset, items)
                if not support_set <= allowed:
                    continue
                supp = sum(
                    1 for r in support_set if dataset.labels[r] == "C"
                )
                supn = len(support_set) - supp
                stats.append((supp, supn))
        return stats

    def test_all_two_row_nodes(self, paper_dataset):
        n, m = 5, 3
        for first in range(5):
            for second in range(first + 1, 5):
                node = [first, second]
                candidates = [r for r in range(second + 1, 5)]
                positive_candidates = [r for r in candidates if r < m]
                node_items = closure.items_of(paper_dataset, node)
                if not node_items:
                    continue
                support_set = closure.rows_of(paper_dataset, node_items)
                supp_total = sum(
                    1 for r in support_set if paper_dataset.labels[r] == "C"
                )
                supn_total = len(support_set) - supp_total
                rm_positive = second < m

                us2 = loose_support_bound(
                    supp_total, len(positive_candidates), rm_positive
                )
                uc = confidence_bound(us2, supn_total)
                chi_cap = chi_bound(supp_total, supn_total, n, m)

                allowed = support_set | set(candidates)
                for supp, supn in self._subtree_groups(
                    paper_dataset, node, candidates, allowed
                ):
                    assert supp <= us2, (node, supp, us2)
                    if supp + supn:
                        assert supp / (supp + supn) <= uc + 1e-9, (node,)
                    assert (
                        chi_square(supp + supn, supp, n, m) <= chi_cap + 1e-9
                    ), (node,)

    def test_example6_confidence_prune(self, paper_dataset):
        """Example 6: at node {1,3,4} the rule is a -> C with conf 0.75;
        since row 4 is negative, no descendant can beat 0.75."""
        items = closure.items_of(paper_dataset, [0, 2, 3])
        assert items == frozenset(letter_items("a"))
        support_set = closure.rows_of(paper_dataset, items)
        supp = sum(1 for r in support_set if paper_dataset.labels[r] == "C")
        supn = len(support_set) - supp
        bound = confidence_bound(
            loose_support_bound(supp, 0, rm_is_positive=False), supn
        )
        assert bound == pytest.approx(0.75)
        assert bound < 0.95  # the example's minconf
