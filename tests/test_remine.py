"""Warm re-mining property suite: warm ≡ cold, byte-for-byte.

For random datasets and random constraint pairs — tighten, loosen, and
mixed deltas — a warm re-mine through the frontier cache
(``core/frontier.py``) must serialize exactly the bytes a cold mine
produces, whichever engine captured the entry, whichever engine resumes
it, and whether the resume runs serially, sharded, or under the
work-stealing scheduler.  A tightened re-mine must additionally expand
**zero** nodes (pure filter), and corrupt cache files must degrade to a
miss, never an error.

The nightly CI stress job runs this file at hypothesis's ``nightly``
profile alongside the conformance and scheduling sweeps.
"""

import shutil
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from strategies import datasets

from repro import mine_irgs
from repro.core.farmer import available_engines
from repro.core.parallel import shutdown_workers
from repro.errors import UsageError

ENGINES = [
    engine for engine in available_engines() if engine in ("kernel", "numpy")
]

#: Constraint triples dense enough that both sides of a pair regularly
#: produce groups on the small strategy datasets.
CONSTRAINTS = st.tuples(
    st.integers(min_value=1, max_value=4),
    st.sampled_from([0.0, 0.3, 0.6, 0.9]),
    st.sampled_from([0.0, 0.5]),
)

#: How the warm answer executes: serial, static shards, or stealing.
MODES = st.sampled_from(["serial", "sharded", "steal"])


@pytest.fixture(scope="module", autouse=True)
def _drain_pools():
    yield
    shutdown_workers()


def _irgs_bytes(result, directory, tag):
    from repro.core.serialize import save_rule_groups

    path = directory / f"{tag}.irgs"
    save_rule_groups(path, result.groups, constraints=result.constraints)
    return path.read_bytes()


def _mine(data, constraints, **kw):
    minsup, minconf, minchi = constraints
    return mine_irgs(data, "C", minsup, minconf, minchi, **kw)


def _warm_kwargs(mode, cache):
    kwargs = {"warm_cache": cache}
    if mode == "sharded":
        kwargs["n_workers"] = 2
    elif mode == "steal":
        kwargs.update(n_workers=2, steal=True, steal_quantum=64)
    return kwargs


@pytest.mark.parametrize("engine", ENGINES)
@given(data=datasets(), pair=st.tuples(CONSTRAINTS, CONSTRAINTS), mode=MODES)
@settings(deadline=None)
def test_warm_equals_cold(engine, data, pair, mode):
    """Capture at C0, re-mine at C1: groups equal a cold C1 mine's."""
    first, second = pair
    cache = tempfile.mkdtemp(prefix="remine-")
    try:
        seeded = _mine(data, first, engine=engine, warm_cache=cache)
        cold_first = _mine(data, first, engine=engine)
        assert seeded.groups == cold_first.groups
        warm = _mine(
            data, second, engine=engine, **_warm_kwargs(mode, cache)
        )
        cold = _mine(data, second, engine=engine)
        assert warm.groups == cold.groups
    finally:
        shutil.rmtree(cache)


@pytest.mark.parametrize("engine", ENGINES)
@given(data=datasets(), base=CONSTRAINTS)
@settings(deadline=None)
def test_tighten_is_pure_filter(engine, data, base):
    """No knob loosened ⇒ the warm answer expands zero nodes."""
    minsup, minconf, minchi = base
    tightened = (minsup + 2, min(1.0, minconf + 0.1), minchi + 0.5)
    cache = tempfile.mkdtemp(prefix="remine-")
    try:
        _mine(data, base, engine=engine, warm_cache=cache)
        warm = _mine(data, tightened, engine=engine, warm_cache=cache)
        assert warm.counters.nodes == 0
        cold = _mine(data, tightened, engine=engine)
        assert warm.groups == cold.groups
    finally:
        shutil.rmtree(cache)


@given(data=datasets(), base=CONSTRAINTS)
@settings(deadline=None)
def test_cross_engine_cache_reuse(data, base):
    """An entry captured by one engine answers for every other engine."""
    if len(ENGINES) < 2:
        pytest.skip("only one engine available")
    minsup, minconf, minchi = base
    loosened = (max(1, minsup - 1), 0.0, 0.0)
    cache = tempfile.mkdtemp(prefix="remine-")
    try:
        _mine(data, base, engine=ENGINES[0], warm_cache=cache)
        for engine in ENGINES[1:]:
            warm = _mine(data, loosened, engine=engine, warm_cache=cache)
            cold = _mine(data, loosened, engine=engine)
            assert warm.groups == cold.groups
    finally:
        shutil.rmtree(cache)


@given(data=datasets(), base=CONSTRAINTS)
@settings(deadline=None, max_examples=10)
def test_corrupt_entry_degrades_to_miss(data, base):
    """A truncated cache file is skipped, and the answer stays cold-equal."""
    from pathlib import Path

    cache = tempfile.mkdtemp(prefix="remine-")
    try:
        _mine(data, base, warm_cache=cache)
        for entry in Path(cache).glob("*.frontier"):
            entry.write_bytes(entry.read_bytes()[: 40])
        warm = _mine(data, base, warm_cache=cache)
        cold = _mine(data, base)
        assert warm.groups == cold.groups
    finally:
        shutil.rmtree(cache)


def test_irgs_bytes_identical(tmp_path):
    """End-to-end byte pin: warm tighten and loosen both serialize the
    cold mine's exact ``.irgs`` bytes, serial and sharded."""
    from conftest import random_dataset

    data = random_dataset(5, max_rows=12, max_items=10)
    cache = tmp_path / "cache"
    _mine(data, (3, 0.0, 0.0), warm_cache=str(cache))
    cases = [
        ("tighten", (4, 0.6, 0.0), {}),
        ("loosen", (1, 0.0, 0.0), {}),
        ("loosen-sharded", (1, 0.0, 0.0), {"n_workers": 2}),
        (
            "loosen-steal",
            (1, 0.0, 0.0),
            {"n_workers": 2, "steal": True, "steal_quantum": 64},
        ),
    ]
    for tag, constraints, extra in cases:
        warm = _mine(data, constraints, warm_cache=str(cache), **extra)
        cold = _mine(data, constraints)
        assert _irgs_bytes(warm, tmp_path, f"warm-{tag}") == _irgs_bytes(
            cold, tmp_path, f"cold-{tag}"
        ), tag


def test_warm_cache_rejects_checkpoint_knobs(tmp_path):
    """The warm path plans its own work — shard checkpointing and node
    budgets are incompatible and rejected at construction."""
    from repro.core.enumeration import SearchBudget
    from repro.core.farmer import Farmer

    with pytest.raises(UsageError, match="warm"):
        Farmer(
            warm_cache=str(tmp_path),
            checkpoint=str(tmp_path / "ck"),
        )
    with pytest.raises(UsageError, match="warm"):
        Farmer(
            warm_cache=str(tmp_path),
            budget=SearchBudget(max_nodes=100),
        )
