"""Edge cases and robustness tests for the FARMER miner."""

import pytest

from repro import Constraints, Farmer, SearchBudget, mine_irgs
from repro.baselines import interesting_rule_groups
from repro.data.dataset import ItemizedDataset


class TestMultiClass:
    """The paper's datasets are binary, but consequent-vs-rest mining
    must work for any number of labels."""

    def three_class_data(self):
        rows = [
            [0, 1],
            [0, 1],
            [2, 3],
            [2, 3],
            [4, 5],
            [4, 5],
        ]
        labels = ["x", "x", "y", "y", "z", "z"]
        return ItemizedDataset.from_lists(rows, labels, n_items=6)

    def test_each_consequent_mines_independently(self):
        data = self.three_class_data()
        for label, expected_items in [("x", {0, 1}), ("y", {2, 3}), ("z", {4, 5})]:
            result = mine_irgs(data, label, minsup=2, minconf=0.9)
            assert frozenset(expected_items) in result.upper_antecedents()

    def test_matches_oracle_per_class(self):
        data = self.three_class_data()
        for label in data.class_labels:
            oracle = interesting_rule_groups(
                data, label, Constraints(minsup=1)
            )
            result = mine_irgs(data, label, minsup=1)
            assert result.upper_antecedents() == {g.upper for g in oracle}

    def test_m_counts_rest_as_negative(self):
        data = self.three_class_data()
        result = mine_irgs(data, "x", minsup=1)
        for group in result.groups:
            assert group.m == 2
            assert group.n == 6


class TestDegenerateRows:
    def test_duplicate_rows(self):
        data = ItemizedDataset.from_lists(
            [[0, 1], [0, 1], [0, 1], [2]], ["C", "C", "D", "D"], n_items=3
        )
        result = mine_irgs(data, "C", minsup=1)
        oracle = interesting_rule_groups(data, "C", Constraints(minsup=1))
        assert result.upper_antecedents() == {g.upper for g in oracle}
        by_upper = {g.upper: g for g in result.groups}
        group = by_upper[frozenset({0, 1})]
        assert group.antecedent_support == 3
        assert group.support == 2

    def test_rows_with_no_items(self):
        data = ItemizedDataset.from_lists(
            [[], [0], [], [0]], ["C", "C", "D", "D"], n_items=1
        )
        result = mine_irgs(data, "C", minsup=1)
        assert result.upper_antecedents() == {frozenset({0})}

    def test_single_positive_row(self):
        data = ItemizedDataset.from_lists(
            [[0, 1]] + [[2]] * 4, ["C", "D", "D", "D", "D"], n_items=3
        )
        result = mine_irgs(data, "C", minsup=1)
        assert frozenset({0, 1}) in result.upper_antecedents()

    def test_identical_dataset_rows_single_group(self):
        data = ItemizedDataset.from_lists(
            [[0, 1, 2]] * 5, ["C", "C", "C", "D", "D"], n_items=3
        )
        result = mine_irgs(data, "C", minsup=1)
        assert len(result.groups) == 1
        assert result.groups[0].antecedent_support == 5


class TestBudgetSemantics:
    def test_strict_budget_raises_and_preserves_recursion_limit(self, paper_dataset):
        import sys

        from repro.errors import BudgetExceeded

        before = sys.getrecursionlimit()
        with pytest.raises(BudgetExceeded):
            mine_irgs(
                paper_dataset, "C", minsup=1, budget=SearchBudget(max_nodes=2)
            )
        assert sys.getrecursionlimit() == before

    def test_nonstrict_budget_returns_valid_partial(self, paper_dataset):
        miner = Farmer(
            constraints=Constraints(minsup=1),
            budget=SearchBudget(max_nodes=4, strict=False),
        )
        result = miner.mine(paper_dataset, "C")
        assert result.truncated
        full = mine_irgs(paper_dataset, "C", minsup=1)
        from repro.core.closure import rows_of

        for group in result.groups:
            # Partial groups are still genuine rule groups.
            assert rows_of(paper_dataset, group.upper) == group.rows
        assert len(result.groups) <= len(full.groups)

    def test_nonstrict_full_run_not_truncated(self, paper_dataset):
        miner = Farmer(
            constraints=Constraints(minsup=1),
            budget=SearchBudget(max_nodes=10_000, strict=False),
        )
        assert not miner.mine(paper_dataset, "C").truncated


class TestReuse:
    def test_miner_reusable_across_datasets(self, paper_dataset):
        miner = Farmer(constraints=Constraints(minsup=1))
        first = miner.mine(paper_dataset, "C")
        other = ItemizedDataset.from_lists(
            [[0], [1]], ["C", "D"], n_items=2
        )
        second = miner.mine(other, "C")
        third = miner.mine(paper_dataset, "C")
        assert first.upper_antecedents() == third.upper_antecedents()
        assert second.upper_antecedents() == {frozenset({0})}

    def test_results_independent_of_item_order(self):
        """Renaming items must not change the (renamed) output."""
        rows = [[0, 1, 2], [1, 2], [0, 3], [3]]
        labels = ["C", "C", "D", "D"]
        data = ItemizedDataset.from_lists(rows, labels, n_items=4)
        permutation = {0: 3, 1: 0, 2: 2, 3: 1}
        renamed_rows = [[permutation[i] for i in row] for row in rows]
        renamed = ItemizedDataset.from_lists(renamed_rows, labels, n_items=4)

        original = mine_irgs(data, "C", minsup=1).upper_antecedents()
        mapped = {
            frozenset(permutation[i] for i in upper) for upper in original
        }
        assert mapped == mine_irgs(renamed, "C", minsup=1).upper_antecedents()

    def test_results_independent_of_row_order(self):
        rows = [[0, 1], [1, 2], [0], [2]]
        labels = ["C", "D", "C", "D"]
        data = ItemizedDataset.from_lists(rows, labels, n_items=3)
        shuffled = ItemizedDataset.from_lists(
            [rows[2], rows[0], rows[3], rows[1]],
            [labels[2], labels[0], labels[3], labels[1]],
            n_items=3,
        )
        assert (
            mine_irgs(data, "C", minsup=1).upper_antecedents()
            == mine_irgs(shuffled, "C", minsup=1).upper_antecedents()
        )
