"""Unit tests for Rule and RuleGroup (Definitions 2.1-2.2, Lemma 2.2)."""

import pytest

from repro.core.rule import Rule
from repro.core.rulegroup import RuleGroup, count_covered_subsets


def make_group(lower_bounds=None):
    """The paper's Example 2 group: upper aeh, rows {1,2,3}, conf 2/3."""
    return RuleGroup(
        upper=frozenset({0, 4, 7}),  # a, e, h
        consequent="C",
        rows=frozenset({1, 2, 3}),
        support=2,
        antecedent_support=3,
        n=5,
        m=3,
        lower_bounds=lower_bounds,
    )


class TestRule:
    def test_confidence_and_chi(self):
        rule = Rule(
            antecedent=frozenset({0}),
            consequent="C",
            support=2,
            antecedent_support=3,
            n=5,
            m=3,
        )
        assert rule.confidence == pytest.approx(2 / 3)
        assert rule.negative_support == 1
        assert rule.chi_square >= 0.0

    def test_invalid_counts_rejected(self):
        with pytest.raises(ValueError):
            Rule(
                antecedent=frozenset(),
                consequent="C",
                support=4,
                antecedent_support=3,
                n=5,
                m=3,
            )

    def test_measure_lookup(self):
        rule = Rule(
            antecedent=frozenset({0}),
            consequent="C",
            support=2,
            antecedent_support=3,
            n=5,
            m=3,
        )
        assert rule.measure("confidence") == pytest.approx(rule.confidence)

    def test_format(self):
        rule = Rule(
            antecedent=frozenset({1, 0}),
            consequent="C",
            support=2,
            antecedent_support=2,
            n=5,
            m=3,
        )
        text = rule.format()
        assert "{0, 1}" in text and "-> C" in text


class TestRuleGroupStats:
    def test_confidence(self):
        assert make_group().confidence == pytest.approx(2 / 3)

    def test_upper_rule(self):
        rule = make_group().upper_rule
        assert rule.antecedent == frozenset({0, 4, 7})
        assert rule.support == 2

    def test_row_count_validation(self):
        with pytest.raises(ValueError):
            RuleGroup(
                upper=frozenset({0}),
                consequent="C",
                rows=frozenset({1, 2}),
                support=1,
                antecedent_support=3,  # != |rows|
                n=5,
                m=3,
            )

    def test_lower_bound_subset_validation(self):
        with pytest.raises(ValueError):
            make_group(lower_bounds=(frozenset({9}),))


class TestMembership:
    """Lemma 2.2: members are exactly the sets between a lower bound and
    the upper bound."""

    def test_contains_antecedent(self):
        group = make_group(lower_bounds=(frozenset({4}), frozenset({7})))
        assert group.contains_antecedent(frozenset({4}))  # e
        assert group.contains_antecedent(frozenset({4, 7}))  # eh
        assert group.contains_antecedent(frozenset({0, 4, 7}))  # aeh
        assert not group.contains_antecedent(frozenset({0}))  # a alone
        assert not group.contains_antecedent(frozenset({0, 9}))  # outside

    def test_requires_lower_bounds(self):
        with pytest.raises(ValueError):
            make_group().contains_antecedent(frozenset({4}))

    def test_iter_members_matches_paper_example_2(self):
        group = make_group(lower_bounds=(frozenset({4}), frozenset({7})))
        members = set(group.iter_members())
        expected = {
            frozenset({4}),
            frozenset({7}),
            frozenset({0, 4}),
            frozenset({0, 7}),
            frozenset({4, 7}),
            frozenset({0, 4, 7}),
        }
        assert members == expected

    def test_iter_members_limit(self):
        group = make_group(lower_bounds=(frozenset({4}), frozenset({7})))
        assert len(list(group.iter_members(limit=3))) == 3

    def test_member_count_matches_enumeration(self):
        group = make_group(lower_bounds=(frozenset({4}), frozenset({7})))
        assert group.member_count() == 6

    def test_member_count_single_lower(self):
        group = make_group(lower_bounds=(frozenset({0, 4, 7}),))
        assert group.member_count() == 1


class TestCountCoveredSubsets:
    def test_intro_example(self):
        # The paper's intro: upper abcde with 5 singleton lower bounds
        # gives 31 member rules (every non-empty subset).
        upper = frozenset(range(5))
        lowers = tuple(frozenset({i}) for i in range(5))
        assert count_covered_subsets(upper, lowers) == 31

    def test_no_lower_bounds(self):
        assert count_covered_subsets(frozenset({1, 2}), ()) == 0


class TestFormat:
    def test_format_mentions_bounds(self, paper_dataset):
        group = make_group(lower_bounds=(frozenset({4}), frozenset({7})))
        text = group.format(paper_dataset)
        assert "upper" in text
        assert text.count("lower") == 2
        assert "{a, e, h}" in text
