"""Unit tests for Apriori frequent itemsets and CBA-RG rule generation."""

from itertools import combinations

import pytest

from conftest import random_dataset

from repro.baselines.apriori import AprioriConfig, frequent_itemsets, mine_cars
from repro.core.closure import rows_of
from repro.data.dataset import ItemizedDataset
from repro.errors import BudgetExceeded, ConstraintError


def brute_force_frequent(data, minsup, max_length=None):
    result = {}
    items = range(data.n_items)
    top = data.n_items if max_length is None else min(max_length, data.n_items)
    for size in range(1, top + 1):
        for subset in combinations(items, size):
            support = len(rows_of(data, subset))
            if support >= minsup:
                result[frozenset(subset)] = support
    return result


class TestFrequentItemsets:
    def test_against_brute_force(self):
        for seed in range(20):
            data = random_dataset(seed + 700, max_rows=7, max_items=7)
            for minsup in (1, 2, 3):
                got = frequent_itemsets(data, AprioriConfig(minsup=minsup))
                assert got == brute_force_frequent(data, minsup), (seed, minsup)

    def test_max_length(self):
        data = ItemizedDataset.from_lists(
            [[0, 1, 2], [0, 1, 2]], ["a", "b"], n_items=3
        )
        got = frequent_itemsets(data, AprioriConfig(minsup=1, max_length=2))
        assert got == brute_force_frequent(data, 1, max_length=2)

    def test_paper_example_counts(self, paper_dataset):
        got = frequent_itemsets(paper_dataset, AprioriConfig(minsup=3))
        # a appears in 4 rows; aeh in 3 rows (the Example 2 group).
        assert got[frozenset({0})] == 4
        assert got[frozenset({0, 4, 7})] == 3

    def test_config_validation(self):
        with pytest.raises(ConstraintError):
            AprioriConfig(minsup=0)
        with pytest.raises(ConstraintError):
            AprioriConfig(max_length=0)

    def test_budget(self, paper_dataset):
        from repro.core.enumeration import SearchBudget

        config = AprioriConfig(minsup=1, budget=SearchBudget(max_nodes=3))
        with pytest.raises(BudgetExceeded):
            frequent_itemsets(paper_dataset, config)


class TestMineCars:
    def test_rules_have_valid_stats(self, paper_dataset):
        rules = mine_cars(paper_dataset, minsup=2, minconf=0.6, max_length=3)
        assert rules
        for rule in rules:
            rows = rows_of(paper_dataset, rule.antecedent)
            matching = sum(
                1
                for index in rows
                if paper_dataset.labels[index] == rule.consequent
            )
            assert rule.support == matching
            assert rule.antecedent_support == len(rows)
            assert rule.confidence >= 0.6
            assert rule.support >= 2

    def test_precedence_order(self, paper_dataset):
        rules = mine_cars(paper_dataset, minsup=1, minconf=0.5, max_length=2)
        keys = [(-r.confidence, -r.support, len(r.antecedent)) for r in rules]
        assert keys == sorted(keys)

    def test_both_classes_represented(self, paper_dataset):
        rules = mine_cars(paper_dataset, minsup=2, minconf=0.5, max_length=2)
        assert {rule.consequent for rule in rules} == {"C", "N"}

    def test_minconf_validation(self, paper_dataset):
        with pytest.raises(ConstraintError):
            mine_cars(paper_dataset, minsup=1, minconf=1.5)

    def test_completeness_against_brute_force(self):
        for seed in range(10):
            data = random_dataset(seed + 800, max_rows=6, max_items=6)
            rules = mine_cars(data, minsup=1, minconf=0.0)
            got = {(rule.antecedent, rule.consequent) for rule in rules}
            expected = set()
            for size in range(1, data.n_items + 1):
                for subset in combinations(range(data.n_items), size):
                    rows = rows_of(data, subset)
                    for label in data.class_labels:
                        support = sum(
                            1 for i in rows if data.labels[i] == label
                        )
                        if support >= 1:
                            expected.add((frozenset(subset), label))
            assert got == expected, seed
