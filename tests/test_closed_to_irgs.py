"""Tests for the closed-sets -> IRGs pipeline (CHARM as a FARMER stand-in)."""

import pytest

from conftest import random_dataset

from repro import Constraints, mine_irgs
from repro.baselines import mine_closed_carpenter, mine_closed_charm
from repro.baselines.closed_to_irgs import (
    groups_from_closed,
    interesting_groups_from_closed,
)
from repro.errors import DataError


class TestGroupsFromClosed:
    def test_stats_match_farmer(self, paper_dataset):
        closed = mine_closed_charm(paper_dataset, minsup=1)
        groups = groups_from_closed(paper_dataset, closed, "C")
        farmer_all = {
            g.upper: (g.support, g.antecedent_support, g.rows)
            for g in mine_irgs(paper_dataset, "C", minsup=0).groups
        }
        for group in groups:
            if group.upper in farmer_all:
                assert farmer_all[group.upper] == (
                    group.support,
                    group.antecedent_support,
                    group.rows,
                )

    def test_sorted_subset_first(self, paper_dataset):
        closed = mine_closed_charm(paper_dataset, minsup=1)
        groups = groups_from_closed(paper_dataset, closed, "C")
        sizes = [len(group.upper) for group in groups]
        assert sizes == sorted(sizes)

    def test_unknown_consequent(self, paper_dataset):
        closed = mine_closed_charm(paper_dataset, minsup=1)
        with pytest.raises(DataError):
            groups_from_closed(paper_dataset, closed, "NOPE")

    def test_duplicate_support_set_rejected(self, paper_dataset):
        closed = mine_closed_charm(paper_dataset, minsup=1)
        with pytest.raises(DataError, match="duplicate"):
            groups_from_closed(paper_dataset, closed + [closed[0]], "C")


class TestInterestingGroupsFromClosed:
    def test_charm_pipeline_equals_farmer_paper(self, paper_dataset):
        closed = mine_closed_charm(paper_dataset, minsup=1)
        pipeline = interesting_groups_from_closed(
            paper_dataset, closed, "C", Constraints(minsup=1)
        )
        farmer = mine_irgs(paper_dataset, "C", minsup=1)
        assert {g.upper for g in pipeline} == farmer.upper_antecedents()

    @pytest.mark.parametrize(
        "params",
        [
            dict(minsup=1, minconf=0.0),
            dict(minsup=2, minconf=0.0),
            dict(minsup=1, minconf=0.7),
        ],
        ids=str,
    )
    def test_charm_pipeline_equals_farmer_randomized(self, params):
        for seed in range(20):
            data = random_dataset(seed + 5000)
            closed = mine_closed_charm(data, minsup=max(1, params["minsup"]))
            pipeline = interesting_groups_from_closed(
                data, closed, "C", Constraints(**params)
            )
            farmer = mine_irgs(data, "C", **params)
            assert {g.upper for g in pipeline} == farmer.upper_antecedents(), (
                seed,
                params,
            )

    def test_carpenter_pipeline_equals_farmer(self, paper_dataset):
        closed = mine_closed_carpenter(paper_dataset, minsup=1)
        pipeline = interesting_groups_from_closed(
            paper_dataset, closed, "C", Constraints(minsup=1, minconf=0.9)
        )
        farmer = mine_irgs(paper_dataset, "C", minsup=1, minconf=0.9)
        assert {g.upper for g in pipeline} == farmer.upper_antecedents()

    def test_other_consequent(self, paper_dataset):
        closed = mine_closed_charm(paper_dataset, minsup=1)
        pipeline = interesting_groups_from_closed(
            paper_dataset, closed, "N", Constraints(minsup=2)
        )
        farmer = mine_irgs(paper_dataset, "N", minsup=2)
        assert {g.upper for g in pipeline} == farmer.upper_antecedents()
