"""Unit tests for the IRG classifier (Section 4.2)."""

import pytest

from repro.classify.irg import IRGClassifier
from repro.data.dataset import ItemizedDataset
from repro.data.discretize import EntropyMDLDiscretizer
from repro.data.synthetic import BlockSpec, make_microarray


def block_matrix(seed=0, n=40):
    """Two clean blocks, one per class: an easy, learnable task."""
    blocks = [
        BlockSpec(size=4, target_class=0, shift=5.0, penetrance=0.95, leakage=0.0),
        BlockSpec(size=4, target_class=1, shift=5.0, penetrance=0.95, leakage=0.0),
    ]
    return make_microarray(
        n_samples=n,
        n_genes=20,
        n_class1=n // 2,
        blocks=blocks,
        n_subtypes=0,
        seed=seed,
    )


def itemized(seed=0, n=40):
    matrix = block_matrix(seed, n)
    return EntropyMDLDiscretizer().fit_transform(matrix)


class TestFit:
    def test_learns_block_signal(self):
        data = itemized()
        classifier = IRGClassifier().fit(data)
        assert classifier.accuracy(data) >= 0.85

    def test_rules_present_for_both_classes(self):
        # Without coverage pruning (whose error cut may drop one class's
        # rules when the default already handles it), both classes mine.
        classifier = IRGClassifier(coverage_pruning=False).fit(itemized())
        consequents = {group.consequent for group in classifier.rules}
        assert consequents == {"class1", "class0"}

    def test_rules_sorted_by_confidence(self):
        classifier = IRGClassifier(coverage_pruning=False).fit(itemized())
        confidences = [group.confidence for group in classifier.rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_coverage_pruning_reduces_rules(self):
        data = itemized()
        pruned = IRGClassifier(coverage_pruning=True).fit(data)
        unpruned = IRGClassifier(coverage_pruning=False).fit(data)
        assert len(pruned.rules) <= len(unpruned.rules)

    def test_default_class_set(self):
        classifier = IRGClassifier().fit(itemized())
        assert classifier.default_class in ("class1", "class0")

    def test_deterministic(self):
        data = itemized()
        first = IRGClassifier().fit(data)
        second = IRGClassifier().fit(data)
        assert first.predict(data) == second.predict(data)


class TestPredict:
    def test_unmatched_row_gets_default(self):
        classifier = IRGClassifier().fit(itemized())
        # An empty row matches no rule group (lower bounds are non-empty).
        assert classifier.predict_row(frozenset()) == classifier.default_class

    def test_generalizes_to_fresh_samples(self):
        train_matrix = block_matrix(seed=1, n=60)
        test_matrix = block_matrix(seed=2, n=30)
        discretizer = EntropyMDLDiscretizer().fit(train_matrix)
        classifier = IRGClassifier().fit(discretizer.transform(train_matrix))
        accuracy = classifier.accuracy(discretizer.transform(test_matrix))
        assert accuracy >= 0.8

    def test_lower_bound_matching(self):
        """A sample containing only a group's lower bound must match."""
        data = ItemizedDataset.from_lists(
            [[0, 1, 2], [0, 1, 2], [0, 1, 2], [3], [3], [3]],
            ["a", "a", "a", "b", "b", "b"],
            n_items=4,
        )
        classifier = IRGClassifier(minsup_fraction=0.5, minconf=0.8).fit(data)
        # Upper bound for class a is {0,1,2}; lower bounds are singletons.
        assert classifier.predict_row(frozenset({0})) == "a"
        assert classifier.predict_row(frozenset({3})) == "b"


class TestBudget:
    def test_truncated_mining_still_fits(self):
        from repro.core.enumeration import SearchBudget

        data = itemized()
        classifier = IRGClassifier(
            budget=SearchBudget(max_nodes=50, strict=False)
        ).fit(data)
        # Few (possibly zero) rules, but fit must complete and predict.
        assert classifier.predict_row(frozenset()) is not None

    def test_empty_ruleset_falls_back_to_majority(self):
        data = ItemizedDataset.from_lists(
            [[0], [1], [2]], ["a", "a", "b"], n_items=3
        )
        classifier = IRGClassifier(minsup_fraction=1.0, minconf=1.0).fit(data)
        assert classifier.predict_row(frozenset({2})) in ("a", "b")
