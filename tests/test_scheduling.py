"""Randomized-schedule stress suite for the work-stealing scheduler.

Two layers:

* **Virtual scheduler** (:mod:`scheduling`) — hypothesis draws datasets
  *and* adversarial schedules (dispatch order, quanta, split points,
  kills, advisory races) and asserts the stitched/replayed output is
  byte-identical to the serial miner, with shrinking down to a minimal
  interleaving on failure.  Traces round-trip through the checksummed
  envelope so a failing schedule can be replayed bit-for-bit.
* **End-to-end sweep** — the real process-pool scheduler under
  ``--steal`` for worker counts {1,2,4}, a seeded kill-anywhere ×
  steal-anywhere chaos sweep (donor deaths, thief deaths, plain worker
  deaths at every shard coordinate), and a killed-and-resumed mid-steal
  run; all must serialize the serial miner's exact bytes.

Run the nightly profile for the deep sweep:
``pytest tests/test_scheduling.py --hypothesis-profile=nightly``.
"""

import pytest
from hypothesis import given, strategies as st

from conftest import MINEABLE_SHAPES, random_dataset
from scheduling import (
    MAX_ATTEMPTS,
    Schedule,
    load_trace,
    run_schedule,
    save_trace,
    serialized_store,
)
from strategies import skewed_datasets

from repro import Constraints, Farmer, mine_irgs
from repro.core.enumeration import semantic_counters
from repro.core.parallel import shutdown_workers
from repro.core.serialize import save_rule_groups
from repro.errors import DataError
from repro.testing.chaos import InjectedFault

CONSTRAINTS = Constraints(minsup=1, minconf=0.0)

WORKER_COUNTS = (1, 2, 4)


@pytest.fixture(scope="module", autouse=True)
def _drain_pools():
    yield
    shutdown_workers()


def _serial_bytes(data, path, constraints=CONSTRAINTS):
    result = Farmer(constraints=constraints).mine(data, "C")
    save_rule_groups(path, result.groups, constraints=result.constraints)
    return path.read_bytes(), result


def _result_bytes(result, path):
    save_rule_groups(path, result.groups, constraints=result.constraints)
    return path.read_bytes()


#: Short lists of small ints explore long interleavings because each
#: decision stream cycles independently (see ``scheduling.Schedule``).
schedules = st.builds(
    Schedule,
    picks=st.lists(st.integers(0, 64), max_size=8).map(tuple),
    quanta=st.lists(st.integers(1, 9), max_size=4).map(tuple),
    splits=st.lists(st.integers(0, 8), max_size=4).map(tuple),
    kills=st.lists(st.integers(0, 1), max_size=5).map(tuple),
    advisories=st.lists(st.integers(0, 1), max_size=3).map(tuple),
)


class TestVirtualScheduler:
    """Byte-identity under adversarial schedules, with shrinking."""

    @given(
        seed=st.integers(0, 2**16),
        shape=st.sampled_from((None,) + MINEABLE_SHAPES),
        schedule=schedules,
    )
    def test_any_schedule_matches_serial(
        self, seed, shape, schedule, tmp_path_factory
    ):
        data = random_dataset(seed, shape=shape)
        workdir = tmp_path_factory.mktemp("vsched")
        reference, serial = _serial_bytes(data, workdir / "serial.irgs")
        run = run_schedule(data, "C", CONSTRAINTS, schedule)
        virtual = serialized_store(
            data, "C", CONSTRAINTS, run.store, workdir / "virtual.irgs"
        )
        assert virtual == reference
        # Every node expanded exactly once somewhere, advisory drops and
        # replay rejects partition the serial rejects — so the semantic
        # counters (minus the emission count the harness skips) match.
        virtual_sem = semantic_counters(run.counters)
        serial_sem = semantic_counters(serial.counters)
        virtual_sem.pop("groups_emitted")
        serial_sem.pop("groups_emitted")
        assert virtual_sem == serial_sem

    @given(data=skewed_datasets(), schedule=schedules)
    def test_skewed_workloads_match_serial(
        self, data, schedule, tmp_path_factory
    ):
        workdir = tmp_path_factory.mktemp("vskew")
        reference, _ = _serial_bytes(data, workdir / "serial.irgs")
        run = run_schedule(data, "C", CONSTRAINTS, schedule)
        virtual = serialized_store(
            data, "C", CONSTRAINTS, run.store, workdir / "virtual.irgs"
        )
        assert virtual == reference

    @given(schedule=schedules)
    def test_numpy_engine_steals_identically(
        self, schedule, tmp_path_factory
    ):
        """The frontier walker is engine-generic: the numpy engine must
        survive the same adversarial schedules byte-for-byte."""
        pytest.importorskip("numpy")
        data = random_dataset(5, max_rows=8)
        workdir = tmp_path_factory.mktemp("vnumpy")
        reference, _ = _serial_bytes(data, workdir / "serial.irgs")
        run = run_schedule(data, "C", CONSTRAINTS, schedule, engine="numpy")
        virtual = serialized_store(
            data, "C", CONSTRAINTS, run.store, workdir / "virtual.irgs"
        )
        assert virtual == reference

    def test_trace_round_trip_replays_identically(self, tmp_path):
        """A persisted schedule replays to the same bytes and the same
        decision trace — the trace envelope is the steal wire format."""
        data = random_dataset(3, max_rows=9)
        schedule = Schedule(
            picks=(3, 0, 5), quanta=(2, 7), splits=(1, 0, 4), kills=(0, 1)
        )
        first = run_schedule(data, "C", CONSTRAINTS, schedule)
        save_trace(tmp_path / "trace.ckpt", schedule)
        replayed = run_schedule(
            data, "C", CONSTRAINTS, load_trace(tmp_path / "trace.ckpt")
        )
        assert first.trace == replayed.trace
        assert serialized_store(
            data, "C", CONSTRAINTS, first.store, tmp_path / "a.irgs"
        ) == serialized_store(
            data, "C", CONSTRAINTS, replayed.store, tmp_path / "b.irgs"
        )
        assert first.counters == replayed.counters

    def test_corrupt_trace_rejected(self, tmp_path):
        """The envelope checksum guards replays like checkpoints."""
        path = tmp_path / "trace.ckpt"
        save_trace(path, Schedule(picks=(1,)))
        text = path.read_text()
        tampered = text.replace("[1]", "[2]")
        assert tampered != text
        path.write_text(tampered)
        with pytest.raises(DataError):
            load_trace(path)

    def test_kill_everything_still_terminates(self, tmp_path):
        """An all-kill schedule exhausts attempts and completes."""
        data = random_dataset(11, max_rows=9)
        reference, _ = _serial_bytes(data, tmp_path / "serial.irgs")
        run = run_schedule(
            data, "C", CONSTRAINTS, Schedule(quanta=(1,), kills=(1,))
        )
        assert run.kills > 0
        assert serialized_store(
            data, "C", CONSTRAINTS, run.store, tmp_path / "v.irgs"
        ) == reference

    def test_max_attempts_bounds_each_part(self):
        data = random_dataset(11, max_rows=9)
        run = run_schedule(
            data, "C", CONSTRAINTS, Schedule(quanta=(1,), kills=(1,))
        )
        per_part = {}
        for event in run.trace:
            if event["killed"]:
                per_part[event["part"]] = per_part.get(event["part"], 0) + 1
        assert per_part and all(
            kills <= MAX_ATTEMPTS - 1 for kills in per_part.values()
        )


def _skew_dataset():
    """A deterministic dominant-subtree dataset (the Fig-10 skew)."""
    import random as _random

    rng = _random.Random(11)
    rows, labels = [], []
    for index in range(12):
        rows.append(sorted(rng.sample(range(16), 13)))
        labels.append("C" if index % 4 else "N")
    for index in range(12):
        rows.append(sorted(rng.sample(range(16, 36), rng.randint(2, 3))))
        labels.append("C" if index % 3 else "N")
    from repro.data.dataset import ItemizedDataset

    return ItemizedDataset.from_lists(rows, labels, n_items=36)


class TestEndToEndStealing:
    """The real pool scheduler: bytes pinned against the serial miner."""

    @pytest.mark.parametrize("n_workers", WORKER_COUNTS)
    def test_stealing_is_byte_identical(self, n_workers, tmp_path):
        data = _skew_dataset()
        constraints = Constraints(minsup=3, minconf=0.5)
        reference, serial = _serial_bytes(
            data, tmp_path / "serial.irgs", constraints
        )
        stealing = mine_irgs(
            data, "C", minsup=3, minconf=0.5, n_workers=n_workers, steal=True
        )
        assert _result_bytes(stealing, tmp_path / "steal.irgs") == reference
        assert semantic_counters(stealing.counters) == semantic_counters(
            serial.counters
        )
        static = mine_irgs(
            data, "C", minsup=3, minconf=0.5, n_workers=n_workers
        )
        assert _result_bytes(static, tmp_path / "static.irgs") == reference

    def test_stealing_actually_steals_on_skew(self, tmp_path):
        """The dominant subtree keeps fissioning while the queue drains
        — donations must occur, and with enough workers, splits too."""
        data = _skew_dataset()
        result = Farmer(
            constraints=Constraints(minsup=3, minconf=0.5),
            n_workers=4,
            steal=True,
            steal_quantum=256,
        ).mine(data, "C")
        assert result.parallel.stealing
        assert result.parallel.donations > 0
        assert result.parallel.parts > result.parallel.n_tasks

    def test_kill_anywhere_steal_anywhere_sweep(self, tmp_path, chaos):
        """Seeded sweep: every fault family × every early shard, under
        stealing — donor deaths, thief deaths, plain worker deaths."""
        data = _skew_dataset()
        constraints = Constraints(minsup=3, minconf=0.5)
        reference, serial = _serial_bytes(
            data, tmp_path / "serial.irgs", constraints
        )
        for mode in ("donor-raise", "steal-raise", "raise", "kill"):
            for shard in (0, 1, 2):
                chaos.arm(f"{mode}:shard={shard}:times=1")
                result = mine_irgs(
                    data,
                    "C",
                    minsup=3,
                    minconf=0.5,
                    n_workers=4,
                    steal=True,
                )
                chaos.disarm()
                tag = f"{mode}-{shard}"
                assert (
                    _result_bytes(result, tmp_path / f"{tag}.irgs")
                    == reference
                ), tag
                assert semantic_counters(result.counters) == (
                    semantic_counters(serial.counters)
                ), tag

    @pytest.mark.parametrize("resume_steal", [True, False])
    def test_killed_and_resumed_mid_steal(
        self, tmp_path, chaos, resume_steal
    ):
        """Crash after the first checkpoint of a stealing run; resuming
        with either scheduler reproduces the serial bytes — checkpoints
        are interchangeable because only whole shards are durable."""
        data = _skew_dataset()
        constraints = Constraints(minsup=3, minconf=0.5)
        reference, serial = _serial_bytes(
            data, tmp_path / "serial.irgs", constraints
        )
        ckpt = str(tmp_path / f"midsteal-{int(resume_steal)}.ckpt")
        chaos.arm("ckpt-raise:after=1")
        with pytest.raises(InjectedFault):
            mine_irgs(
                data,
                "C",
                minsup=3,
                minconf=0.5,
                n_workers=4,
                steal=True,
                checkpoint=ckpt,
            )
        chaos.disarm()
        resumed = mine_irgs(
            data,
            "C",
            minsup=3,
            minconf=0.5,
            n_workers=4,
            steal=resume_steal,
            resume=ckpt,
        )
        assert _result_bytes(resumed, tmp_path / "resumed.irgs") == reference
        assert semantic_counters(resumed.counters) == semantic_counters(
            serial.counters
        )
        assert resumed.parallel.resumed_tasks >= 1
