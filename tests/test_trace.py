"""Tests for the enumeration-tree tracer — pinned to the paper's Figure 3 —
and for the per-worker counter merge of the sharded miner."""

import dataclasses

import pytest

from conftest import itemset_to_letters, random_dataset

from repro import Constraints, Farmer, mine_irgs
from repro.core.enumeration import NodeCounters, merge_counters, semantic_counters
from repro.core.farmer import available_engines
from repro.core.trace import TracingFarmer, render_tree

#: Every engine the tracer must normalize identically (numpy rides along
#: whenever NumPy is importable).
TRACE_ENGINES = tuple(sorted(available_engines()))


@pytest.fixture
def full_trace(paper_dataset):
    """Trace with all prunings disabled: the complete Figure 3 tree,
    minus nodes cut by the implicit empty-I(X) rule."""
    miner = TracingFarmer(constraints=Constraints(minsup=1), prunings=())
    miner.mine(paper_dataset, "C")
    return miner.trace_root


@pytest.fixture
def pruned_trace(paper_dataset):
    miner = TracingFarmer(constraints=Constraints(minsup=1))
    miner.mine(paper_dataset, "C")
    return miner.trace_root


class TestFigure3Labels:
    """Node labels of Figure 3, checked on the unpruned traversal."""

    CASES = {
        "12": "al",
        "123": "a",
        "124": "a",
        "125": "l",
        "13": "aco",
        "14": "a",
        "15": "bls",
        "23": "aeh",
        "234": "aeh",
        "24": "aehpr",
        "25": "dl",
        "34": "aeh",
        "45": "f",
        "1234": "a",
    }

    def test_node_labels(self, full_trace):
        for label, letters in self.CASES.items():
            node = full_trace.find(label)
            assert node is not None, label
            assert itemset_to_letters(node.items) == letters, label

    def test_root_is_empty_combination(self, full_trace):
        assert full_trace.rows == ()
        assert full_trace.row_label() == "{}"

    def test_empty_label_nodes_have_no_children(self, full_trace):
        # Node "135" has I(X) = {} in Figure 3: the search never creates
        # it (empty conditional tables are the implicit pruning).
        assert full_trace.find("135") is None

    def test_children_in_ord_order(self, full_trace):
        labels = [child.row_label() for child in full_trace.children]
        assert labels == sorted(labels)

    def test_support_stats(self, full_trace):
        node = full_trace.find("23")
        assert (node.supp, node.supn) == (2, 1)  # aeh covers rows 2,3,4


class TestPrunedTrace:
    def test_example5_node34_pruned(self, pruned_trace):
        """The paper's Example 5: node {3,4} is cut by Pruning 2."""
        node = pruned_trace.find("34")
        assert node is not None
        assert node.outcome == "pruned:identified"
        assert node.children == []

    def test_pruned_tree_is_smaller(self, full_trace, pruned_trace):
        assert pruned_trace.size() < full_trace.size()

    def test_reported_nodes_match_irgs(self, paper_dataset):
        miner = TracingFarmer(constraints=Constraints(minsup=1))
        result = miner.mine(paper_dataset, "C")
        reported = set()

        def collect(node):
            if node.outcome == "reported":
                reported.add(frozenset(node.items))
            for child in node.children:
                collect(child)

        collect(miner.trace_root)
        assert result.upper_antecedents() <= reported


class TestCounterMerge:
    """The sharded miner's merged per-worker counters vs the serial run."""

    def test_merge_counters_is_fieldwise_sum(self):
        parts = [
            NodeCounters(nodes=2, pruned_loose=1, cache_hits=10),
            NodeCounters(nodes=3, pruned_tight=4, candidates_rejected=1),
            NodeCounters(rows_compressed=7, cache_misses=3),
        ]
        merged = merge_counters(parts)
        assert dataclasses.asdict(merged) == {
            "nodes": 5,
            "pruned_loose": 1,
            "pruned_tight": 4,
            "pruned_identified": 0,
            "rows_compressed": 7,
            "groups_emitted": 0,
            "candidates_rejected": 1,
            "cache_hits": 10,
            "cache_misses": 3,
        }

    def test_merged_equal_serial_without_broadcast(self):
        for seed in range(8):
            data = random_dataset(seed, max_rows=11)
            serial = mine_irgs(data, "C", minsup=1)
            parallel = Farmer(
                Constraints(minsup=1), n_workers=2, broadcast_bounds=False
            ).mine(data, "C")
            # Cache telemetry is scoped per run vs per shard task, so only
            # the semantic counters are comparable across execution modes.
            assert semantic_counters(parallel.counters) == semantic_counters(
                serial.counters
            ), seed

    def test_merged_never_exceed_serial_with_broadcast(self):
        # With bounds broadcast on, dropped candidates are counted
        # exactly where the replay would have rejected them, so the
        # merged counters match the serial run field for field — the
        # strongest form of "never exceed".
        for seed in range(8):
            data = random_dataset(seed, max_rows=11)
            serial = semantic_counters(mine_irgs(data, "C", minsup=1).counters)
            parallel = semantic_counters(
                Farmer(
                    Constraints(minsup=1), n_workers=2, broadcast_bounds=True
                )
                .mine(data, "C")
                .counters
            )
            for name, serial_value in serial.items():
                assert parallel[name] <= serial_value, (seed, name)
            assert parallel == serial, seed

    def test_tracer_always_runs_serial(self, paper_dataset):
        # The tracer hooks the in-process recursion, so n_workers is
        # accepted but the traversal stays serial and fully traced.
        miner = TracingFarmer(constraints=Constraints(minsup=1), n_workers=4)
        result = miner.mine(paper_dataset, "C")
        assert result.parallel is None
        assert miner.trace_root is not None
        assert miner.trace_root.size() == result.counters.nodes


class TestEngineAgreement:
    """The trace is an engine-independent view of the search.

    The kernel and numpy engines keep conditional tables support-sorted
    while the reference engine keeps insertion order; the tracer must
    normalize that away so Figure 3 labels (and the ``reported``
    detection, which compares against store entries in engine order)
    agree byte for byte across every registered engine.
    """

    @staticmethod
    def _flatten(node, out):
        out.append((node.row_label(), node.items, node.supp, node.supn, node.outcome))
        for child in node.children:
            TestEngineAgreement._flatten(child, out)
        return out

    @pytest.mark.parametrize("prunings", [(), ("p1", "p2", "p3")])
    def test_engine_traces_identical(self, paper_dataset, prunings):
        traces = {}
        for engine in TRACE_ENGINES:
            miner = TracingFarmer(
                constraints=Constraints(minsup=1),
                prunings=prunings,
                engine=engine,
            )
            miner.mine(paper_dataset, "C")
            traces[engine] = self._flatten(miner.trace_root, [])
        for engine in TRACE_ENGINES:
            assert traces[engine] == traces["kernel"], engine

    def test_items_sorted_under_kernel_engine(self, paper_dataset):
        miner = TracingFarmer(constraints=Constraints(minsup=1))
        miner.mine(paper_dataset, "C")
        for label, items, _, _, _ in self._flatten(miner.trace_root, []):
            assert items == tuple(sorted(items)), label

    def test_raw_render_engine_independent(self, paper_dataset):
        rendered = {}
        for engine in TRACE_ENGINES:
            miner = TracingFarmer(constraints=Constraints(minsup=1), engine=engine)
            miner.mine(paper_dataset, "C")
            rendered[engine] = render_tree(miner.trace_root)
        for engine in TRACE_ENGINES:
            assert rendered[engine] == rendered["kernel"], engine


class TestRenderTree:
    def test_render_contains_labels(self, full_trace, paper_dataset):
        text = render_tree(full_trace, paper_dataset)
        assert "12 -> I = {a, l}" in text
        assert "23 -> I = {a, e, h}" in text

    def test_max_depth(self, full_trace):
        shallow = render_tree(full_trace, max_depth=1)
        assert "123" not in shallow.replace("{}", "")

    def test_pruning_markers_rendered(self, pruned_trace, paper_dataset):
        text = render_tree(pruned_trace, paper_dataset)
        assert "[pruned:identified]" in text
