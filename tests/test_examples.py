"""Smoke tests: every example script runs end-to-end (tiny settings)."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *arguments: str) -> str:
    process = subprocess.run(
        [sys.executable, str(EXAMPLES / name), *arguments],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert process.returncode == 0, process.stderr[-2000:]
    return process.stdout


class TestExamples:
    def test_quickstart(self):
        out = run_example("quickstart.py")
        assert "interesting rule groups" in out
        assert "upper" in out and "lower" in out

    def test_leukemia_rule_discovery(self):
        out = run_example("leukemia_rule_discovery.py", "--scale", "0.02")
        assert "minsup sweep" in out
        assert "minconf sweep" in out
        assert "chi-square pruning" in out

    def test_classifier_comparison(self):
        out = run_example(
            "classifier_comparison.py", "--datasets", "CT", "--scale", "0.02"
        )
        assert "IRG classifier" in out
        assert "linear SVM" in out

    def test_gene_network_analysis(self):
        out = run_example("gene_network_analysis.py", "--scale", "0.02")
        assert "gene network" in out
        assert "modules" in out

    @pytest.mark.parametrize("artifact", ["table1", "fig10"])
    def test_reproduce_paper_quick(self, artifact):
        out = run_example(
            "reproduce_paper.py", "--quick", "--artifacts", artifact,
            "--datasets", "CT",
        )
        assert "total:" in out

    def test_reproduce_paper_charts(self):
        out = run_example(
            "reproduce_paper.py",
            "--quick",
            "--artifacts",
            "fig10",
            "--datasets",
            "CT",
            "--charts",
        )
        assert "log-scale" in out
