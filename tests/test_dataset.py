"""Unit tests for ItemizedDataset."""

import pytest

from repro.data.dataset import ItemizedDataset
from repro.errors import DataError


def small():
    return ItemizedDataset.from_lists(
        [[0, 1], [1, 2], [2]],
        ["x", "y", "x"],
        n_items=3,
        item_names=["i0", "i1", "i2"],
        name="small",
    )


class TestConstruction:
    def test_from_lists_infers_vocabulary(self):
        data = ItemizedDataset.from_lists([[0, 5]], ["x"])
        assert data.n_items == 6

    def test_from_lists_empty(self):
        data = ItemizedDataset.from_lists([], [])
        assert data.n_rows == 0
        assert data.n_items == 0

    def test_label_length_mismatch(self):
        with pytest.raises(DataError):
            ItemizedDataset.from_lists([[0]], ["x", "y"], n_items=1)

    def test_item_out_of_vocabulary(self):
        with pytest.raises(DataError):
            ItemizedDataset.from_lists([[7]], ["x"], n_items=3)

    def test_item_names_length_mismatch(self):
        with pytest.raises(DataError):
            ItemizedDataset.from_lists(
                [[0]], ["x"], n_items=2, item_names=["only-one"]
            )


class TestQueries:
    def test_class_labels_order(self):
        assert small().class_labels == ("x", "y")

    def test_class_count(self):
        data = small()
        assert data.class_count("x") == 2
        assert data.class_count("y") == 1
        assert data.class_count("zzz") == 0

    def test_item_name_fallback(self):
        data = ItemizedDataset.from_lists([[0]], ["x"], n_items=1)
        assert data.item_name(0) == "item0"
        assert small().item_name(2) == "i2"

    def test_format_itemset_sorted(self):
        assert small().format_itemset([2, 0]) == "{i0, i2}"

    def test_max_row_length(self):
        assert small().max_row_length() == 2

    def test_density(self):
        # 5 item occurrences over 3 rows x 3 items.
        assert small().density() == pytest.approx(5 / 9)

    def test_summary_fields(self):
        summary = small().summary()
        assert summary["n_rows"] == 3
        assert summary["class_counts"] == {"x": 2, "y": 1}


class TestTransforms:
    def test_select_rows(self):
        subset = small().select_rows([2, 0])
        assert subset.rows == (frozenset({2}), frozenset({0, 1}))
        assert subset.labels == ("x", "x")

    def test_select_rows_out_of_range(self):
        with pytest.raises(DataError):
            small().select_rows([9])

    def test_replicate(self):
        doubled = small().replicate(2)
        assert doubled.n_rows == 6
        assert doubled.labels == ("x", "y", "x") * 2
        assert doubled.name == "smallx2"

    def test_replicate_invalid(self):
        with pytest.raises(DataError):
            small().replicate(0)

    def test_binarized_labels(self):
        assert small().binarized_labels("x") == (True, False, True)

    def test_binarized_unknown_label(self):
        with pytest.raises(DataError):
            small().binarized_labels("nope")
