"""Unit tests for the Pegasos linear SVM."""

import numpy as np
import pytest

from repro.classify.svm import LinearSVM
from repro.data.matrix import GeneExpressionMatrix
from repro.errors import DataError


def linearly_separable(seed=0, n=60, genes=10, gap=4.0):
    rng = np.random.default_rng(seed)
    half = n // 2
    values = rng.normal(size=(n, genes))
    values[:half, 0] += gap  # class 't' over-expresses gene 0
    labels = ["t"] * half + ["n"] * (n - half)
    return GeneExpressionMatrix.from_arrays(values, labels)


class TestFitPredict:
    def test_separable_data(self):
        matrix = linearly_separable()
        svm = LinearSVM(seed=1).fit(matrix)
        assert svm.accuracy(matrix) >= 0.95

    def test_generalization(self):
        train = linearly_separable(seed=1)
        test = linearly_separable(seed=2)
        svm = LinearSVM(seed=0).fit(train)
        assert svm.accuracy(test) >= 0.9

    def test_deterministic(self):
        matrix = linearly_separable()
        first = LinearSVM(seed=3).fit(matrix).predict(matrix)
        second = LinearSVM(seed=3).fit(matrix).predict(matrix)
        assert first == second

    def test_bias_handles_offset_classes(self):
        # Both classes positive-mean: bias must absorb the offset.
        rng = np.random.default_rng(5)
        values = rng.normal(10.0, 1.0, size=(40, 3))
        values[:20, 1] += 5.0
        labels = ["t"] * 20 + ["n"] * 20
        matrix = GeneExpressionMatrix.from_arrays(values, labels)
        assert LinearSVM(seed=0).fit(matrix).accuracy(matrix) >= 0.9

    def test_interval_signal_is_hard(self):
        # Mid-band membership is not linearly separable: the SVM should
        # do much worse than on the shifted task (motivates the paper's
        # SVM failures; the rule classifiers read this pattern fine).
        rng = np.random.default_rng(7)
        n = 80
        inside = rng.normal(0.0, 0.3, size=(n // 2, 1))
        sign = np.where(rng.random(n // 2) < 0.5, 1.0, -1.0)
        outside = (sign * rng.normal(4.0, 0.3, size=n // 2))[:, None]
        values = np.vstack([inside, outside])
        labels = ["t"] * (n // 2) + ["n"] * (n // 2)
        matrix = GeneExpressionMatrix.from_arrays(values, labels)
        # The best linear threshold only gets the inside class plus one
        # tail right: ~75% (sampling jitter allowed), far below the ~100%
        # this signal gives a discretized rule.
        assert LinearSVM(seed=0).fit(matrix).accuracy(matrix) <= 0.82


class TestValidation:
    def test_binary_only(self):
        matrix = GeneExpressionMatrix.from_arrays(
            [[0.0], [1.0], [2.0]], ["a", "b", "c"]
        )
        with pytest.raises(DataError):
            LinearSVM().fit(matrix)

    def test_predict_before_fit(self):
        with pytest.raises(DataError):
            LinearSVM().predict(linearly_separable())

    def test_gene_count_mismatch(self):
        svm = LinearSVM().fit(linearly_separable(genes=5))
        with pytest.raises(DataError):
            svm.predict(linearly_separable(genes=7))

    def test_parameter_validation(self):
        with pytest.raises(DataError):
            LinearSVM(regularization=0.0)
        with pytest.raises(DataError):
            LinearSVM(epochs=0)


class TestDecisionFunction:
    def test_signs_match_predictions(self):
        matrix = linearly_separable()
        svm = LinearSVM(seed=2).fit(matrix)
        scores = svm.decision_function(matrix)
        predictions = svm.predict(matrix)
        for score, label in zip(scores, predictions):
            assert (score >= 0) == (label == "t")
