"""Property-based tests (hypothesis) for the core invariants."""

from itertools import combinations

from hypothesis import given, settings, strategies as st

from repro import Constraints, mine_irgs
from repro.baselines import (
    all_closed_itemsets,
    interesting_rule_groups,
    mine_closed_carpenter,
    mine_closed_charm,
)
from repro.core import bitset, closure, measures
from repro.core.minelb import mine_lower_bounds
from repro.core.rulegroup import count_covered_subsets
from repro.data.dataset import ItemizedDataset

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

# The dataset/contingency/index-set generators are shared with the
# conformance and scheduling suites via the strategies module.
from strategies import contingency, datasets, index_sets  # noqa: E402


# ---------------------------------------------------------------------------
# Bitsets
# ---------------------------------------------------------------------------


class TestBitsetProperties:
    @given(index_sets)
    def test_round_trip(self, indices):
        assert set(bitset.to_indices(bitset.from_indices(indices))) == set(indices)

    @given(index_sets, index_sets)
    def test_subset_matches_set_semantics(self, left, right):
        left_mask = bitset.from_indices(left)
        right_mask = bitset.from_indices(right)
        assert bitset.is_subset(left_mask, right_mask) == (left <= right)
        assert bitset.bit_count(left_mask & right_mask) == len(left & right)

    @given(index_sets)
    def test_bit_count(self, indices):
        assert bitset.bit_count(bitset.from_indices(indices)) == len(indices)


# ---------------------------------------------------------------------------
# Closure operators
# ---------------------------------------------------------------------------


class TestClosureProperties:
    @given(datasets(), index_sets)
    @settings(max_examples=60)
    def test_itemset_closure_laws(self, data, raw_items):
        items = frozenset(i for i in raw_items if i < data.n_items)
        closed = closure.close_itemset(data, items)
        # Extensive when the itemset has support; idempotent always.
        if closure.rows_of(data, items):
            assert items <= closed
        assert closure.close_itemset(data, closed) == closed

    @given(datasets())
    @settings(max_examples=60)
    def test_galois_antitone(self, data):
        # More rows -> fewer common items.
        full = closure.items_of(data, range(data.n_rows))
        for row in range(data.n_rows):
            assert full <= closure.items_of(data, [row])


# ---------------------------------------------------------------------------
# Measures
# ---------------------------------------------------------------------------


class TestMeasureProperties:
    @given(contingency())
    def test_chi_square_nonnegative(self, quad):
        assert measures.chi_square(*quad) >= 0.0

    @given(contingency())
    def test_chi_bound_dominates_pointwise(self, quad):
        x, y, n, m = quad
        bound = measures.chi_square_upper_bound(x, y, n, m)
        assert bound >= measures.chi_square(x, y, n, m) - 1e-9

    @given(contingency())
    def test_correlation_chi_identity(self, quad):
        x, y, n, m = quad
        phi = measures.correlation(x, y, n, m)
        chi = measures.chi_square(x, y, n, m)
        assert abs(phi * phi * n - chi) < 1e-6

    @given(contingency())
    def test_entropy_and_gini_gain_bounds(self, quad):
        assert -1e-9 <= measures.entropy_gain(*quad) <= 1.0 + 1e-9
        assert -1e-9 <= measures.gini_gain(*quad) <= 0.5 + 1e-9


# ---------------------------------------------------------------------------
# FARMER vs oracle
# ---------------------------------------------------------------------------


class TestFarmerProperties:
    @given(
        datasets(),
        st.integers(min_value=1, max_value=3),
        st.sampled_from([0.0, 0.5, 0.8]),
    )
    @settings(max_examples=50, deadline=None)
    def test_matches_oracle(self, data, minsup, minconf):
        oracle = interesting_rule_groups(
            data, "C", Constraints(minsup=minsup, minconf=minconf)
        )
        result = mine_irgs(data, "C", minsup=minsup, minconf=minconf)
        assert result.upper_antecedents() == {g.upper for g in oracle}

    @given(datasets())
    @settings(max_examples=40, deadline=None)
    def test_prunings_are_pure_optimizations(self, data):
        reference = mine_irgs(data, "C", minsup=1, minconf=0.5)
        stripped = mine_irgs(data, "C", minsup=1, minconf=0.5, prunings=())
        assert stripped.upper_antecedents() == reference.upper_antecedents()

    @given(datasets())
    @settings(max_examples=40, deadline=None)
    def test_group_invariants(self, data):
        result = mine_irgs(data, "C", minsup=1)
        for group in result.groups:
            assert group.upper
            assert closure.rows_of(data, group.upper) == group.rows
            assert closure.close_itemset(data, group.upper) == group.upper
            assert 0 < group.antecedent_support <= data.n_rows


# ---------------------------------------------------------------------------
# Closed miners
# ---------------------------------------------------------------------------


class TestClosedMinerProperties:
    @given(datasets(), st.integers(min_value=1, max_value=3))
    @settings(max_examples=40, deadline=None)
    def test_charm_equals_carpenter_equals_oracle(self, data, minsup):
        expected = all_closed_itemsets(data, minsup=minsup)
        charm = {c.items for c in mine_closed_charm(data, minsup=minsup)}
        carpenter = {c.items for c in mine_closed_carpenter(data, minsup=minsup)}
        assert charm == expected
        assert carpenter == expected


# ---------------------------------------------------------------------------
# MineLB
# ---------------------------------------------------------------------------


class TestMineLBProperties:
    @given(
        st.integers(min_value=1, max_value=6),
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=5), max_size=5),
            max_size=5,
        ),
    )
    @settings(max_examples=80)
    def test_bounds_are_minimal_avoiders(self, size, outside):
        upper = frozenset(range(size))
        outside = [o & upper for o in outside if (o & upper) != upper]
        bounds = mine_lower_bounds(upper, outside)
        for bound in bounds:
            assert bound <= upper
            # Avoids every outside set...
            if outside:
                assert not any(bound <= o for o in outside)
                # ...minimally: every proper subset is covered.
                for item in bound:
                    smaller = bound - {item}
                    if smaller:
                        assert any(smaller <= o for o in outside)

    @given(
        st.integers(min_value=1, max_value=6),
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=5), max_size=5),
            max_size=5,
        ),
    )
    @settings(max_examples=80)
    def test_antichain(self, size, outside):
        upper = frozenset(range(size))
        outside = [o & upper for o in outside if (o & upper) != upper]
        bounds = mine_lower_bounds(upper, outside)
        for left in bounds:
            for right in bounds:
                if left is not right:
                    assert not left <= right


# ---------------------------------------------------------------------------
# Rule group member counting
# ---------------------------------------------------------------------------


class TestMemberCountProperties:
    @given(
        st.integers(min_value=1, max_value=6),
        st.lists(
            st.frozensets(st.integers(min_value=0, max_value=5), min_size=1, max_size=4),
            min_size=1,
            max_size=4,
        ),
    )
    @settings(max_examples=80)
    def test_inclusion_exclusion_matches_enumeration(self, size, raw_bounds):
        upper = frozenset(range(size))
        bounds = tuple({bound & upper or frozenset({0}) for bound in raw_bounds})
        expected = 0
        items = sorted(upper)
        for k in range(len(items) + 1):
            for subset in combinations(items, k):
                candidate = frozenset(subset)
                if any(bound <= candidate for bound in bounds):
                    expected += 1
        assert count_covered_subsets(upper, bounds) == expected
