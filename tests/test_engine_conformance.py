"""Cross-engine conformance suite (machinery in ``engine_conformance``).

Every engine in :data:`repro.core.farmer.ENGINES` other than ``kernel``
is differentially mined against the kernel baseline over the shared
constraint grid, every pruning combination, every degenerate dataset
shape, a sharded run, and a killed-then-resumed run — in all cases the
serialized ``.irgs`` bytes must match exactly.  A set of literal sha256
pins on the paper's Figure 1(a) dataset anchors the whole family to
fixed bytes, so a drift that somehow hit *all* engines at once still
fails loudly.

Registering a new engine extends this suite automatically — the
parametrization reads :func:`engine_conformance.engines_under_test`, so
no test code changes are needed (see ``engine_conformance`` for the
``FARMER_CONFORMANCE_ENGINES`` filter CI legs can apply).
"""

import hashlib
from pathlib import Path

import pytest
from hypothesis import given

from conftest import DEGENERATE_SHAPES, random_dataset
from strategies import degenerate_datasets, skewed_datasets
from engine_conformance import (
    CONSTRAINT_GRID,
    PRUNING_COMBOS,
    assert_serial_conformant,
    engines_under_test,
    irgs_bytes,
)

from repro import mine_irgs
from repro.core.enumeration import semantic_counters
from repro.core.parallel import shutdown_workers
from repro.errors import DataError, UsageError
from repro.testing.chaos import InjectedFault

ENGINES = engines_under_test()


@pytest.fixture(scope="module", autouse=True)
def _drain_pools():
    yield
    shutdown_workers()


def test_unknown_engine_rejected():
    with pytest.raises(UsageError, match="unknown engine"):
        mine_irgs(random_dataset(0), "C", engine="warp")


def test_engines_available():
    """The conformance sweep is not vacuously green: unless CI filtered
    the engine set down on purpose, at least ``reference`` must run."""
    import os

    from engine_conformance import ENGINES_ENV

    if os.environ.get(ENGINES_ENV):
        pytest.skip(f"engine set restricted via {ENGINES_ENV}")
    assert "reference" in ENGINES


@pytest.mark.parametrize("engine", ENGINES)
class TestEngineConformance:
    """Byte-identity of each engine against the kernel baseline."""

    @pytest.mark.parametrize("params", CONSTRAINT_GRID, ids=str)
    def test_constraint_grid(self, engine, params, tmp_path):
        for seed in range(8):
            data = random_dataset(seed)
            assert_serial_conformant(
                data, engine, tmp_path, f"grid-{seed}", **params
            )

    @pytest.mark.parametrize("prunings", PRUNING_COMBOS, ids=str)
    def test_pruning_combos(self, engine, prunings, paper_dataset, tmp_path):
        assert_serial_conformant(
            paper_dataset,
            engine,
            tmp_path,
            "prune",
            minsup=2,
            prunings=prunings,
        )

    @pytest.mark.parametrize("shape", DEGENERATE_SHAPES)
    def test_degenerate_shapes(self, engine, shape, tmp_path):
        for seed in range(4):
            data = random_dataset(seed, shape=shape)
            if not any(label == "C" for label in data.labels):
                # No-consequent shapes pin the error path instead: every
                # engine must reject them the same way.
                with pytest.raises(DataError):
                    mine_irgs(data, "C", engine=engine)
                continue
            assert_serial_conformant(
                data, engine, tmp_path, f"{shape}-{seed}"
            )

    def test_sharded_matches_serial_kernel(self, engine, tmp_path):
        for seed in range(4):
            data = random_dataset(seed, max_rows=8)
            serial = mine_irgs(data, "C", minsup=1, engine="kernel")
            sharded = mine_irgs(
                data, "C", minsup=1, n_workers=2, engine=engine
            )
            assert irgs_bytes(sharded, tmp_path, f"s-{seed}") == irgs_bytes(
                serial, tmp_path, f"k-{seed}"
            ), (engine, seed)
            assert semantic_counters(sharded.counters) == semantic_counters(
                serial.counters
            ), (engine, seed)

    def test_killed_and_resumed_matches_serial_kernel(
        self, engine, paper_dataset, tmp_path, chaos
    ):
        serial = mine_irgs(paper_dataset, "C", minsup=1, engine="kernel")
        reference = irgs_bytes(serial, tmp_path, "serial-kernel")
        ckpt = str(tmp_path / f"crash-{engine}.ckpt")
        chaos.arm("ckpt-raise:after=1")
        with pytest.raises(InjectedFault):
            mine_irgs(
                paper_dataset,
                "C",
                minsup=1,
                n_workers=2,
                engine=engine,
                checkpoint=ckpt,
            )
        chaos.disarm()
        resumed = mine_irgs(
            paper_dataset,
            "C",
            minsup=1,
            n_workers=2,
            engine=engine,
            resume=ckpt,
        )
        assert irgs_bytes(resumed, tmp_path, "resumed") == reference, engine
        assert semantic_counters(resumed.counters) == semantic_counters(
            serial.counters
        ), engine
        assert resumed.parallel.resumed_tasks >= 1


@pytest.mark.parametrize("engine", ENGINES)
class TestEngineConformanceProperties:
    """Hypothesis sweep over the shared dataset strategies.

    The parametrized grids above pin fixed seeds; these draws walk the
    degenerate families (word-tail 63/64/65, identical rows, shared
    items) and the Fig-10 skew shape under shrinking, so a conformance
    break reports a minimal dataset.  The nightly CI profile raises
    ``max_examples`` (see ``conftest.py``).
    """

    @given(data=degenerate_datasets())
    def test_degenerate_families_conform(self, engine, data, tmp_path_factory):
        # tmp_path is function-scoped (hypothesis forbids it under
        # @given); mktemp hands each example a fresh directory instead.
        workdir = tmp_path_factory.mktemp("hyp-degen")
        assert_serial_conformant(data, engine, workdir, "hyp-degen")

    @given(data=skewed_datasets())
    def test_skewed_supports_conform(self, engine, data, tmp_path_factory):
        workdir = tmp_path_factory.mktemp("hyp-skew")
        assert_serial_conformant(
            data, engine, workdir, "hyp-skew", minsup=2
        )


# Literal pins on the paper's Figure 1(a) dataset: the bytes the whole
# engine family must serialize, fixed as constants so a drift hitting
# every engine at once (e.g. a serializer change) still fails.
PINNED_HASHES = {
    (1, 0.0): "cb81a0bcb563ea42dd160c77f46e87b1c2029c46acf41894f7de1ab556899be3",
    (1, 0.6): "a1d3770ccd5ae17fadb6a47744ae10c1a133812df8350d8b50d0eabd6f2de694",
    (2, 0.0): "74a4d08f024697064458b434bb8e7e3acdcea5d6197ec24f8387d28313078ce5",
    (2, 0.6): "3f24c2b80308caf2f8efbea8ca385063ef324af47afefb4983609b668b8a6075",
}


def test_every_engine_documented():
    """Doc-vs-code gate: each registered engine name is documented.

    The same pattern as the observability catalogue gate — every name in
    :data:`repro.core.farmer.ENGINES` must appear backticked in the
    performance and architecture docs, so registering an engine without
    documenting it fails here.
    """
    from repro.core.farmer import ENGINES as REGISTERED

    docs_dir = Path(__file__).resolve().parent.parent / "docs"
    for doc_name in ("performance.md", "architecture.md"):
        text = (docs_dir / doc_name).read_text()
        missing = sorted(
            name
            for name in REGISTERED
            if f"`{name}`" not in text and f'engine="{name}"' not in text
        )
        assert not missing, f"undocumented engines in {doc_name}: {missing}"


class TestPinnedHashes:
    @pytest.mark.parametrize("engine", ["kernel", *ENGINES])
    @pytest.mark.parametrize(
        "minsup,minconf", sorted(PINNED_HASHES), ids=str
    )
    def test_paper_dataset_bytes_are_pinned(
        self, engine, minsup, minconf, paper_dataset, tmp_path
    ):
        result = mine_irgs(
            paper_dataset, "C", minsup=minsup, minconf=minconf, engine=engine
        )
        digest = hashlib.sha256(
            irgs_bytes(result, tmp_path, "pin")
        ).hexdigest()
        assert digest == PINNED_HASHES[(minsup, minconf)], (
            engine,
            minsup,
            minconf,
        )
