"""Unit tests for the decision-tree baseline."""

import numpy as np
import pytest

from repro.classify.tree import DecisionTree
from repro.data.matrix import GeneExpressionMatrix
from repro.errors import DataError


def threshold_task(seed=0, n=60):
    """Class separated by gene 0 crossing 0; gene 1 is noise."""
    rng = np.random.default_rng(seed)
    values = rng.normal(size=(n, 2))
    labels = ["hi" if v > 0 else "lo" for v in values[:, 0]]
    return GeneExpressionMatrix.from_arrays(values, labels)


def interval_task(seed=1, n=80):
    """Class = gene 0 in the middle band (needs two splits)."""
    rng = np.random.default_rng(seed)
    values = rng.uniform(-3, 3, size=(n, 1))
    labels = ["in" if abs(v) < 1.0 else "out" for v in values[:, 0]]
    return GeneExpressionMatrix.from_arrays(values, labels)


class TestFitPredict:
    def test_threshold_signal(self):
        matrix = threshold_task()
        tree = DecisionTree().fit(matrix)
        assert tree.accuracy(matrix) >= 0.95

    def test_interval_signal(self):
        # Trees (like rules, unlike a linear SVM) read interval signals.
        matrix = interval_task()
        tree = DecisionTree(max_depth=3).fit(matrix)
        assert tree.accuracy(matrix) >= 0.9

    def test_generalization(self):
        tree = DecisionTree().fit(threshold_task(seed=2))
        assert tree.accuracy(threshold_task(seed=3)) >= 0.9

    def test_pure_node_stops(self):
        values = [[0.0], [0.1], [0.2]]
        matrix = GeneExpressionMatrix.from_arrays(values, ["a", "a", "a"])
        tree = DecisionTree().fit(matrix)
        assert tree.depth() == 0
        assert tree.predict(matrix) == ["a", "a", "a"]

    def test_max_depth_respected(self):
        matrix = interval_task()
        tree = DecisionTree(max_depth=2).fit(matrix)
        assert tree.depth() <= 2

    def test_min_samples_leaf(self):
        matrix = threshold_task(n=20)
        tree = DecisionTree(min_samples_leaf=8).fit(matrix)
        # No split may isolate fewer than 8 samples; with n=20 the tree
        # is at most depth 1.
        assert tree.depth() <= 1

    def test_deterministic(self):
        matrix = threshold_task()
        first = DecisionTree().fit(matrix).predict(matrix)
        second = DecisionTree().fit(matrix).predict(matrix)
        assert first == second

    def test_constant_features_yield_leaf(self):
        values = [[1.0], [1.0], [1.0], [1.0]]
        matrix = GeneExpressionMatrix.from_arrays(
            values, ["a", "b", "a", "b"]
        )
        tree = DecisionTree().fit(matrix)
        assert tree.depth() == 0

    def test_n_leaves(self):
        tree = DecisionTree(max_depth=3).fit(interval_task())
        assert tree.n_leaves() == tree.depth() + 1 or tree.n_leaves() >= 2


class TestValidation:
    def test_empty_matrix(self):
        matrix = GeneExpressionMatrix.from_arrays(
            np.empty((0, 2)), []
        )
        with pytest.raises(DataError):
            DecisionTree().fit(matrix)

    def test_predict_before_fit(self):
        with pytest.raises(DataError):
            DecisionTree().predict(threshold_task())

    def test_gene_mismatch(self):
        tree = DecisionTree().fit(threshold_task())
        other = GeneExpressionMatrix.from_arrays([[1.0]], ["hi"])
        with pytest.raises(DataError):
            tree.predict(other)

    def test_parameter_validation(self):
        with pytest.raises(DataError):
            DecisionTree(max_depth=0)
        with pytest.raises(DataError):
            DecisionTree(min_samples_leaf=0)
