"""Unit tests for the CBA classifier (rule generation + CBA-CB M1)."""

import pytest

from repro.classify.cba import CBAClassifier
from repro.data.dataset import ItemizedDataset


def conjunctive_data():
    """Class 'a' iff items {0,1} together; singletons are ambiguous."""
    rows = [
        [0, 1, 4],
        [0, 1, 5],
        [0, 1],
        [0, 2],
        [1, 3],
        [2, 3],
    ]
    labels = ["a", "a", "a", "b", "b", "b"]
    return ItemizedDataset.from_lists(rows, labels, n_items=6)


class TestRuleSources:
    @pytest.mark.parametrize("source", ["farmer", "apriori"])
    def test_fits_and_classifies(self, source):
        data = conjunctive_data()
        classifier = CBAClassifier(
            minsup_fraction=0.5, minconf=0.8, rule_source=source
        ).fit(data)
        assert classifier.accuracy(data) >= 5 / 6

    def test_sources_agree_on_predictions(self):
        data = conjunctive_data()
        farmer_clf = CBAClassifier(
            minsup_fraction=0.5, minconf=0.8, rule_source="farmer"
        ).fit(data)
        apriori_clf = CBAClassifier(
            minsup_fraction=0.5, minconf=0.8, rule_source="apriori",
            max_length=None,
        ).fit(data)
        assert farmer_clf.predict(data) == apriori_clf.predict(data)

    def test_unknown_source_rejected(self):
        with pytest.raises(ValueError):
            CBAClassifier(rule_source="magic")


class TestM1Builder:
    def test_rules_in_precedence_order(self):
        classifier = CBAClassifier(minsup_fraction=0.3, minconf=0.5).fit(
            conjunctive_data()
        )
        keys = [
            (-rule.confidence, -rule.support, len(rule.antecedent))
            for rule in classifier.rules
        ]
        assert keys == sorted(keys)

    def test_default_class_set(self):
        classifier = CBAClassifier().fit(conjunctive_data())
        assert classifier.default_class in ("a", "b")

    def test_no_rules_falls_back_to_majority(self):
        data = ItemizedDataset.from_lists(
            [[0], [1], [2], [3]], ["a", "b", "a", "b"], n_items=4
        )
        classifier = CBAClassifier(minsup_fraction=1.0, minconf=1.0).fit(data)
        assert classifier.rules == []
        assert classifier.predict_row(frozenset({0})) == classifier.default_class

    def test_total_error_cut(self):
        """The kept prefix never has more training errors than any other
        prefix (M1's minimum-total-error guarantee)."""
        data = conjunctive_data()
        classifier = CBAClassifier(minsup_fraction=0.3, minconf=0.5).fit(data)
        kept_errors = sum(
            1
            for row, label in zip(data.rows, data.labels)
            if classifier.predict_row(row) != label
        )
        majority_errors = min(
            sum(1 for label in data.labels if label != candidate)
            for candidate in data.class_labels
        )
        assert kept_errors <= majority_errors

    def test_first_matching_rule_wins(self):
        data = conjunctive_data()
        classifier = CBAClassifier(minsup_fraction=0.3, minconf=0.5).fit(data)
        if classifier.rules:
            first = classifier.rules[0]
            sample = set(first.antecedent)
            assert classifier.predict_row(frozenset(sample)) == first.consequent

    def test_deterministic(self):
        data = conjunctive_data()
        first = CBAClassifier().fit(data)
        second = CBAClassifier().fit(data)
        assert first.predict(data) == second.predict(data)
