"""Tests for the whole-program lint phase: FRM009/FRM010/FRM011.

The positive and negative cases live as tiny committed packages under
``tests/lint_fixtures/`` (see its README).  Each test copies a fixture
to ``tmp_path`` before linting: inside the repository tree the fixtures
sit under ``tests/`` and are therefore filtered as test modules, which
``test_fixtures_silent_in_repo_tree`` pins explicitly.
"""

import json
import shutil
from pathlib import Path

import pytest

from repro.analysis import Engine
from repro.analysis.cache import LintCache
from repro.analysis.engine import iter_python_files
from repro.analysis.reporters import render_json, render_sarif
from repro.analysis.rules.conformance import EngineConformanceRule
from repro.analysis.rules.purity import HotPathPurityRule
from repro.analysis.rules.taint import NondeterminismTaintRule
from repro.cli import main

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def copy_fixture(name, tmp_path):
    """Copy a fixture package out of the test tree and return its root."""
    dest = tmp_path / name
    shutil.copytree(FIXTURES / name, dest)
    return dest


def lint_fixture(name, tmp_path, rules=None):
    """Lint a copied fixture with the given rules (default: all)."""
    root = copy_fixture(name, tmp_path)
    engine = Engine(rules=rules, root=root)
    return engine.lint_paths(sorted(iter_python_files([root])))


class TestTaintRule:
    def test_flow_fixture_yields_witness_paths(self, tmp_path):
        result = lint_fixture(
            "taint_flow", tmp_path, rules=[NondeterminismTaintRule()]
        )
        assert len(result.findings) == 2
        by_sink = {f.message.split(";")[0] for f in result.findings}
        assert any("save_rule_groups" in m for m in by_sink)
        assert any("TaskRecord" in m for m in by_sink)
        for finding in result.findings:
            assert finding.rule_id == "FRM009"
            # Findings anchor at the *source* expression, not the sink.
            assert finding.path == "repro/core/helpers.py"
            assert "witness:" in finding.message
            assert "time.monotonic()" in finding.message
            # The witness walks through the intermediate helper call.
            assert "core/pipeline.py::" in finding.message
            assert " -> " in finding.message

    def test_clean_fixture_is_silent(self, tmp_path):
        result = lint_fixture(
            "taint_clean", tmp_path, rules=[NondeterminismTaintRule()]
        )
        assert result.findings == []
        assert result.n_suppressed == 0

    def test_suppression_comment_silences_project_finding(self, tmp_path):
        """``# farmer-lint: disable=FRM009`` works on project-phase rules."""
        result = lint_fixture(
            "taint_suppressed", tmp_path, rules=[NondeterminismTaintRule()]
        )
        assert result.findings == []
        assert result.n_suppressed == 1

    def test_field_confined_taint_not_reported(self, tmp_path):
        """A tainted constructor field that never reaches the sink is clean.

        ``taint_flow``'s ``project_clean`` stores a clock in
        ``Envelope.elapsed`` but only ``Envelope.groups`` flows onward;
        only the two genuine flows may be reported.
        """
        result = lint_fixture(
            "taint_flow", tmp_path, rules=[NondeterminismTaintRule()]
        )
        assert all("project_clean" not in f.message for f in result.findings)


class TestConformanceRule:
    def test_drift_fixture_reports_missing_and_renamed(self, tmp_path):
        result = lint_fixture(
            "proto_drift", tmp_path, rules=[EngineConformanceRule()]
        )
        assert [f.rule_id for f in result.findings] == ["FRM010", "FRM010"]
        messages = "\n".join(f.message for f in result.findings)
        assert "missing method max_overlap" in messages
        assert "row_bit" in messages and "(bit)" in messages
        for finding in result.findings:
            # Anchored at the engine class definition.
            assert finding.path == "repro/core/engines.py"
            assert "registered at core/driver.py::root_state" in finding.message

    def test_conforming_engine_is_silent(self, tmp_path):
        """Slots satisfy attrs; classmethod registration resolves."""
        result = lint_fixture(
            "proto_ok", tmp_path, rules=[EngineConformanceRule()]
        )
        assert result.findings == []


class TestPurityRule:
    def test_impure_fixture_reports_call_chain(self, tmp_path):
        result = lint_fixture(
            "purity_impure", tmp_path, rules=[HotPathPurityRule()]
        )
        assert {f.rule_id for f in result.findings} == {"FRM011"}
        messages = "\n".join(f.message for f in result.findings)
        assert "print()" in messages
        assert "mutates module-level _SEEN" in messages
        for finding in result.findings:
            assert finding.path == "repro/core/kernel.py"
            assert "call chain:" in finding.message
            assert "core/helpers.py::fold" in finding.message
            assert "core/helpers.py::trace" in finding.message

    def test_pure_fixture_is_silent(self, tmp_path):
        """Parameter mutation and unknown callbacks stay pure."""
        result = lint_fixture(
            "purity_pure", tmp_path, rules=[HotPathPurityRule()]
        )
        assert result.findings == []


class TestFixtureHygiene:
    @pytest.mark.parametrize(
        "name, n_expected",
        [
            ("taint_flow", 2),
            ("taint_clean", 0),
            ("taint_suppressed", 0),
            ("proto_drift", 2),
            ("proto_ok", 0),
            ("purity_impure", 2),
            ("purity_pure", 0),
        ],
    )
    def test_fixtures_clean_under_full_rule_set(self, tmp_path, name, n_expected):
        """Fixtures trigger only their intended rule — no FRM001-008 noise."""
        result = lint_fixture(name, tmp_path)
        assert len(result.findings) == n_expected

    def test_fixtures_silent_in_repo_tree(self):
        """In place under tests/, the corpus is filtered as test modules."""
        repo_root = FIXTURES.parent.parent
        engine = Engine(root=repo_root)
        result = engine.lint_paths(sorted(iter_python_files([FIXTURES])))
        assert result.findings == []


class TestCliIntegration:
    def test_injected_taint_exits_one_with_witness(self, tmp_path, capsys):
        """The acceptance check: a taint path fails the lint gate loudly."""
        root = copy_fixture("taint_flow", tmp_path)
        assert main(["lint", str(root), "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "FRM009" in out
        assert "witness:" in out
        assert "time.monotonic()" in out

    def test_deleted_protocol_method_exits_one(self, tmp_path, capsys):
        root = copy_fixture("proto_drift", tmp_path)
        assert main(["lint", str(root), "--no-cache"]) == 1
        out = capsys.readouterr().out
        assert "FRM010" in out
        assert "missing method max_overlap" in out


class TestSarifReporter:
    def test_sarif_shape_and_round_trip(self, tmp_path):
        """SARIF carries the same findings as JSON in 2.1.0 shape."""
        result = lint_fixture("taint_flow", tmp_path)
        sarif = json.loads(render_sarif(result))
        plain = json.loads(render_json(result))

        assert sarif["version"] == "2.1.0"
        assert "sarif-schema-2.1.0" in sarif["$schema"]
        run = sarif["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "farmer-lint"
        rule_ids = [rule["id"] for rule in driver["rules"]]
        assert rule_ids == [f"FRM{i:03d}" for i in range(1, 13)]

        assert len(run["results"]) == len(plain["findings"])
        for sarif_result, finding in zip(run["results"], plain["findings"]):
            assert sarif_result["ruleId"] == finding["rule"]
            assert sarif_result["level"] == "error"
            assert sarif_result["message"]["text"] == finding["message"]
            location = sarif_result["locations"][0]["physicalLocation"]
            assert location["artifactLocation"]["uri"] == finding["path"]
            region = location["region"]
            assert region["startLine"] == finding["line"]
            assert region["startColumn"] == finding["col"] + 1
            index = sarif_result["ruleIndex"]
            assert driver["rules"][index]["id"] == sarif_result["ruleId"]

    def test_sarif_cli_format(self, tmp_path, capsys, monkeypatch):
        monkeypatch.chdir(tmp_path)
        root = copy_fixture("proto_drift", tmp_path)
        assert main(["lint", str(root), "--format", "sarif"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["version"] == "2.1.0"
        assert len(payload["runs"][0]["results"]) == 2


class TestLintCache:
    def test_warm_run_matches_cold_and_skips_parses(self, tmp_path):
        root = copy_fixture("taint_flow", tmp_path)
        cache_path = tmp_path / "cache.bin"
        engine = Engine(root=root)
        paths = sorted(iter_python_files([root]))

        cache = LintCache(cache_path, engine.cache_signature())
        cold = engine.lint_paths(paths, cache=cache)
        assert cache.misses == len(paths) and cache.hits == 0
        cache.save()
        assert cache_path.is_file()

        warm_cache = LintCache(cache_path, engine.cache_signature())
        warm = engine.lint_paths(paths, cache=warm_cache)
        assert warm_cache.hits == len(paths) and warm_cache.misses == 0
        assert [f.sort_key for f in warm.findings] == [
            f.sort_key for f in cold.findings
        ]
        assert warm.n_suppressed == cold.n_suppressed

    def test_modified_file_invalidates_entry(self, tmp_path):
        root = copy_fixture("taint_flow", tmp_path)
        cache_path = tmp_path / "cache.bin"
        engine = Engine(root=root)
        paths = sorted(iter_python_files([root]))

        cache = LintCache(cache_path, engine.cache_signature())
        engine.lint_paths(paths, cache=cache)
        cache.save()

        helper = root / "repro" / "core" / "helpers.py"
        source = helper.read_text()
        helper.write_text(source + "\n# touched\n")

        stale = LintCache(cache_path, engine.cache_signature())
        engine.lint_paths(paths, cache=stale)
        assert stale.misses == 1
        assert stale.hits == len(paths) - 1

    def test_signature_change_drops_cache(self, tmp_path):
        root = copy_fixture("taint_clean", tmp_path)
        cache_path = tmp_path / "cache.bin"
        engine = Engine(root=root)
        paths = sorted(iter_python_files([root]))

        cache = LintCache(cache_path, engine.cache_signature())
        engine.lint_paths(paths, cache=cache)
        cache.save()

        other = LintCache(cache_path, "different-signature")
        engine.lint_paths(paths, cache=other)
        assert other.hits == 0

    def test_corrupt_cache_file_ignored(self, tmp_path):
        root = copy_fixture("taint_clean", tmp_path)
        cache_path = tmp_path / "cache.bin"
        cache_path.write_bytes(b"not a pickle")
        engine = Engine(root=root)
        cache = LintCache(cache_path, engine.cache_signature())
        result = engine.lint_paths(
            sorted(iter_python_files([root])), cache=cache
        )
        assert result.findings == []
        assert cache.hits == 0
