"""Tests for the fused enumeration kernel (:mod:`repro.core.kernel`).

Three layers of assurance:

* unit tests for the kernel primitives (``extend_and_scan``,
  ``max_candidate_overlap``, ``CondTable``, the memo caches), including
  the strict-zip corruption regression;
* a hypothesis property pinning ``extend_and_scan`` extensionally equal
  to the pre-kernel ``extend_items`` + ``scan_items`` composition;
* cache telemetry plumbing (merge/projection/checkpoint round-trips).

The engine differential — every registered engine serializing
byte-identically to the kernel across constraints, prunings, shapes,
sharded and killed+resumed runs — lives in
``test_engine_conformance.py``.
"""

import pickle

import pytest
from hypothesis import given, settings, strategies as st

from repro import Constraints
from repro.core.bounds import chi_bound, confidence_bound
from repro.core.checkpoint import TaskRecord
from repro.core.enumeration import (
    CACHE_TELEMETRY_FIELDS,
    NodeCounters,
    extend_items,
    merge_counters,
    scan_items,
    semantic_counters,
)
from repro.core.kernel import (
    ClosureCache,
    CondTable,
    KernelCache,
    extend_and_scan,
    max_candidate_overlap,
)
from repro.core.parallel import shutdown_workers
from repro.errors import DataError


@pytest.fixture(scope="module", autouse=True)
def _drain_pools():
    yield
    shutdown_workers()


# ---------------------------------------------------------------------------
# extend_and_scan
# ---------------------------------------------------------------------------


class TestExtendAndScan:
    def test_filters_and_scans_in_one_pass(self):
        ids, masks, inter, union = extend_and_scan(
            [3, 7, 9], [0b011, 0b110, 0b101], row_bit=0b001, full_mask=0b111
        )
        assert ids == [3, 9]
        assert masks == [0b011, 0b101]
        assert inter == 0b001
        assert union == 0b111

    def test_empty_table(self):
        ids, masks, inter, union = extend_and_scan([], [], 0b1, 0b111)
        assert (ids, masks) == ([], [])
        assert inter == 0b111  # empty-intersection convention
        assert union == 0

    def test_zero_row_bit_selects_nothing(self):
        ids, masks, inter, union = extend_and_scan(
            [1, 2], [0b01, 0b10], 0, 0b11
        )
        assert (ids, masks, union) == ([], [], 0)
        assert inter == 0b11

    def test_length_mismatch_is_data_error(self):
        with pytest.raises(DataError, match="differ in length"):
            extend_and_scan([1, 2, 3], [0b1, 0b1], 0b1, 0b1)


class TestStrictZipRegression:
    """A corrupt table (ids/masks lengths diverged) must fail loudly.

    Before the strict-zip fix, ``extend_items`` silently truncated to the
    shorter list — dropping items from conditional tables without a trace.
    """

    def test_extend_items_raises_on_mismatch(self):
        with pytest.raises(DataError, match="differ in length"):
            extend_items([1, 2, 3], [0b1, 0b1], 0b1)

    def test_extend_items_mismatch_other_direction(self):
        with pytest.raises(DataError, match="differ in length"):
            extend_items([1], [0b1, 0b1, 0b1], 0b1)

    def test_extend_items_equal_lengths_unaffected(self):
        assert extend_items([1, 2], [0b01, 0b11], 0b10) == ([2], [0b11])


# ---------------------------------------------------------------------------
# Property: fused == composition of the reference shims
# ---------------------------------------------------------------------------

_masks = st.lists(st.integers(min_value=0, max_value=2**12 - 1), max_size=16)


class TestFusedEqualsComposition:
    @given(
        masks=_masks,
        row=st.integers(min_value=0, max_value=11),
        full=st.integers(min_value=0, max_value=2**12 - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_extensionally_equal(self, masks, row, full):
        item_ids = list(range(100, 100 + len(masks)))
        row_bit = 1 << row
        ref_ids, ref_masks = extend_items(item_ids, masks, row_bit)
        ref_inter, ref_union = scan_items(ref_masks, full)
        assert extend_and_scan(item_ids, masks, row_bit, full) == (
            ref_ids,
            ref_masks,
            ref_inter,
            ref_union,
        )

    @given(full=st.integers(min_value=0, max_value=2**12 - 1))
    @settings(max_examples=20, deadline=None)
    def test_empty_table_edge(self, full):
        ref_inter, ref_union = scan_items([], full)
        assert extend_and_scan([], [], 0b1, full) == ([], [], ref_inter, ref_union)

    @given(masks=_masks, full=st.integers(min_value=0, max_value=2**12 - 1))
    @settings(max_examples=50, deadline=None)
    def test_empty_mask_edge(self, masks, full):
        # row_bit = 0 selects nothing; the composition agrees.
        item_ids = list(range(len(masks)))
        ref_ids, ref_masks = extend_items(item_ids, masks, 0)
        ref_inter, ref_union = scan_items(ref_masks, full)
        assert extend_and_scan(item_ids, masks, 0, full) == (
            ref_ids,
            ref_masks,
            ref_inter,
            ref_union,
        )


# ---------------------------------------------------------------------------
# max_candidate_overlap
# ---------------------------------------------------------------------------


class TestMaxCandidateOverlap:
    @given(
        masks=_masks,
        cand=st.integers(min_value=0, max_value=2**12 - 1),
    )
    @settings(max_examples=200, deadline=None)
    def test_early_exit_equals_naive_max(self, masks, cand):
        ordered = sorted(masks, key=lambda m: -m.bit_count())
        counts = [m.bit_count() for m in ordered]
        naive = max((m & cand).bit_count() for m in masks) if masks else 0
        assert max_candidate_overlap(ordered, counts, cand) == naive
        assert max_candidate_overlap(masks, None, cand) == naive

    def test_empty_table(self):
        assert max_candidate_overlap([], [], 0b111) == 0
        assert max_candidate_overlap([], None, 0b111) == 0

    def test_saturation_stops_early(self):
        # First tuple covers every candidate; later garbage is never read.
        masks = [0b1111, "not a mask"]
        counts = [4, 4]
        assert max_candidate_overlap(masks, counts, 0b0011) == 2


# ---------------------------------------------------------------------------
# CondTable
# ---------------------------------------------------------------------------


class TestCondTable:
    MASKS = [0b0101, 0b1111, 0b0001, 0b1011]  # supports 2, 4, 1, 3

    def test_build_sorts_by_support_descending(self):
        table = CondTable.build(self.MASKS, 0b1111)
        assert table.item_ids == [1, 3, 0, 2]
        assert table.masks == [0b1111, 0b1011, 0b0101, 0b0001]
        assert table.counts == [4, 3, 2, 1]

    def test_build_ties_break_by_item_id(self):
        table = CondTable.build([0b10, 0b01, 0b11], 0b11)
        assert table.item_ids == [2, 0, 1]

    def test_build_scan_results(self):
        table = CondTable.build(self.MASKS, 0b1111)
        assert table.inter == 0b0001
        assert table.union == 0b1111
        assert table.full == 0b1111
        assert len(table) == 4

    def test_extend_preserves_order_and_counts(self):
        table = CondTable.build(self.MASKS, 0b1111)
        child = table.extend(0b0100)  # row 2: masks with bit 2 set
        assert child.item_ids == [1, 0]
        assert child.masks == [0b1111, 0b0101]
        assert child.counts == [4, 2]
        assert child.inter == 0b0101
        assert child.union == 0b1111
        assert child.full == 0b1111

    def test_empty_build_and_extend(self):
        table = CondTable.build([], 0b11)
        assert table.inter == 0b11 and table.union == 0
        child = CondTable.build([0b01], 0b11).extend(0b10)
        assert len(child) == 0
        assert child.inter == 0b11  # empty-intersection convention

    def test_ids_mask_lazy_and_cached(self):
        table = CondTable.build(self.MASKS, 0b1111)
        assert table._ids_mask is None
        assert table.ids_mask == 0b1111
        assert table._ids_mask == 0b1111

    def test_reference_table_keeps_caller_order(self):
        table = CondTable.reference([5, 1, 9], [0b1, 0b11, 0b1], 0b11)
        assert table.item_ids == [5, 1, 9]
        assert table.counts is None
        assert table.inter is None and table.union is None

    def test_reference_extend_stays_reference(self):
        table = CondTable.reference([5, 1], [0b01, 0b11], 0b11)
        child = table.extend(0b01)
        assert child.counts is None
        assert child.item_ids == [5, 1]
        assert child.inter == 0b01 and child.union == 0b11

    def test_pickle_round_trip(self):
        table = CondTable.build(self.MASKS, 0b1111)
        _ = table.ids_mask  # populate the lazy slot too
        clone = pickle.loads(pickle.dumps(table))
        assert clone.__getstate__() == table.__getstate__()

    def test_max_overlap_delegates(self):
        table = CondTable.build(self.MASKS, 0b1111)
        assert table.max_overlap(0b1100) == 2


# ---------------------------------------------------------------------------
# Memo caches
# ---------------------------------------------------------------------------


class TestKernelCache:
    def test_class_split_memo_and_counters(self):
        cache = KernelCache()
        counters = NodeCounters()
        split = cache.class_split(0b0111, 0b0011, counters)
        assert split == (2, 1)
        assert (counters.cache_hits, counters.cache_misses) == (0, 1)
        assert cache.class_split(0b0111, 0b0011, counters) == (2, 1)
        assert (counters.cache_hits, counters.cache_misses) == (1, 1)

    def test_confidence_matches_bound(self):
        cache = KernelCache()
        counters = NodeCounters()
        for _ in range(2):
            assert cache.confidence(5, 2, counters) == confidence_bound(5, 2)
        assert (counters.cache_hits, counters.cache_misses) == (1, 1)

    def test_chi_matches_bound(self):
        cache = KernelCache()
        counters = NodeCounters()
        for _ in range(2):
            assert cache.chi(3, 1, 8, 4, counters) == chi_bound(3, 1, 8, 4)
        assert (counters.cache_hits, counters.cache_misses) == (1, 1)

    def test_satisfies_matches_constraints(self):
        constraints = Constraints(minsup=2, minconf=0.5)
        cache = KernelCache()
        counters = NodeCounters()
        for supp, supn in [(3, 1), (1, 3), (3, 1)]:
            assert cache.satisfies(
                constraints, supp, supn, 8, 4, counters
            ) == constraints.satisfied_by(supp, supn, 8, 4)
        assert (counters.cache_hits, counters.cache_misses) == (1, 2)


class TestClosureCache:
    def test_hit_miss_accounting(self):
        cache = ClosureCache()
        assert cache.get(0b101) is None
        assert cache.put(0b101, (item for item in (2, 5))) == (2, 5)
        assert cache.get(0b101) == (2, 5)
        assert (cache.hits, cache.misses) == (1, 1)


# ---------------------------------------------------------------------------
# Cache telemetry plumbing
# ---------------------------------------------------------------------------


class TestCacheTelemetry:
    def test_merge_counters_sums_cache_fields(self):
        merged = merge_counters(
            [NodeCounters(cache_hits=2, cache_misses=5),
             NodeCounters(cache_hits=1, cache_misses=1)]
        )
        assert (merged.cache_hits, merged.cache_misses) == (3, 6)

    def test_semantic_counters_projects_cache_fields_away(self):
        projected = semantic_counters(NodeCounters(nodes=7, cache_hits=3))
        assert projected["nodes"] == 7
        for field in CACHE_TELEMETRY_FIELDS:
            assert field not in projected

    def test_task_record_round_trips_cache_counters(self):
        record = TaskRecord(
            index=0,
            candidates=[],
            counters=NodeCounters(nodes=4, cache_hits=9, cache_misses=2),
        )
        clone = TaskRecord.from_payload(record.to_payload())
        assert clone.counters == record.counters

    def test_old_payload_defaults_cache_counters_to_zero(self):
        payload = TaskRecord(
            index=0, candidates=[], counters=NodeCounters(nodes=4)
        ).to_payload()
        for field in CACHE_TELEMETRY_FIELDS:
            del payload["counters"][field]
        clone = TaskRecord.from_payload(payload)
        assert clone.counters.cache_hits == 0
        assert clone.counters.cache_misses == 0
        assert clone.counters.nodes == 4


# The engine differential (kernel vs reference vs numpy, byte for byte)
# lives in test_engine_conformance.py — shared machinery that every
# registered engine runs through automatically.
