"""End-to-end and unit tests for the ``farmer serve`` daemon.

The load-bearing suite is :class:`TestEndToEnd`: a job submitted through
the HTTP API must return ``.irgs`` bytes **byte-identical** to the same
mine run directly through :func:`repro.core.farmer.mine_irgs`, across
engines, and a second identical submission must be answered by the
dataset registry and the shared warm-frontier cache (asserted via the
job's own ``cache_hit`` / ``dataset_cache`` telemetry events) with
identical bytes.

:class:`TestDocsCatalogue` and :class:`TestDocsIndex` are the docs
gates: every route the server registers must be documented in
``docs/serve.md`` (and no phantom routes may be documented), and
``docs/index.md`` must link every file in ``docs/``.
"""

from __future__ import annotations

import json
import re
import socket
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.core.farmer import available_engines, mine_irgs
from repro.core.serialize import save_rule_groups
from repro.data.discretize import EqualDepthDiscretizer
from repro.data.io import save_expression
from repro.data.registry import load
from repro.errors import UsageError
from repro.obs import EventTap
from repro.serve import (
    JOB_STATES,
    ROUTES,
    ApiError,
    JobSpec,
    Route,
    ServeApp,
    TERMINAL_STATES,
    create_server,
    parse_job_spec,
)

REPO = Path(__file__).resolve().parent.parent
DOCS = REPO / "docs"

#: The small-but-real mine every serve test uses (same point the CLI
#: suite leans on: fast, non-trivial group count).
DATASET = "LC"
SCALE = 0.02
MINSUP = 8

#: The acceptance matrix: kernel always, numpy when importable.
E2E_ENGINES = [
    engine for engine in ("kernel", "numpy") if engine in available_engines()
]


def _call(app, method, target, body=None):
    """Drive :meth:`ServeApp.handle` like a request; decode JSON bodies."""
    payload = b"" if body is None else json.dumps(body).encode("utf-8")
    status, content_type, data, extra = app.handle(method, target, payload)
    if content_type == "application/json":
        return status, json.loads(data), dict(extra)
    return status, data, dict(extra)


def _wait_terminal(app, job_id, timeout=120.0):
    """Poll a job's status until it reaches a terminal state."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        status, payload, _ = _call(app, "GET", f"/v1/jobs/{job_id}")
        assert status == 200
        if payload["state"] in TERMINAL_STATES:
            return payload
        time.sleep(0.02)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


def _wait_state(app, job_id, state, timeout=30.0):
    """Poll until a job reports ``state`` (failing fast on terminal)."""
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, payload, _ = _call(app, "GET", f"/v1/jobs/{job_id}")
        if payload["state"] == state:
            return payload
        assert payload["state"] not in TERMINAL_STATES, payload
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} never reached {state!r}")


def _direct_irgs_bytes(tmp_path, engine, minsup=MINSUP):
    """The ``.irgs`` bytes of the same mine run without the daemon."""
    matrix = load(DATASET, scale=SCALE, seed=None)
    data = EqualDepthDiscretizer(n_buckets=10).fit_transform(matrix)
    result = mine_irgs(data, data.class_labels[0], minsup=minsup,
                       engine=engine)
    path = tmp_path / f"direct-{engine}.irgs"
    save_rule_groups(
        path,
        result.groups,
        constraints=result.constraints,
        dataset_name=data.name,
    )
    return path.read_bytes()


@pytest.fixture()
def app(tmp_path):
    """A small in-process daemon app with a fresh state directory."""
    app = ServeApp(tmp_path / "serve", workers=1, queue_depth=4)
    yield app
    app.close()


# ----------------------------------------------------------------------
# EventTap (the obs/ side of the daemon)
# ----------------------------------------------------------------------


class TestEventTap:
    def test_seq_tail_and_last(self):
        tap = EventTap()
        tap.emit("a", x=1)
        tap.emit("b")
        tap.emit("a", x=2)
        events = tap.tail()
        assert [event["seq"] for event in events] == [0, 1, 2]
        assert all("t" in event for event in events)
        assert tap.tail(since=2)[0]["kind"] == "a"
        assert [e["x"] for e in tap.tail(kinds=("a",))] == [1, 2]
        assert tap.last("a")["x"] == 2
        assert tap.last("zzz") is None
        assert len(tap) == 3
        assert tap.events == 3
        assert tap.dropped == 0

    def test_bounded_buffer_drops_oldest(self):
        tap = EventTap(limit=2)
        for index in range(5):
            tap.emit("e", i=index)
        assert tap.events == 5
        assert tap.dropped == 3
        assert len(tap) == 2
        assert [event["i"] for event in tap.tail()] == [3, 4]

    def test_reserved_fields_rejected(self):
        tap = EventTap()
        with pytest.raises(UsageError):
            tap.emit("e", seq=1)
        with pytest.raises(UsageError):
            tap.emit("e", t=0.0)

    def test_non_positive_limit_rejected(self):
        with pytest.raises(UsageError):
            EventTap(limit=0)

    def test_close_is_idempotent_and_keeps_events(self):
        tap = EventTap()
        tap.emit("e")
        assert not tap.closed
        tap.close()
        tap.close()
        assert tap.closed
        assert len(tap) == 1

    def test_tail_returns_copies(self):
        tap = EventTap()
        tap.emit("e", x=1)
        tap.tail()[0]["x"] = 99
        assert tap.tail()[0]["x"] == 1


# ----------------------------------------------------------------------
# Job-spec validation (the wire contract)
# ----------------------------------------------------------------------


class TestJobSpecValidation:
    @pytest.mark.parametrize(
        ("payload", "named"),
        [
            ({}, "dataset"),
            ({"dataset": ""}, "dataset"),
            ({"dataset": "LC", "bogus": 1}, "bogus"),
            ({"dataset": "LC", "minsup": 0}, "minsup"),
            ({"dataset": "LC", "minsup": "5"}, "minsup"),
            ({"dataset": "LC", "minconf": 1.5}, "minconf"),
            ({"dataset": "LC", "minchi": -1}, "minchi"),
            ({"dataset": "LC", "scale": 0.0}, "scale"),
            ({"dataset": "LC", "buckets": 1}, "buckets"),
            ({"dataset": "LC", "seed": "x"}, "seed"),
            ({"dataset": "LC", "engine": "warp"}, "engine"),
            ({"dataset": "LC", "workers": 0}, "workers"),
            ({"dataset": "LC", "steal": True}, "steal"),
            ({"dataset": "LC", "steal_quantum": -4}, "steal_quantum"),
            ({"dataset": "LC", "timeout_seconds": 0}, "timeout_seconds"),
            ({"dataset": "LC", "checkpoint": True}, "checkpoint"),
            ({"dataset": "LC", "warm": True, "max_nodes": 10}, "warm"),
            (
                {
                    "dataset": "LC",
                    "warm": True,
                    "checkpoint": True,
                    "workers": 2,
                },
                "warm",
            ),
            ({"dataset": "LC", "max_nodes": 10, "workers": 2}, "max_nodes"),
            (["LC"], "object"),
        ],
    )
    def test_bad_spec_is_400_naming_the_field(self, payload, named):
        with pytest.raises(ApiError) as excinfo:
            parse_job_spec(payload)
        assert excinfo.value.status == 400
        assert excinfo.value.code == "bad_request"
        assert named in str(excinfo.value)

    def test_defaults_mirror_farmer_mine(self):
        spec = parse_job_spec({"dataset": "LC"})
        assert spec.minsup == 5
        assert spec.minconf == 0.0
        assert spec.minchi == 0.0
        assert spec.scale == pytest.approx(0.08)
        assert spec.buckets == 10
        assert spec.engine is None
        assert spec.workers is None
        assert spec.use_warm_cache()  # auto: on with no conflicting knob

    def test_warm_auto_disables_under_node_budget(self):
        assert not parse_job_spec(
            {"dataset": "LC", "max_nodes": 5}
        ).use_warm_cache()
        assert not parse_job_spec(
            {"dataset": "LC", "warm": False}
        ).use_warm_cache()

    def test_payload_echo_resolves_warm(self):
        payload = parse_job_spec({"dataset": "LC"}).to_payload()
        assert payload["warm"] is True
        assert sorted(payload) == sorted(
            JobSpec("LC").to_payload()
        )


# ----------------------------------------------------------------------
# Routing and error envelopes
# ----------------------------------------------------------------------


class TestRoutes:
    def test_match_captures_segments(self):
        route = Route("GET", "/v1/jobs/{id}/events", "job_events", "x")
        assert route.match("/v1/jobs/job-000001/events") == {
            "id": "job-000001"
        }
        assert route.match("/v1/jobs//events") is None
        assert route.match("/v1/jobs/j") is None
        assert route.match("/v1/health") is None

    def test_route_table_is_consistent(self):
        names = [route.name for route in ROUTES]
        assert len(names) == len(set(names))
        for route in ROUTES:
            assert route.method in {"GET", "POST", "DELETE"}
            assert route.pattern.startswith("/v1/")
            assert hasattr(ServeApp, f"_route_{route.name}"), route.name
            assert route.summary


class TestErrors:
    def test_unknown_path_is_404(self, app):
        status, payload, _ = _call(app, "GET", "/v2/anything")
        assert status == 404
        assert payload["error"]["code"] == "not_found"

    def test_wrong_method_is_405_with_allow(self, app):
        status, payload, extra = _call(app, "DELETE", "/v1/datasets")
        assert status == 405
        assert payload["error"]["code"] == "method_not_allowed"
        assert "GET" in extra["Allow"]
        assert "POST" in extra["Allow"]

    def test_malformed_json_is_400(self, app):
        status, _, body, _ = app.handle("POST", "/v1/jobs", b"{nope")
        assert status == 400
        assert json.loads(body)["error"]["code"] == "bad_request"

    def test_empty_body_is_400(self, app):
        status, payload, _ = _call(app, "POST", "/v1/jobs")
        assert status == 400

    def test_unknown_job_is_404(self, app):
        status, payload, _ = _call(app, "GET", "/v1/jobs/job-999999")
        assert status == 404

    def test_unknown_dataset_is_404(self, app):
        status, payload, _ = _call(
            app, "POST", "/v1/jobs", {"dataset": "NOPE"}
        )
        assert status == 404
        assert "NOPE" in payload["error"]["message"]

    def test_unavailable_engine_is_400(self, app):
        if "numpy" in available_engines():
            pytest.skip("every registered engine is available here")
        status, payload, _ = _call(
            app, "POST", "/v1/jobs", {"dataset": "LC", "engine": "numpy"}
        )
        assert status == 400

    def test_health_reports_engines_jobs_and_routes(self, app):
        status, payload, _ = _call(app, "GET", "/v1/health")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["default_engine"] in payload["engines"]
        assert set(payload["jobs"]) == set(JOB_STATES)
        assert payload["routes"] == [
            f"{route.method} {route.pattern}" for route in ROUTES
        ]


# ----------------------------------------------------------------------
# Queue limits, cancellation, resource budgets
# ----------------------------------------------------------------------


class TestQueueLimits:
    SPEC = {"dataset": DATASET, "scale": 0.01, "minsup": 5}

    @pytest.fixture()
    def gated(self, tmp_path):
        """An app whose single worker blocks until the gate opens."""
        app = ServeApp(
            tmp_path / "serve", workers=1, queue_depth=2, job_timeout=60.0
        )
        gate = threading.Event()
        original = app.queue.registry.table

        def gated_table(*args, **kwargs):
            gate.wait(timeout=60)
            return original(*args, **kwargs)

        app.queue.registry.table = gated_table
        yield app, gate
        gate.set()
        app.close()

    def test_backpressure_and_cancellation(self, gated):
        app, gate = gated
        _, job1, _ = _call(app, "POST", "/v1/jobs", self.SPEC)
        _wait_state(app, job1["id"], "running")

        # No result before the job is done.
        status, payload, _ = _call(
            app, "GET", f"/v1/jobs/{job1['id']}/result"
        )
        assert status == 409
        assert payload["error"]["code"] == "conflict"

        # Malformed incremental-poll cursor.
        status, payload, _ = _call(
            app, "GET", f"/v1/jobs/{job1['id']}/events?since=x"
        )
        assert status == 400

        # Fill the backlog to the cap, then overflow it.
        _, job2, _ = _call(app, "POST", "/v1/jobs", self.SPEC)
        _, job3, _ = _call(app, "POST", "/v1/jobs", self.SPEC)
        status, payload, extra = _call(app, "POST", "/v1/jobs", self.SPEC)
        assert status == 429
        assert payload["error"]["code"] == "queue_full"
        assert extra.get("Retry-After") == "1"

        # A queued job cancels immediately and terminally.
        status, payload, _ = _call(app, "DELETE", f"/v1/jobs/{job3['id']}")
        assert status == 202
        _, payload, _ = _call(app, "GET", f"/v1/jobs/{job3['id']}")
        assert payload["state"] == "cancelled"
        _, events, _ = _call(app, "GET", f"/v1/jobs/{job3['id']}/events")
        assert events["closed"]
        assert events["events"][-1]["kind"] == "job_end"
        assert events["events"][-1]["state"] == "cancelled"

        # A running job cancels cooperatively once the gate opens.
        status, payload, _ = _call(app, "DELETE", f"/v1/jobs/{job1['id']}")
        assert status == 202
        assert payload["cancel_requested"]
        gate.set()
        assert _wait_terminal(app, job1["id"])["state"] == "cancelled"

        # The untouched queued job still completes.
        assert _wait_terminal(app, job2["id"])["state"] == "done"
        status, payload, _ = _call(app, "DELETE", f"/v1/jobs/{job2['id']}")
        assert status == 409

        # Submission order is preserved in the listing.
        _, listing, _ = _call(app, "GET", "/v1/jobs")
        assert [job["id"] for job in listing["jobs"]] == [
            job1["id"],
            job2["id"],
            job3["id"],
        ]


class TestResourceLimits:
    def test_wall_clock_timeout_is_timeout_state(self, app):
        spec = {
            "dataset": DATASET,
            "scale": SCALE,
            "minsup": 2,
            "timeout_seconds": 1e-4,
        }
        _, job, _ = _call(app, "POST", "/v1/jobs", spec)
        payload = _wait_terminal(app, job["id"])
        assert payload["state"] == "timeout"
        assert payload["error"]

    def test_node_budget_is_timeout_state(self, app):
        spec = {
            "dataset": DATASET,
            "scale": SCALE,
            "minsup": MINSUP,
            "max_nodes": 20,
        }
        _, job, _ = _call(app, "POST", "/v1/jobs", spec)
        payload = _wait_terminal(app, job["id"])
        assert payload["state"] == "timeout"
        assert payload["spec"]["warm"] is False  # auto-off under budgets

    def test_bad_consequent_is_failed_state(self, app):
        spec = {"dataset": DATASET, "scale": SCALE, "consequent": "NOPE"}
        _, job, _ = _call(app, "POST", "/v1/jobs", spec)
        payload = _wait_terminal(app, job["id"])
        assert payload["state"] == "failed"
        assert "NOPE" in payload["error"]


# ----------------------------------------------------------------------
# Uploads and the dataset registry
# ----------------------------------------------------------------------


class TestUploads:
    @pytest.fixture()
    def tsv(self, tmp_path):
        matrix = load(DATASET, scale=0.01, seed=7)
        path = tmp_path / "upload.tsv"
        save_expression(matrix, path)
        return path.read_text(encoding="utf-8")

    def test_upload_describe_mine_and_restart(self, tmp_path, tsv):
        app = ServeApp(tmp_path / "serve", workers=1)
        try:
            status, info, _ = _call(app, "POST", "/v1/datasets", {"tsv": tsv})
            assert status == 201
            assert info["created"]
            assert info["id"].startswith("up-")
            # Idempotent re-upload: same id, not created again.
            status, again, _ = _call(
                app, "POST", "/v1/datasets", {"tsv": tsv}
            )
            assert status == 200
            assert not again["created"]
            assert again["id"] == info["id"]

            _, listing, _ = _call(app, "GET", "/v1/datasets")
            ids = [entry["id"] for entry in listing["datasets"]]
            assert DATASET in ids
            assert info["id"] in ids

            status, detail, _ = _call(
                app, "GET", f"/v1/datasets/{info['id']}"
            )
            assert status == 200
            assert detail["samples"] == info["samples"]
            assert detail["default_consequent"] in detail["classes"]

            _, job, _ = _call(
                app, "POST", "/v1/jobs", {"dataset": info["id"], "minsup": 5}
            )
            payload = _wait_terminal(app, job["id"])
            assert payload["state"] == "done", payload.get("error")
        finally:
            app.close()

        # Uploads survive a daemon restart (re-indexed from disk).
        reborn = ServeApp(tmp_path / "serve", workers=1)
        try:
            assert info["id"] in reborn.registry.dataset_ids()
        finally:
            reborn.close()

    def test_invalid_uploads_are_400(self, app):
        status, payload, _ = _call(
            app, "POST", "/v1/datasets", {"tsv": "not a tsv"}
        )
        assert status == 400
        status, payload, _ = _call(app, "POST", "/v1/datasets", {"nope": 1})
        assert status == 400

    def test_unknown_dataset_detail_is_404(self, app):
        status, payload, _ = _call(app, "GET", "/v1/datasets/up-ffffffff")
        assert status == 404


# ----------------------------------------------------------------------
# The acceptance end-to-end: byte identity + warm reuse, per engine
# ----------------------------------------------------------------------


@pytest.mark.parametrize("engine", E2E_ENGINES)
class TestEndToEnd:
    def test_job_bytes_match_direct_mine_and_warm_repeat(
        self, tmp_path, engine
    ):
        app = ServeApp(tmp_path / "serve", workers=1, queue_depth=4)
        try:
            spec = {
                "dataset": DATASET,
                "scale": SCALE,
                "minsup": MINSUP,
                "engine": engine,
            }
            status, job, _ = _call(app, "POST", "/v1/jobs", spec)
            assert status == 202
            assert job["spec"]["engine"] == engine
            payload = _wait_terminal(app, job["id"])
            assert payload["state"] == "done", payload.get("error")
            assert payload["summary"]["groups"] > 0
            assert payload["summary"]["warm_cache"] is True

            status, first, _ = _call(
                app, "GET", f"/v1/jobs/{job['id']}/result"
            )
            assert status == 200
            assert isinstance(first, bytes)
            assert first == _direct_irgs_bytes(tmp_path, engine)

            _, events, _ = _call(app, "GET", f"/v1/jobs/{job['id']}/events")
            kinds = [event["kind"] for event in events["events"]]
            assert kinds[0] == "job_queued"
            assert kinds[-1] == "job_end"
            assert "cache_miss" in kinds  # a fresh cache cannot answer

            # The identical re-submission is answered by the registry
            # (table hit) and the warm-frontier cache (cache_hit).
            status, job2, _ = _call(app, "POST", "/v1/jobs", spec)
            assert status == 202
            payload2 = _wait_terminal(app, job2["id"])
            assert payload2["state"] == "done", payload2.get("error")
            _, second, _ = _call(
                app, "GET", f"/v1/jobs/{job2['id']}/result"
            )
            assert second == first

            _, events2, _ = _call(
                app, "GET", f"/v1/jobs/{job2['id']}/events"
            )
            kinds2 = [event["kind"] for event in events2["events"]]
            assert "cache_hit" in kinds2
            table_events = [
                event
                for event in events2["events"]
                if event["kind"] == "dataset_cache"
            ]
            assert table_events
            assert table_events[0]["table"] == "hit"

            # Incremental polling: nothing new after the end of stream.
            _, tail, _ = _call(
                app,
                "GET",
                f"/v1/jobs/{job2['id']}/events?since={events2['next']}",
            )
            assert tail["events"] == []
            assert tail["closed"]

            # The shared cache inventory attributes the entry.
            _, cache, _ = _call(app, "GET", "/v1/cache")
            assert any(
                entry["dataset"] == DATASET
                and entry["constraints"]["minsup"] == MINSUP
                for entry in cache["entries"]
            )
        finally:
            app.close()


# ----------------------------------------------------------------------
# The real daemon over a real socket
# ----------------------------------------------------------------------


class TestRealDaemon:
    def test_submit_poll_fetch_over_http(self, tmp_path):
        server = create_server(
            port=0, registry_dir=tmp_path / "serve", workers=1
        )
        host, port = server.server_address[:2]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        base = f"http://{host}:{port}"
        try:
            with urllib.request.urlopen(
                f"{base}/v1/health", timeout=10
            ) as response:
                assert response.status == 200
                health = json.load(response)
            assert health["status"] == "ok"

            body = json.dumps(
                {"dataset": DATASET, "scale": SCALE, "minsup": MINSUP}
            ).encode("utf-8")
            request = urllib.request.Request(
                f"{base}/v1/jobs",
                data=body,
                method="POST",
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=10) as response:
                assert response.status == 202
                job = json.load(response)

            deadline = time.monotonic() + 120
            payload = None
            while time.monotonic() < deadline:
                with urllib.request.urlopen(
                    f"{base}/v1/jobs/{job['id']}", timeout=10
                ) as response:
                    payload = json.load(response)
                if payload["state"] in TERMINAL_STATES:
                    break
                time.sleep(0.05)
            assert payload is not None
            assert payload["state"] == "done", payload.get("error")

            with urllib.request.urlopen(
                f"{base}/v1/jobs/{job['id']}/result", timeout=10
            ) as response:
                fetched = response.read()
            assert fetched == _direct_irgs_bytes(tmp_path, None)

            # An oversized Content-Length is refused before the body is
            # read (the handler answers 413 without buffering anything).
            with socket.create_connection((host, port), timeout=10) as raw:
                raw.sendall(
                    b"POST /v1/jobs HTTP/1.1\r\n"
                    b"Host: farmer\r\n"
                    b"Content-Length: 999999999\r\n\r\n"
                )
                response_bytes = raw.recv(65536)
            assert b" 413 " in response_bytes.split(b"\r\n", 1)[0]
            assert b"payload_too_large" in response_bytes
        finally:
            server.shutdown()
            server.app.close()
            server.server_close()


# ----------------------------------------------------------------------
# Docs gates: the reference cannot drift from the server
# ----------------------------------------------------------------------

#: Backticked ``METHOD /v1/...`` mentions in docs/serve.md.
_ROUTE_MENTION = re.compile(r"`(GET|POST|DELETE) (/v1/[^\s`]*)`")


class TestDocsCatalogue:
    @pytest.fixture(scope="class")
    def serve_doc(self):
        return (DOCS / "serve.md").read_text(encoding="utf-8")

    def test_every_route_documented_and_no_phantoms(self, serve_doc):
        documented = {
            (method, pattern)
            for method, pattern in _ROUTE_MENTION.findall(serve_doc)
        }
        registered = {(route.method, route.pattern) for route in ROUTES}
        assert registered <= documented, (
            f"routes missing from docs/serve.md: "
            f"{sorted(registered - documented)}"
        )
        assert documented <= registered, (
            f"docs/serve.md documents unregistered routes: "
            f"{sorted(documented - registered)}"
        )

    def test_every_error_code_documented(self, serve_doc):
        for code in (
            "bad_request",
            "not_found",
            "method_not_allowed",
            "conflict",
            "queue_full",
            "payload_too_large",
            "internal",
        ):
            assert f"`{code}`" in serve_doc, code

    def test_job_lifecycle_documented(self, serve_doc):
        for state in JOB_STATES:
            assert f"`{state}`" in serve_doc, state

    def test_serve_events_documented_in_observability(self):
        text = (DOCS / "observability.md").read_text(encoding="utf-8")
        for kind in ("job_queued", "job_start", "dataset_cache", "job_end"):
            assert f"`{kind}`" in text, kind


class TestDocsIndex:
    def test_index_links_every_docs_file(self):
        index = (DOCS / "index.md").read_text(encoding="utf-8")
        for path in sorted(DOCS.glob("*.md")):
            if path.name == "index.md":
                continue
            assert f"({path.name})" in index, f"index.md misses {path.name}"

    def test_readme_links_serve_and_index(self):
        readme = (REPO / "README.md").read_text(encoding="utf-8")
        assert "farmer serve" in readme
        assert "docs/serve.md" in readme
        assert "docs/index.md" in readme
