"""Unit tests for the synthetic microarray generator and the registry."""

import numpy as np
import pytest

from repro.data.registry import PAPER_DATASETS, load, train_test_rows
from repro.data.synthetic import BlockSpec, default_blocks, make_microarray
from repro.errors import DataError


class TestBlockSpec:
    def test_validation(self):
        with pytest.raises(DataError):
            BlockSpec(size=0, target_class=0)
        with pytest.raises(DataError):
            BlockSpec(size=3, target_class=2)
        with pytest.raises(DataError):
            BlockSpec(size=3, target_class=0, penetrance=1.5)

    def test_default_blocks_alternate_classes(self):
        blocks = default_blocks(4)
        assert [block.target_class for block in blocks] == [0, 1, 0, 1]


class TestMakeMicroarray:
    def test_shape_and_labels(self):
        matrix = make_microarray(
            n_samples=20, n_genes=30, n_class1=8, blocks=2, seed=1
        )
        assert matrix.n_samples == 20
        assert matrix.n_genes == 30
        assert matrix.class_count("class1") == 8
        assert matrix.labels[:8] == ("class1",) * 8

    def test_deterministic(self):
        first = make_microarray(20, 30, 8, blocks=2, seed=7)
        second = make_microarray(20, 30, 8, blocks=2, seed=7)
        assert np.array_equal(first.values, second.values)

    def test_seed_changes_values(self):
        first = make_microarray(20, 30, 8, blocks=2, seed=7)
        second = make_microarray(20, 30, 8, blocks=2, seed=8)
        assert not np.array_equal(first.values, second.values)

    def test_block_genes_shifted_for_target_class(self):
        block = BlockSpec(
            size=5, target_class=0, shift=6.0, penetrance=1.0, leakage=0.0
        )
        matrix = make_microarray(
            40, 20, 20, blocks=[block], n_subtypes=0, seed=3
        )
        block_mean_class1 = matrix.values[:20, :5].mean()
        block_mean_class0 = matrix.values[20:, :5].mean()
        assert block_mean_class1 > block_mean_class0 + 3.0

    def test_invalid_class_count(self):
        with pytest.raises(DataError):
            make_microarray(10, 20, 0, blocks=1)
        with pytest.raises(DataError):
            make_microarray(10, 20, 10, blocks=1)

    def test_blocks_exceed_genes(self):
        with pytest.raises(DataError):
            make_microarray(10, 4, 5, blocks=[BlockSpec(size=9, target_class=0)])

    def test_single_subtype_rejected(self):
        with pytest.raises(DataError):
            make_microarray(10, 20, 5, blocks=1, n_subtypes=1)

    def test_subtypes_add_gene_correlation(self):
        flat = make_microarray(60, 40, 30, blocks=0, n_subtypes=0, seed=5)
        structured = make_microarray(
            60,
            40,
            30,
            blocks=0,
            n_subtypes=6,
            subtype_strength=2.0,
            subtype_fraction=1.0,
            seed=5,
        )

        def mean_abs_offdiag(matrix):
            corr = np.corrcoef(matrix.values, rowvar=False)
            mask = ~np.eye(corr.shape[0], dtype=bool)
            return np.abs(corr[mask]).mean()

        assert mean_abs_offdiag(structured) > mean_abs_offdiag(flat) * 1.5


class TestRegistry:
    def test_all_specs_consistent(self):
        for spec in PAPER_DATASETS.values():
            assert spec.n_train + spec.n_test == spec.n_rows
            assert 0 < spec.n_class1 < spec.n_rows

    def test_load_matches_table1(self):
        for name, spec in PAPER_DATASETS.items():
            matrix = load(name, scale=0.02)
            assert matrix.n_samples == spec.n_rows
            assert matrix.class_count(spec.class1) == spec.n_class1
            assert matrix.class_count(spec.class0) == spec.n_class0

    def test_load_case_insensitive(self):
        assert load("ct", scale=0.02).name == "CT"

    def test_load_unknown(self):
        with pytest.raises(DataError):
            load("XX")

    def test_load_invalid_scale(self):
        with pytest.raises(DataError):
            load("CT", scale=0.0)

    def test_load_deterministic(self):
        first = load("ALL", scale=0.02)
        second = load("ALL", scale=0.02)
        assert np.array_equal(first.values, second.values)

    def test_scaled_cols(self):
        spec = PAPER_DATASETS["CT"]
        assert spec.scaled_cols(1.0) == 2000
        assert spec.scaled_cols(1e-9) >= spec.n_blocks * 8  # floor


class TestTrainTestSplit:
    def test_sizes_match_table2(self):
        for spec in PAPER_DATASETS.values():
            train, test = train_test_rows(spec)
            assert len(train) == spec.n_train
            assert len(test) == spec.n_test
            assert not set(train) & set(test)
            assert sorted(train + test) == list(range(spec.n_rows))

    def test_stratified(self):
        spec = PAPER_DATASETS["PC"]
        train, test = train_test_rows(spec)
        train_class1 = sum(1 for index in train if index < spec.n_class1)
        # Roughly proportional representation.
        expected = spec.n_train * spec.n_class1 / spec.n_rows
        assert abs(train_class1 - expected) <= 2

    def test_deterministic_per_seed(self):
        spec = PAPER_DATASETS["CT"]
        assert train_test_rows(spec, seed=1) == train_test_rows(spec, seed=1)
        assert train_test_rows(spec, seed=1) != train_test_rows(spec, seed=2)
