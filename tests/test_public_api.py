"""Contract tests for the public API surface.

A downstream user imports from ``repro`` and its subpackages; these tests
pin that every advertised name exists, is importable, and that ``__all__``
listings stay honest (no dangling or missing exports).
"""

import importlib

import pytest

PACKAGES = [
    "repro",
    "repro.core",
    "repro.data",
    "repro.baselines",
    "repro.classify",
    "repro.extensions",
    "repro.experiments",
]


@pytest.mark.parametrize("package_name", PACKAGES)
class TestAllListings:
    def test_every_export_exists(self, package_name):
        package = importlib.import_module(package_name)
        for name in package.__all__:
            assert hasattr(package, name), f"{package_name}.{name} missing"

    def test_exports_sorted(self, package_name):
        package = importlib.import_module(package_name)
        assert list(package.__all__) == sorted(package.__all__), package_name


class TestTopLevelSurface:
    def test_headline_names(self):
        import repro

        for name in (
            "mine_irgs",
            "Farmer",
            "RuleGroup",
            "Constraints",
            "SearchBudget",
            "make_microarray",
            "EqualDepthDiscretizer",
            "EntropyMDLDiscretizer",
            "mine_lower_bounds",
        ):
            assert hasattr(repro, name)

    def test_version_is_string(self):
        import repro

        assert isinstance(repro.__version__, str)
        assert repro.__version__.count(".") == 2

    def test_docstrings_on_public_callables(self):
        """Every public function/class in the headline modules carries a
        docstring — the documentation deliverable, enforced."""
        import inspect

        for package_name in PACKAGES:
            package = importlib.import_module(package_name)
            for name in package.__all__:
                member = getattr(package, name)
                if inspect.isfunction(member) or inspect.isclass(member):
                    assert inspect.getdoc(member), f"{package_name}.{name}"

    def test_module_docstrings(self):
        import pkgutil

        import repro

        for module_info in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = importlib.import_module(module_info.name)
            assert module.__doc__, f"{module_info.name} lacks a docstring"
