"""Unit tests for the farmer CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
        capsys.readouterr()

    def test_mine_defaults(self):
        args = build_parser().parse_args(["mine", "--dataset", "CT"])
        assert args.minsup == 5
        assert args.buckets == 10

    def test_mutually_exclusive_source(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["mine", "--dataset", "CT", "--tsv", "x.tsv"]
            )
        capsys.readouterr()


class TestMine:
    def test_mine_registry(self, capsys):
        code = main(
            [
                "mine",
                "--dataset",
                "CT",
                "--scale",
                "0.01",
                "--minsup",
                "5",
                "--top",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "interesting rule groups" in out

    def test_mine_with_lower_bounds(self, capsys):
        code = main(
            [
                "mine",
                "--dataset",
                "CT",
                "--scale",
                "0.01",
                "--minsup",
                "6",
                "--minconf",
                "0.9",
                "--lower-bounds",
                "--top",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "lower" in out or "0 interesting" in out


class TestGenerateAndRoundTrip:
    def test_generate_then_mine_tsv(self, tmp_path, capsys):
        tsv = tmp_path / "ct.tsv"
        assert (
            main(
                [
                    "generate",
                    "--dataset",
                    "CT",
                    "--scale",
                    "0.01",
                    "--out",
                    str(tsv),
                ]
            )
            == 0
        )
        assert tsv.exists()
        capsys.readouterr()
        code = main(
            ["mine", "--tsv", str(tsv), "--minsup", "5", "--top", "1"]
        )
        assert code == 0
        assert "interesting rule groups" in capsys.readouterr().out


class TestClassify:
    def test_classify_svm(self, capsys):
        code = main(
            ["classify", "--dataset", "CT", "--scale", "0.01", "--classifier", "svm"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "test accuracy" in out


class TestExperiment:
    def test_table1(self, capsys):
        code = main(["experiment", "table1", "--scale", "0.01"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 1" in out
        assert "24481" in out  # the paper's BC column count

    def test_fig10_tiny(self, capsys):
        code = main(
            [
                "experiment",
                "fig10",
                "--datasets",
                "CT",
                "--scale",
                "0.01",
                "--timeout",
                "20",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "FARMER" in out and "CHARM" in out


class TestErrors:
    def test_repro_error_is_reported(self, tmp_path, capsys):
        missing = tmp_path / "nope.tsv"
        missing.write_text("bad\t1\n")
        code = main(["mine", "--tsv", str(missing), "--minsup", "1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "error:" in captured.err
