"""Unit tests for the farmer CLI."""

from pathlib import Path

import pytest

from repro.cli import build_parser, main
from repro.core.farmer import available_engines
from repro.core.parallel import shutdown_workers

#: Engines the three-way interaction matrix runs under ("numpy" rides
#: along only when installed; the suite must not require it).
CLI_ENGINES = [
    engine
    for engine in ("kernel", "reference", "numpy")
    if engine in available_engines()
]


class TestParser:
    def test_requires_command(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])
        capsys.readouterr()

    def test_mine_defaults(self):
        args = build_parser().parse_args(["mine", "--dataset", "CT"])
        assert args.minsup == 5
        assert args.buckets == 10

    def test_mutually_exclusive_source(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["mine", "--dataset", "CT", "--tsv", "x.tsv"]
            )
        capsys.readouterr()


class TestMine:
    def test_mine_registry(self, capsys):
        code = main(
            [
                "mine",
                "--dataset",
                "CT",
                "--scale",
                "0.01",
                "--minsup",
                "5",
                "--top",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "interesting rule groups" in out

    def test_mine_with_lower_bounds(self, capsys):
        code = main(
            [
                "mine",
                "--dataset",
                "CT",
                "--scale",
                "0.01",
                "--minsup",
                "6",
                "--minconf",
                "0.9",
                "--lower-bounds",
                "--top",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "lower" in out or "0 interesting" in out


class TestGenerateAndRoundTrip:
    def test_generate_then_mine_tsv(self, tmp_path, capsys):
        tsv = tmp_path / "ct.tsv"
        assert (
            main(
                [
                    "generate",
                    "--dataset",
                    "CT",
                    "--scale",
                    "0.01",
                    "--out",
                    str(tsv),
                ]
            )
            == 0
        )
        assert tsv.exists()
        capsys.readouterr()
        code = main(
            ["mine", "--tsv", str(tsv), "--minsup", "5", "--top", "1"]
        )
        assert code == 0
        assert "interesting rule groups" in capsys.readouterr().out


class TestClassify:
    def test_classify_svm(self, capsys):
        code = main(
            ["classify", "--dataset", "CT", "--scale", "0.01", "--classifier", "svm"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "test accuracy" in out


class TestExperiment:
    def test_table1(self, capsys):
        code = main(["experiment", "table1", "--scale", "0.01"])
        out = capsys.readouterr().out
        assert code == 0
        assert "Table 1" in out
        assert "24481" in out  # the paper's BC column count

    def test_fig10_tiny(self, capsys):
        code = main(
            [
                "experiment",
                "fig10",
                "--datasets",
                "CT",
                "--scale",
                "0.01",
                "--timeout",
                "20",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "FARMER" in out and "CHARM" in out


class TestWorkersResumeEngine:
    """The ``--workers`` x ``--resume`` x ``--engine`` interaction.

    Each scenario crashes a sharded mine after its first checkpoint
    write (deterministic chaos), then resumes under a *different*
    worker count — optionally under ``--steal`` — and asserts the saved
    ``.irgs`` bytes equal a serial kernel run's.  That pins three
    orthogonal claims through the CLI at once: checkpoints are valid
    across worker counts and schedulers, every engine honours them, and
    the resumed output is byte-identical regardless of all three flags.
    """

    MINE = [
        "mine",
        "--dataset",
        "CT",
        "--scale",
        "0.01",
        "--minsup",
        "5",
        "--top",
        "0",
    ]

    @pytest.fixture(scope="class", autouse=True)
    def _drain_pools(self):
        yield
        shutdown_workers()

    @pytest.fixture(scope="class")
    def serial_irgs(self, tmp_path_factory) -> bytes:
        """The serial kernel run's bytes, the oracle for every scenario."""
        path = tmp_path_factory.mktemp("cli-serial") / "serial.irgs"
        assert main([*self.MINE, "--save", str(path)]) == 0
        return path.read_bytes()

    @pytest.mark.parametrize("engine", CLI_ENGINES)
    @pytest.mark.parametrize(
        ("resume_workers", "steal"),
        [(1, False), (4, False), (4, True)],
        ids=["w1-static", "w4-static", "w4-steal"],
    )
    def test_crash_then_resume_matrix(
        self,
        engine,
        resume_workers,
        steal,
        serial_irgs,
        tmp_path,
        capsys,
        chaos,
    ):
        ckpt = tmp_path / "mine.ckpt"
        chaos.arm("ckpt-raise:after=1")
        # InjectedFault is a ReproError, so the CLI reports it as a
        # normal mining failure (exit 1) rather than crashing.
        assert (
            main(
                [
                    *self.MINE,
                    "--workers",
                    "2",
                    "--engine",
                    engine,
                    "--checkpoint",
                    str(ckpt),
                ]
            )
            == 1
        )
        chaos.disarm()
        assert "injected" in capsys.readouterr().err
        assert ckpt.exists()

        saved = tmp_path / "resumed.irgs"
        argv = [
            *self.MINE,
            "--workers",
            str(resume_workers),
            "--engine",
            engine,
            "--resume",
            str(ckpt),
            "--save",
            str(saved),
        ]
        if steal:
            argv.append("--steal")
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert f"sharded across {resume_workers} workers" in out
        assert "resumed" in out and "finished shards" in out
        if steal and resume_workers > 1:
            assert "work stealing:" in out
        assert saved.read_bytes() == serial_irgs

    def test_resume_requires_matching_flags_not(self, tmp_path, capsys, chaos):
        """A checkpoint written under ``--steal`` restores under the
        static scheduler too — only whole shards are durable, so the
        file carries no scheduler state to disagree about."""
        ckpt = tmp_path / "steal.ckpt"
        chaos.arm("ckpt-raise:after=1")
        assert (
            main(
                [
                    *self.MINE,
                    "--workers",
                    "4",
                    "--steal",
                    "--checkpoint",
                    str(ckpt),
                ]
            )
            == 1
        )
        chaos.disarm()
        capsys.readouterr()
        saved = tmp_path / "static-resume.irgs"
        assert (
            main(
                [
                    *self.MINE,
                    "--workers",
                    "2",
                    "--no-steal",
                    "--resume",
                    str(ckpt),
                    "--save",
                    str(saved),
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "resumed" in out
        assert "work stealing:" not in out


class TestErrors:
    def test_repro_error_is_reported(self, tmp_path, capsys):
        missing = tmp_path / "nope.tsv"
        missing.write_text("bad\t1\n")
        code = main(["mine", "--tsv", str(missing), "--minsup", "1"])
        captured = capsys.readouterr()
        assert code == 1
        assert "error:" in captured.err


class TestKnobValidation:
    """Non-positive numeric knobs fail up front with the flag's name.

    Regression guard for the coordinator-deep failures these used to
    produce: the CLI now rejects them before loading any data, so the
    message names the flag the user actually typed.
    """

    MINE = ["mine", "--dataset", "CT", "--scale", "0.01", "--minsup", "5"]

    @pytest.mark.parametrize(
        ("flag", "value"),
        [
            ("--workers", "0"),
            ("--workers", "-2"),
            ("--steal-quantum", "0"),
            ("--steal-quantum", "-1"),
            ("--checkpoint-every", "0"),
            ("--checkpoint-every", "-5"),
        ],
    )
    def test_non_positive_knob_is_usage_error(self, capsys, flag, value):
        code = main([*self.MINE, flag, value])
        captured = capsys.readouterr()
        assert code == 1
        assert "error:" in captured.err
        assert flag in captured.err
        assert value in captured.err

    def test_remine_validates_workers_too(self, tmp_path, capsys):
        code = main(
            [
                "remine",
                "--dataset",
                "CT",
                "--scale",
                "0.01",
                "--minsup",
                "5",
                "--warm-cache",
                str(tmp_path / "cache"),
                "--workers",
                "0",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "--workers" in captured.err

    def test_positive_knobs_still_mine(self, capsys):
        code = main([*self.MINE, "--top", "0", "--steal-quantum", "512"])
        captured = capsys.readouterr()
        assert code == 0
        assert "interesting rule groups" in captured.out


class TestRemine:
    def test_remine_matches_cold_mine(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        base = [
            "--dataset",
            "CT",
            "--scale",
            "0.01",
            "--top",
            "0",
        ]
        cold_save = str(tmp_path / "cold.irgs")
        warm_save = str(tmp_path / "warm.irgs")
        assert main(["mine", *base, "--minsup", "8", "--warm-cache", cache]) == 0
        assert (
            main(
                [
                    "remine",
                    *base,
                    "--minsup",
                    "5",
                    "--warm-cache",
                    cache,
                    "--save",
                    warm_save,
                ]
            )
            == 0
        )
        assert main(["mine", *base, "--minsup", "5", "--save", cold_save]) == 0
        capsys.readouterr()
        assert Path(warm_save).read_bytes() == Path(cold_save).read_bytes()

    def test_remine_requires_warm_cache(self, capsys):
        with pytest.raises(SystemExit):
            main(["remine", "--dataset", "CT", "--minsup", "5"])
        captured = capsys.readouterr()
        assert "--warm-cache" in captured.err


class TestServeKnobValidation:
    """Bad ``farmer serve`` knobs fail before a socket is bound.

    Mirrors :class:`TestKnobValidation`: the error names the flag the
    user actually typed and carries the offending value.
    """

    @pytest.mark.parametrize(
        ("flag", "value"),
        [
            ("--port", "-1"),
            ("--port", "65536"),
            ("--workers", "0"),
            ("--workers", "-2"),
            ("--queue-depth", "0"),
            ("--queue-depth", "-1"),
            ("--job-timeout", "0"),
            ("--job-timeout", "-3"),
        ],
    )
    def test_bad_serve_knob_is_usage_error(self, capsys, flag, value):
        code = main(["serve", flag, value])
        captured = capsys.readouterr()
        assert code == 1
        assert "error:" in captured.err
        assert flag in captured.err
        assert value in captured.err

    def test_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.host == "127.0.0.1"
        assert args.port == 8765
        assert args.workers == 2
        assert args.queue_depth == 16
        assert args.registry_dir == ".farmer-serve"
        assert args.job_timeout == 300.0

    def test_registry_dir_flag_parses(self, tmp_path):
        args = build_parser().parse_args(
            ["serve", "--registry-dir", str(tmp_path / "state"), "--port", "0"]
        )
        assert args.registry_dir == str(tmp_path / "state")
        assert args.port == 0


class TestWarmCacheSummary:
    def test_metrics_summary_includes_frontier_reuse(self, tmp_path, capsys):
        """``--metrics-out`` + ``--warm-cache`` reports the reuse gauge.

        Regression guard: the end-of-run summary used to omit frontier
        metrics, so a warm run's reuse fraction only ever reached the
        JSONL event stream, never the operator-facing summary line.
        """
        from repro.obs import read_runlog

        cache = str(tmp_path / "cache")
        base = [
            "mine",
            "--dataset",
            "CT",
            "--scale",
            "0.01",
            "--minsup",
            "5",
            "--top",
            "0",
            "--warm-cache",
            cache,
        ]
        assert main([*base, "--metrics-out", str(tmp_path / "r1.jsonl")]) == 0
        capsys.readouterr()
        runlog = tmp_path / "r2.jsonl"
        assert main([*base, "--metrics-out", str(runlog)]) == 0
        captured = capsys.readouterr()
        assert "warm cache: frontier reuse 100%" in captured.out
        gauges = {
            name
            for event in read_runlog(runlog)
            if event["kind"] == "metrics"
            for name in event.get("gauges", {})
        }
        assert "frontier.reuse_fraction" in gauges
