"""Unit tests for GeneExpressionMatrix."""

import numpy as np
import pytest

from repro.data.matrix import GeneExpressionMatrix
from repro.errors import DataError


def sample_matrix():
    return GeneExpressionMatrix.from_arrays(
        [[1.0, 2.0, 3.0], [4.0, 5.0, 6.0]],
        ["t", "n"],
        gene_names=["g0", "g1", "g2"],
        name="m",
    )


class TestValidation:
    def test_shape_and_counts(self):
        matrix = sample_matrix()
        assert matrix.n_samples == 2
        assert matrix.n_genes == 3

    def test_label_mismatch(self):
        with pytest.raises(DataError):
            GeneExpressionMatrix.from_arrays([[1.0]], ["a", "b"])

    def test_gene_name_mismatch(self):
        with pytest.raises(DataError):
            GeneExpressionMatrix.from_arrays(
                [[1.0, 2.0]], ["a"], gene_names=["only"]
            )

    def test_nan_rejected(self):
        with pytest.raises(DataError):
            GeneExpressionMatrix.from_arrays([[float("nan")]], ["a"])

    def test_non_2d_rejected(self):
        with pytest.raises(DataError):
            GeneExpressionMatrix(
                values=np.zeros(3), labels=("a",), gene_names=("g",)
            )

    def test_default_gene_names(self):
        matrix = GeneExpressionMatrix.from_arrays([[1.0, 2.0]], ["a"])
        assert matrix.gene_names == ("g0", "g1")


class TestQueries:
    def test_class_labels(self):
        assert sample_matrix().class_labels == ("t", "n")

    def test_class_count(self):
        assert sample_matrix().class_count("t") == 1
        assert sample_matrix().class_count("zzz") == 0

    def test_summary(self):
        summary = sample_matrix().summary()
        assert summary["n_samples"] == 2
        assert summary["class_counts"] == {"t": 1, "n": 1}


class TestTransforms:
    def test_select_samples(self):
        sub = sample_matrix().select_samples([1])
        assert sub.n_samples == 1
        assert sub.labels == ("n",)
        assert sub.values[0, 0] == 4.0

    def test_select_samples_out_of_range(self):
        with pytest.raises(DataError):
            sample_matrix().select_samples([5])

    def test_select_genes(self):
        sub = sample_matrix().select_genes([2, 0])
        assert sub.gene_names == ("g2", "g0")
        assert sub.values[0].tolist() == [3.0, 1.0]

    def test_select_genes_out_of_range(self):
        with pytest.raises(DataError):
            sample_matrix().select_genes([7])

    def test_standardized_zero_mean_unit_std(self):
        rng = np.random.default_rng(0)
        matrix = GeneExpressionMatrix.from_arrays(
            rng.normal(3.0, 2.0, size=(50, 4)), ["a"] * 50
        )
        z = matrix.standardized()
        assert np.allclose(z.mean(axis=0), 0.0, atol=1e-9)
        assert np.allclose(z.std(axis=0), 1.0, atol=1e-9)

    def test_standardized_constant_gene(self):
        matrix = GeneExpressionMatrix.from_arrays(
            [[5.0], [5.0]], ["a", "b"]
        )
        z = matrix.standardized()
        assert np.allclose(z, 0.0)
