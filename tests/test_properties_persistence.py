"""Property-based tests for persistence, validation and discretization."""

from hypothesis import given, settings, strategies as st

from repro import Constraints, mine_irgs
from repro.core.serialize import load_rule_groups, save_rule_groups
from repro.core.validate import validate_result
from repro.data.dataset import ItemizedDataset
from repro.data.io import load_itemized, save_itemized


@st.composite
def datasets(draw, max_rows=7, max_items=8):
    n_items = draw(st.integers(min_value=1, max_value=max_items))
    n_rows = draw(st.integers(min_value=1, max_value=max_rows))
    rows = [
        draw(
            st.frozensets(
                st.integers(min_value=0, max_value=n_items - 1),
                max_size=n_items,
            )
        )
        for _ in range(n_rows)
    ]
    labels = [draw(st.sampled_from(["C", "D"])) for _ in range(n_rows)]
    labels[0] = "C"
    return ItemizedDataset.from_lists(rows, labels, n_items=n_items)


class TestSerializationProperties:
    @given(datasets())
    @settings(max_examples=40, deadline=None)
    def test_rule_groups_round_trip(self, data):
        import tempfile
        from pathlib import Path

        result = mine_irgs(data, "C", minsup=1, compute_lower_bounds=True)
        with tempfile.TemporaryDirectory() as directory:
            path = Path(directory) / "groups.irgs"
            save_rule_groups(path, result.groups, constraints=result.constraints)
            loaded, header = load_rule_groups(path)
        assert {g.upper for g in loaded} == result.upper_antecedents()
        assert header["count"] == len(result.groups)
        for original, restored in zip(
            sorted(result.groups, key=lambda g: sorted(g.upper)),
            sorted(loaded, key=lambda g: sorted(g.upper)),
        ):
            assert original.rows == restored.rows
            assert original.lower_bounds == restored.lower_bounds

    @given(datasets())
    @settings(max_examples=40, deadline=None)
    def test_loaded_groups_validate_clean(self, data):
        import tempfile
        from pathlib import Path

        result = mine_irgs(data, "C", minsup=1)
        with tempfile.TemporaryDirectory() as directory:
            path = Path(directory) / "groups.irgs"
            save_rule_groups(path, result.groups)
            loaded, _ = load_rule_groups(path)
        assert (
            validate_result(
                data, loaded, consequent="C", constraints=Constraints(minsup=1)
            )
            == []
        )

    @given(datasets())
    @settings(max_examples=40, deadline=None)
    def test_itemized_dataset_round_trip(self, data):
        import tempfile
        from pathlib import Path

        with tempfile.TemporaryDirectory() as directory:
            path = Path(directory) / "data.items"
            save_itemized(data, path)
            loaded = load_itemized(path)
        assert loaded.rows == data.rows
        assert loaded.labels == data.labels
        assert loaded.n_items == data.n_items


class TestDiscretizationProperties:
    @given(
        st.integers(min_value=2, max_value=25),
        st.integers(min_value=1, max_value=4),
        st.integers(min_value=2, max_value=6),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_equal_depth_one_item_per_gene(self, n_rows, n_genes, buckets, seed):
        import numpy as np

        from repro.data.discretize import EqualDepthDiscretizer
        from repro.data.matrix import GeneExpressionMatrix

        rng = np.random.default_rng(seed)
        matrix = GeneExpressionMatrix.from_arrays(
            rng.normal(size=(n_rows, n_genes)),
            ["a"] * (n_rows // 2) + ["b"] * (n_rows - n_rows // 2),
        )
        data = EqualDepthDiscretizer(n_buckets=buckets).fit_transform(matrix)
        for row in data.rows:
            assert len(row) == n_genes
        # Items never exceed the declared vocabulary.
        for row in data.rows:
            assert all(0 <= item < data.n_items for item in row)

    @given(
        st.integers(min_value=4, max_value=25),
        st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=50, deadline=None)
    def test_equal_depth_monotone_in_value(self, n_rows, seed):
        """Higher expression never lands in a lower bucket."""
        import numpy as np

        from repro.data.discretize import EqualDepthDiscretizer
        from repro.data.matrix import GeneExpressionMatrix

        rng = np.random.default_rng(seed)
        values = rng.normal(size=(n_rows, 1))
        matrix = GeneExpressionMatrix.from_arrays(values, ["a"] * n_rows)
        data = EqualDepthDiscretizer(n_buckets=4).fit_transform(matrix)
        items = [next(iter(row)) for row in data.rows]
        order = sorted(range(n_rows), key=lambda i: values[i, 0])
        buckets_in_value_order = [items[i] for i in order]
        assert buckets_in_value_order == sorted(buckets_in_value_order)
