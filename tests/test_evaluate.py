"""Unit tests for the evaluation harness."""

import numpy as np
import pytest

from repro.classify.base import majority_label
from repro.classify.evaluate import (
    confusion_matrix,
    cross_validate,
    evaluate_matrix_based,
    evaluate_rule_based,
    split_matrix,
)
from repro.classify.irg import IRGClassifier
from repro.classify.svm import LinearSVM
from repro.data.matrix import GeneExpressionMatrix
from repro.data.synthetic import BlockSpec, make_microarray
from repro.errors import DataError


def easy_matrix(seed=0, n=48):
    blocks = [
        BlockSpec(size=4, target_class=0, shift=5.0, penetrance=0.95, leakage=0.0),
        BlockSpec(size=4, target_class=1, shift=5.0, penetrance=0.95, leakage=0.0),
    ]
    return make_microarray(
        n_samples=n, n_genes=16, n_class1=n // 2, blocks=blocks,
        n_subtypes=0, seed=seed,
    )


class TestSplitMatrix:
    def test_partition(self):
        matrix = easy_matrix()
        train, test = split_matrix(matrix, range(0, 30), range(30, 48))
        assert train.n_samples == 30
        assert test.n_samples == 18

    def test_overlap_rejected(self):
        with pytest.raises(DataError):
            split_matrix(easy_matrix(), [0, 1], [1, 2])


def stratified_split(n=48):
    """Class-1 samples come first in the generator's output, so take a
    prefix of each class for training."""
    half = n // 2
    train = list(range(0, half // 2)) + list(range(half, half + half // 2))
    test = [index for index in range(n) if index not in set(train)]
    return train, test


class TestProtocols:
    def test_rule_based_protocol(self):
        matrix = easy_matrix()
        train_rows, test_rows = stratified_split()
        train, test = split_matrix(matrix, train_rows, test_rows)
        accuracy = evaluate_rule_based(IRGClassifier(), train, test)
        assert 0.0 <= accuracy <= 1.0
        assert accuracy >= 0.7

    def test_matrix_based_protocol(self):
        matrix = easy_matrix()
        train_rows, test_rows = stratified_split()
        train, test = split_matrix(matrix, train_rows, test_rows)
        accuracy = evaluate_matrix_based(LinearSVM(seed=0), train, test)
        assert accuracy >= 0.7

    def test_discretizer_fitted_on_train_only(self):
        """The test rows must not leak into discretizer fitting: a test
        set with out-of-range values still transforms fine."""
        matrix = easy_matrix()
        train_rows, test_rows = stratified_split()
        train, _ = split_matrix(matrix, train_rows, test_rows)
        wild = GeneExpressionMatrix.from_arrays(
            np.full((2, matrix.n_genes), 1e6),
            ["class1", "class0"],
            gene_names=matrix.gene_names,
        )
        accuracy = evaluate_rule_based(IRGClassifier(), train, wild)
        assert 0.0 <= accuracy <= 1.0


class TestConfusionMatrix:
    def test_counts(self):
        counts = confusion_matrix(["a", "a", "b"], ["a", "b", "b"])
        assert counts == {("a", "a"): 1, ("a", "b"): 1, ("b", "b"): 1}

    def test_length_mismatch(self):
        with pytest.raises(DataError):
            confusion_matrix(["a"], ["a", "b"])


class TestCrossValidate:
    def test_fold_accuracies(self):
        matrix = easy_matrix(n=40)
        scores = cross_validate(matrix, lambda: LinearSVM(seed=0), n_folds=4)
        assert len(scores) == 4
        assert all(0.0 <= score <= 1.0 for score in scores)
        assert sum(scores) / 4 >= 0.7

    def test_rule_based_cross_validation(self):
        matrix = easy_matrix(n=30)
        scores = cross_validate(matrix, IRGClassifier, n_folds=3)
        assert len(scores) == 3

    def test_validation(self):
        with pytest.raises(DataError):
            cross_validate(easy_matrix(), IRGClassifier, n_folds=1)
        with pytest.raises(DataError):
            cross_validate(easy_matrix(n=4), IRGClassifier, n_folds=10)


class TestMajorityLabel:
    def test_majority(self):
        assert majority_label(["a", "b", "a"]) == "a"

    def test_tie_first_appearance(self):
        assert majority_label(["b", "a", "a", "b"]) == "b"
