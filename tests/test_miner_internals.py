"""White-box tests of the baseline miners' internal machinery."""

import pytest

from repro.baselines.closet import _FPNode, _FPTree
from repro.core import bitset
from repro.data.dataset import ItemizedDataset


class TestFPTree:
    def test_shared_prefix_single_branch(self):
        tree = _FPTree()
        tree.insert([1, 2, 3], 1)
        tree.insert([1, 2], 1)
        assert len(tree.root.children) == 1
        node = tree.root.children[1]
        assert node.count == 2
        assert node.children[2].count == 2

    def test_header_links(self):
        tree = _FPTree()
        tree.insert([1, 2], 1)
        tree.insert([3, 2], 1)
        assert len(tree.header[2]) == 2
        assert tree.item_supports() == {1: 1, 2: 2, 3: 1}

    def test_single_path_detection(self):
        tree = _FPTree()
        tree.insert([1, 2, 3], 2)
        assert tree.is_single_path()
        assert tree.single_path() == [(1, 2), (2, 2), (3, 2)]
        tree.insert([1, 4], 1)
        assert not tree.is_single_path()

    def test_empty_tree_is_single_path(self):
        tree = _FPTree()
        assert tree.is_single_path()
        assert tree.single_path() == []

    def test_counts_accumulate(self):
        tree = _FPTree()
        tree.insert([5], 3)
        tree.insert([5], 4)
        assert tree.root.children[5].count == 7

    def test_node_slots(self):
        node = _FPNode(item=1, parent=None)
        with pytest.raises(AttributeError):
            node.unexpected = 1  # __slots__ keeps nodes lean


class TestCharmOrdering:
    def test_results_independent_of_item_relabelling(self):
        from repro.baselines.charm import mine_closed_charm

        rows = [[0, 1, 2], [1, 2], [0, 3], [2, 3]]
        data = ItemizedDataset.from_lists(
            rows, ["a", "a", "b", "b"], n_items=4
        )
        permutation = {0: 2, 1: 3, 2: 0, 3: 1}
        renamed = ItemizedDataset.from_lists(
            [[permutation[i] for i in row] for row in rows],
            ["a", "a", "b", "b"],
            n_items=4,
        )
        original = {c.items for c in mine_closed_charm(data, minsup=1)}
        mapped = {
            frozenset(permutation[i] for i in items) for items in original
        }
        renamed_result = {
            c.items for c in mine_closed_charm(renamed, minsup=1)
        }
        assert mapped == renamed_result

    def test_row_masks_consistent(self, paper_dataset):
        from repro.baselines.charm import mine_closed_charm

        for closed in mine_closed_charm(paper_dataset, minsup=2):
            rows = bitset.to_indices(closed.row_mask)
            for row_index in rows:
                assert closed.items <= paper_dataset.rows[row_index]
            assert len(rows) == closed.support


class TestCarpenterParity:
    def test_matches_farmer_machinery_on_class_blind_view(self, paper_dataset):
        """CARPENTER's closed sets == the union of upper bounds reachable
        from both consequents at minsup counting all rows."""
        from repro.baselines.carpenter import mine_closed_carpenter
        from repro.core.closure import close_itemset

        for closed in mine_closed_carpenter(paper_dataset, minsup=1):
            assert close_itemset(paper_dataset, closed.items) == closed.items


class TestColumnEInternals:
    def test_closure_function(self, paper_dataset):
        from conftest import letter_items

        from repro.baselines.columne import ColumnE
        from repro.core.constraints import Constraints
        from repro.data.transpose import TransposedTable

        miner = ColumnE(constraints=Constraints(minsup=1))
        table = TransposedTable.build(paper_dataset, "C")
        miner._table = table
        miner._item_tids = table.item_masks
        miner._n_items = len(table.item_masks)
        tids = table.rows_of_itemset(letter_items("eh"))
        closure = miner._closure(tids)
        assert closure == frozenset(letter_items("aeh"))
