"""Unit tests for the FARMER miner on the paper's running example."""

import pytest

from conftest import itemset_to_letters, letter_items

from repro import BudgetExceeded, Constraints, Farmer, SearchBudget, mine_irgs
from repro.data.dataset import ItemizedDataset


def upper_letters(result):
    return {itemset_to_letters(group.upper) for group in result.groups}


class TestPaperExample:
    def test_irgs_on_figure1(self, paper_dataset):
        result = mine_irgs(paper_dataset, "C", minsup=1)
        # Hand-derived from Figure 3 (see DESIGN.md §6): the five IRGs.
        assert upper_letters(result) == {"aco", "al", "a", "l", "qt"}

    def test_group_statistics(self, paper_dataset):
        result = mine_irgs(paper_dataset, "C", minsup=1)
        by_upper = {
            itemset_to_letters(group.upper): group for group in result.groups
        }
        aeh_absent = "aeh" not in by_upper  # dominated by "a" (conf 3/4)
        assert aeh_absent
        assert by_upper["a"].support == 3
        assert by_upper["a"].antecedent_support == 4
        assert by_upper["a"].rows == {0, 1, 2, 3}
        assert by_upper["aco"].confidence == 1.0
        assert by_upper["l"].confidence == pytest.approx(2 / 3)

    def test_minconf_filters(self, paper_dataset):
        result = mine_irgs(paper_dataset, "C", minsup=1, minconf=0.9)
        assert upper_letters(result) == {"aco", "al"}

    def test_minsup_filters(self, paper_dataset):
        result = mine_irgs(paper_dataset, "C", minsup=3)
        assert upper_letters(result) == {"a"}

    def test_other_consequent(self, paper_dataset):
        result = mine_irgs(paper_dataset, "N", minsup=2)
        # f is in rows 4,5 only: the pure-negative group.
        assert "f" in upper_letters(result)

    def test_lower_bounds_attached(self, paper_dataset):
        result = mine_irgs(
            paper_dataset, "C", minsup=1, compute_lower_bounds=True
        )
        by_upper = {
            itemset_to_letters(group.upper): group for group in result.groups
        }
        aco = by_upper["aco"]
        assert {itemset_to_letters(b) for b in aco.lower_bounds} == {"c", "o"}
        al = by_upper["al"]
        assert {itemset_to_letters(b) for b in al.lower_bounds} == {"al"}

    def test_example5_pruning2_fires(self, paper_dataset):
        result = mine_irgs(paper_dataset, "C", minsup=1)
        # The paper's Example 5 prunes node {3,4}; with all prunings on,
        # at least one Pruning-2 cut must fire on this dataset.
        assert result.counters.pruned_identified >= 1

    def test_example4_pruning1_compresses(self, paper_dataset):
        result = mine_irgs(paper_dataset, "C", minsup=1)
        # Example 4: row 4 is compressed at node {2,3}.
        assert result.counters.rows_compressed >= 1


class TestResultContainer:
    def test_sorted_groups(self, paper_dataset):
        result = mine_irgs(paper_dataset, "C", minsup=1)
        ordered = result.sorted_groups()
        confidences = [group.confidence for group in ordered]
        assert confidences == sorted(confidences, reverse=True)

    def test_len(self, paper_dataset):
        result = mine_irgs(paper_dataset, "C", minsup=1)
        assert len(result) == 5

    def test_elapsed_recorded(self, paper_dataset):
        result = mine_irgs(paper_dataset, "C", minsup=1)
        assert result.elapsed_seconds >= 0.0


class TestEdgeCases:
    def test_empty_items_dataset(self):
        data = ItemizedDataset.from_lists([[], []], ["C", "D"], n_items=0)
        result = mine_irgs(data, "C", minsup=1)
        assert result.groups == []

    def test_single_row(self):
        data = ItemizedDataset.from_lists([[0, 1]], ["C"], n_items=2)
        result = mine_irgs(data, "C", minsup=1)
        assert [sorted(g.upper) for g in result.groups] == [[0, 1]]

    def test_universal_items_reported_from_root(self):
        # Pruning 1 compresses every row at the root; the vocabulary-wide
        # group must still be reported (regression test).
        data = ItemizedDataset.from_lists(
            [[0, 1], [0, 1], [0, 1]], ["C", "C", "D"], n_items=2
        )
        result = mine_irgs(data, "C", minsup=1)
        assert [sorted(g.upper) for g in result.groups] == [[0, 1]]
        assert result.groups[0].antecedent_support == 3

    def test_all_rows_same_class(self):
        data = ItemizedDataset.from_lists(
            [[0], [0, 1], [1]], ["C", "C", "C"], n_items=2
        )
        result = mine_irgs(data, "C", minsup=1)
        for group in result.groups:
            assert group.confidence == 1.0

    def test_unknown_consequent_raises(self, paper_dataset):
        from repro.errors import DataError

        with pytest.raises(DataError):
            mine_irgs(paper_dataset, "NOPE", minsup=1)

    def test_minsup_zero_behaves(self, paper_dataset):
        # Zero-support antecedents are still never reported (a rule needs
        # a non-empty antecedent support to have a confidence).
        result = mine_irgs(paper_dataset, "C", minsup=0)
        for group in result.groups:
            assert group.antecedent_support >= 1


class TestPrunings:
    def test_unknown_pruning_rejected(self):
        with pytest.raises(ValueError):
            Farmer(prunings={"p9"})

    def test_disabled_prunings_same_result(self, paper_dataset):
        reference = mine_irgs(paper_dataset, "C", minsup=1, minconf=0.5)
        for prunings in [(), ("p1",), ("p3",), ("p1", "p2"), ("p1", "p3")]:
            result = mine_irgs(
                paper_dataset, "C", minsup=1, minconf=0.5, prunings=prunings
            )
            assert (
                result.upper_antecedents() == reference.upper_antecedents()
            ), prunings

    def test_disabling_prunings_costs_nodes(self, paper_dataset):
        full = mine_irgs(paper_dataset, "C", minsup=2, minconf=0.8)
        bare = mine_irgs(
            paper_dataset, "C", minsup=2, minconf=0.8, prunings=()
        )
        assert bare.counters.nodes >= full.counters.nodes


class TestBudget:
    def test_node_budget_raises(self, paper_dataset):
        with pytest.raises(BudgetExceeded) as info:
            mine_irgs(
                paper_dataset, "C", minsup=1, budget=SearchBudget(max_nodes=3)
            )
        assert info.value.nodes_expanded >= 3

    def test_generous_budget_passes(self, paper_dataset):
        result = mine_irgs(
            paper_dataset,
            "C",
            minsup=1,
            budget=SearchBudget(max_nodes=10_000, max_seconds=60),
        )
        assert len(result) == 5


class TestMineTable:
    def test_mine_table_equals_mine(self, paper_dataset):
        from repro.data.transpose import TransposedTable

        table = TransposedTable.build(paper_dataset, "C")
        direct = Farmer(Constraints(minsup=1)).mine_table(table)
        indirect = Farmer(Constraints(minsup=1)).mine(paper_dataset, "C")
        assert direct.upper_antecedents() == indirect.upper_antecedents()
