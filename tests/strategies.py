"""Shared hypothesis strategies for the property suites.

One home for the dataset and bitset generators that used to be copied
between ``test_npbitset.py`` and ``test_properties.py``, plus the
degenerate/skewed dataset families the scheduler and engine conformance
suites sweep.  Strategy highlights:

* :data:`n_rows_word_boundary` draws row counts across the 64-bit word
  boundary (including exactly 63/64/65) so one-word, exactly-full-word
  and straddling packed layouts are all exercised.
* :func:`datasets` draws small labelled datasets with at least one
  consequent row; :func:`degenerate_datasets` draws randomized
  instances of the shapes in ``conftest.MINEABLE_SHAPES`` (single row,
  all-identical rows, shared item, word-tail 63/64/65, one item).
* :func:`skewed_datasets` draws the Fig-10 skew shape — a dense block
  of overlapping rows conditioning one dominant enumeration subtree
  next to sparse disjoint filler rows — the workload the work-stealing
  scheduler exists for.
"""

from __future__ import annotations

from hypothesis import strategies as st

from conftest import MINEABLE_SHAPES, random_dataset
from repro.data.dataset import ItemizedDataset

__all__ = [
    "contingency",
    "datasets",
    "degenerate_datasets",
    "index_sets",
    "mask_and_rows",
    "masks_and_rows",
    "n_rows_word_boundary",
    "skewed_datasets",
]

#: Universes straddling the word boundary: 1..130 rows covers one-word,
#: exactly-64, 65-bit-straddle, and two-word layouts.
n_rows_word_boundary = st.integers(min_value=1, max_value=130)

#: Small frozensets of row indices (closure/measure algebra inputs).
index_sets = st.frozensets(st.integers(min_value=0, max_value=40), max_size=12)


@st.composite
def mask_and_rows(draw):
    """(mask, n_rows): a random bitset within a random universe."""
    n_rows = draw(n_rows_word_boundary)
    mask = draw(st.integers(min_value=0, max_value=(1 << n_rows) - 1))
    return mask, n_rows


@st.composite
def masks_and_rows(draw, max_masks=12):
    """(masks, n_rows): a random mask list within one universe."""
    n_rows = draw(n_rows_word_boundary)
    masks = draw(
        st.lists(
            st.integers(min_value=0, max_value=(1 << n_rows) - 1),
            max_size=max_masks,
        )
    )
    return masks, n_rows


@st.composite
def datasets(draw, max_rows=7, max_items=8):
    """A small labelled dataset with at least one 'C' row."""
    n_items = draw(st.integers(min_value=1, max_value=max_items))
    n_rows = draw(st.integers(min_value=1, max_value=max_rows))
    rows = [
        draw(
            st.frozensets(
                st.integers(min_value=0, max_value=n_items - 1),
                max_size=n_items,
            )
        )
        for _ in range(n_rows)
    ]
    labels = [draw(st.sampled_from(["C", "D"])) for _ in range(n_rows)]
    labels[0] = "C"
    return ItemizedDataset.from_lists(rows, labels, n_items=n_items)


@st.composite
def contingency(draw):
    """A feasible (x, y, n, m) rule contingency quadruple."""
    n = draw(st.integers(min_value=1, max_value=40))
    m = draw(st.integers(min_value=0, max_value=n))
    y = draw(st.integers(min_value=0, max_value=m))
    x = draw(st.integers(min_value=y, max_value=n - (m - y)))
    return x, y, n, m


@st.composite
def degenerate_datasets(draw, shapes=MINEABLE_SHAPES):
    """A randomized instance of one degenerate dataset family.

    Reuses ``conftest.random_dataset``'s shape machinery — hypothesis
    draws the family and the seed, so shrinking walks both.
    """
    shape = draw(st.sampled_from(shapes))
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return random_dataset(seed, shape=shape)


@st.composite
def skewed_datasets(draw, max_dense=8, max_sparse=10):
    """The Fig-10 skew: one dominant dense block plus sparse filler.

    The dense rows share a small vocabulary with high overlap, so the
    first ORD rows condition subtrees covering most of the unpruned
    search space; the sparse rows live in a disjoint item range and
    each collapse after a few expansions.  Supports are skewed by
    construction: dense items appear in most dense rows, sparse items
    in at most a couple of rows.
    """
    n_dense_items = draw(st.integers(min_value=4, max_value=8))
    n_dense = draw(st.integers(min_value=2, max_value=max_dense))
    n_sparse = draw(st.integers(min_value=0, max_value=max_sparse))
    n_sparse_items = draw(st.integers(min_value=2, max_value=6))
    rows = []
    for _ in range(n_dense):
        present = draw(
            st.lists(
                st.booleans(), min_size=n_dense_items, max_size=n_dense_items
            )
        )
        # Bias toward dense: every row keeps at least half the block.
        row = [item for item, keep in enumerate(present) if keep]
        if len(row) < n_dense_items // 2 + 1:
            row = list(range(n_dense_items // 2 + 1))
        rows.append(row)
    for _ in range(n_sparse):
        row = draw(
            st.lists(
                st.integers(
                    min_value=n_dense_items,
                    max_value=n_dense_items + n_sparse_items - 1,
                ),
                max_size=3,
            )
        )
        rows.append(sorted(set(row)))
    labels = [draw(st.sampled_from(["C", "D"])) for _ in rows]
    labels[0] = "C"
    return ItemizedDataset.from_lists(
        rows, labels, n_items=n_dense_items + n_sparse_items
    )
