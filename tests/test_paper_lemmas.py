"""The paper's lemmas, tested as stated.

Each test verifies one numbered claim from the paper directly against
randomized datasets (and the running example), independently of the
miner implementations — so a future refactor cannot silently weaken the
theory the prunings rest on.
"""

from itertools import combinations

import pytest

from conftest import letter_items, random_dataset

from repro.core import closure
from repro.core.measures import chi_square
from repro.data.dataset import ItemizedDataset


def rule_groups_by_support_set(data, consequent):
    """All rule groups, keyed by antecedent support set (brute force)."""
    groups = {}
    for size in range(1, data.n_rows + 1):
        for subset in combinations(range(data.n_rows), size):
            upper = closure.items_of(data, subset)
            if not upper:
                continue
            support_set = closure.rows_of(data, upper)
            groups.setdefault(support_set, upper)
    return groups


class TestLemma21UniqueUpperBound:
    """Lemma 2.1: a rule group has a unique upper bound."""

    def test_all_antecedents_with_same_rows_share_one_maximal(self):
        for seed in range(10):
            data = random_dataset(seed + 7000, max_rows=6, max_items=6)
            # For every itemset, its closure is the unique maximal
            # antecedent among itemsets with the same support set.
            by_rows = {}
            for size in range(1, data.n_items + 1):
                for itemset in combinations(range(data.n_items), size):
                    rows = closure.rows_of(data, itemset)
                    if not rows:
                        continue
                    by_rows.setdefault(rows, []).append(frozenset(itemset))
            for rows, antecedents in by_rows.items():
                maximal = [
                    a
                    for a in antecedents
                    if not any(a < other for other in antecedents)
                ]
                assert len(maximal) == 1, rows
                assert maximal[0] == closure.items_of(data, rows)


class TestLemma22Membership:
    """Lemma 2.2: anything between a lower and the upper bound is a
    member (same support set)."""

    def test_between_bounds_means_same_rows(self, paper_dataset):
        upper = frozenset(letter_items("aeh"))
        lower = frozenset(letter_items("e"))
        target_rows = closure.rows_of(paper_dataset, upper)
        assert closure.rows_of(paper_dataset, lower) == target_rows
        for size in range(len(lower), len(upper) + 1):
            for middle in combinations(sorted(upper), size):
                candidate = frozenset(middle)
                if lower <= candidate <= upper:
                    assert (
                        closure.rows_of(paper_dataset, candidate)
                        == target_rows
                    )


class TestLemma31NodeLabelIsUpperBound:
    """Lemma 3.1: I(X) is the upper bound of the group with support set
    R(I(X))."""

    def test_on_random_row_subsets(self):
        for seed in range(10):
            data = random_dataset(seed + 7100, max_rows=7, max_items=7)
            for size in range(1, data.n_rows + 1):
                for subset in combinations(range(data.n_rows), size):
                    items = closure.items_of(data, subset)
                    if not items:
                        continue
                    # I(X) is closed: no superset has the same rows.
                    assert closure.close_itemset(data, items) == items


class TestLemma32Completeness:
    """Lemma 3.2: row enumeration reaches every rule group."""

    def test_every_itemsets_group_is_reachable(self):
        for seed in range(8):
            data = random_dataset(seed + 7200, max_rows=6, max_items=6)
            reachable = rule_groups_by_support_set(data, "C")
            for size in range(1, data.n_items + 1):
                for itemset in combinations(range(data.n_items), size):
                    rows = closure.rows_of(data, itemset)
                    if rows:
                        assert rows in reachable, itemset


class TestLemma33ConditionalTables:
    """Lemma 3.3: TT|X restricted to r equals TT|X∪{r}."""

    def test_filtering_commutes(self, paper_dataset):
        from repro.core.enumeration import extend_items
        from repro.data.transpose import TransposedTable

        table = TransposedTable.build(paper_dataset, "C")
        ids = list(range(len(table.item_masks)))
        masks = list(table.item_masks)
        # Build TT|{0,1} two ways: 0 then 1, and 1 then 0.
        a_ids, a_masks = extend_items(*extend_items(ids, masks, 1 << 0), 1 << 1)
        b_ids, b_masks = extend_items(*extend_items(ids, masks, 1 << 1), 1 << 0)
        assert a_ids == b_ids and a_masks == b_masks
        # And it equals the direct definition: items containing both rows.
        expected = [
            item
            for item in ids
            if {0, 1} <= set(
                position
                for position in range(table.n)
                if table.item_masks[item] >> position & 1
            )
        ]
        assert a_ids == expected


class TestLemma35Pruning1:
    """Lemma 3.5: a candidate in every tuple never changes I(X ∪ R')."""

    def test_on_paper_example(self, paper_dataset):
        # Row 4 (index 3) occurs in every tuple of TT|{2,3} (Example 4).
        base = {1, 2}
        always_present = 3
        for extra_size in range(0, 2):
            for extra in combinations({0, 4}, extra_size):
                with_it = closure.items_of(
                    paper_dataset, base | {always_present} | set(extra)
                )
                without_it = closure.items_of(
                    paper_dataset, base | set(extra)
                )
                assert with_it == without_it

    def test_randomized(self):
        for seed in range(10):
            data = random_dataset(seed + 7300, max_rows=6, max_items=6)
            for base_size in range(1, data.n_rows):
                for base in combinations(range(data.n_rows), base_size):
                    items = closure.items_of(data, base)
                    if not items:
                        continue
                    support = closure.rows_of(data, items)
                    for row in support - set(base):
                        assert closure.items_of(
                            data, set(base) | {row}
                        ) == items


class TestLemma39ChiConvexity:
    """Lemma 3.9: chi is maximized at a vertex of the parallelogram."""

    def test_vertex_dominance_exhaustive(self):
        n, m = 10, 4
        for x in range(1, n + 1):
            for y in range(0, min(x, m) + 1):
                if x - y > n - m:
                    continue
                vertex_max = max(
                    chi_square(x - y + m, m, n, m),
                    chi_square(y + n - m, y, n, m),
                    chi_square(x, y, n, m),
                    chi_square(n, m, n, m),
                )
                interior_max = 0.0
                for x2 in range(x, n + 1):
                    for y2 in range(y, min(x2, m) + 1):
                        if x - y <= x2 - y2 <= n - m:
                            interior_max = max(
                                interior_max, chi_square(x2, y2, n, m)
                            )
                assert interior_max <= vertex_max + 1e-9

    def test_chi_of_full_table_is_zero(self):
        # chi(n, m) = 0, the discarded vertex.
        for n in range(2, 12):
            for m in range(1, n):
                assert chi_square(n, m, n, m) == 0.0


class TestLemma310LowerBoundShape:
    """Lemma 3.10: new lower bounds extend an invalidated one by one item
    outside the added closed set."""

    def test_incremental_step(self):
        from repro.core.minelb import mine_lower_bounds

        upper = frozenset(range(5))
        first = frozenset({0, 1, 2})
        before = set(mine_lower_bounds(upper, [first]))
        second = frozenset({2, 3, 4})
        after = set(mine_lower_bounds(upper, [first, second]))
        fresh = after - before
        gamma_1 = {bound for bound in before if bound <= second}
        for bound in fresh:
            # Lemma 3.10: fresh bound = l1 ∪ {i}, l1 ∈ Γ1 (an old bound
            # swallowed by the new closed set), i ∈ upper − second.
            assert any(
                item in (upper - second) and (bound - {item}) in gamma_1
                for item in bound
            ), sorted(bound)


class TestLemma311MaximalOutsideSetsSuffice:
    """Lemma 3.11: adding a subset of an already-added closed set never
    changes the lower bounds."""

    def test_subset_addition_is_noop(self):
        from repro.core.minelb import mine_lower_bounds

        upper = frozenset(range(6))
        big = frozenset({0, 1, 2, 3})
        small = frozenset({1, 2})  # subset of big
        with_big = mine_lower_bounds(upper, [big])
        with_both = mine_lower_bounds(upper, [big, small])
        assert set(with_big) == set(with_both)

    def test_randomized(self):
        import random

        rng = random.Random(99)
        from repro.core.minelb import mine_lower_bounds

        for _ in range(30):
            size = rng.randint(2, 6)
            upper = frozenset(range(size))
            big = frozenset(
                i for i in range(size) if rng.random() < 0.7
            ) - {rng.randrange(size)}
            if big == upper or not big:
                continue
            small = frozenset(i for i in big if rng.random() < 0.6)
            reference = set(mine_lower_bounds(upper, [big]))
            with_subset = set(mine_lower_bounds(upper, [big, small]))
            assert reference == with_subset
