"""Unit tests for interestingness measures, incl. the Lemma 3.9 bound."""

import math

import pytest

from repro.core import measures


class TestConfidence:
    def test_basic(self):
        assert measures.confidence(4, 3) == pytest.approx(0.75)

    def test_empty_antecedent_support(self):
        assert measures.confidence(0, 0) == 0.0

    def test_perfect(self):
        assert measures.confidence(5, 5) == 1.0


class TestChiSquare:
    def test_matches_textbook_formula(self):
        # x=|R(A)|=10, y=|R(A∪C)|=8, n=30, m=12: compute cells directly.
        x, y, n, m = 10, 8, 30, 12
        cells = [
            (y, x * m / n),
            (x - y, x * (n - m) / n),
            (m - y, (n - x) * m / n),
            (n - m - x + y, (n - x) * (n - m) / n),
        ]
        expected = sum((o - e) ** 2 / e for o, e in cells)
        assert measures.chi_square(x, y, n, m) == pytest.approx(expected)

    def test_degenerate_cases_are_zero(self):
        assert measures.chi_square(0, 0, 10, 5) == 0.0
        assert measures.chi_square(10, 5, 10, 5) == 0.0  # x == n
        assert measures.chi_square(4, 0, 10, 0) == 0.0  # m == 0
        assert measures.chi_square(4, 4, 10, 10) == 0.0  # m == n

    def test_chi_at_full_table_is_zero(self):
        # chi(n, m) = 0, the anchor of the Lemma 3.9 proof.
        assert measures.chi_square(20, 8, 20, 8) == 0.0

    def test_independent_is_zero(self):
        # Perfectly proportional table: no association.
        assert measures.chi_square(10, 5, 20, 10) == pytest.approx(0.0)

    def test_positive_association(self):
        assert measures.chi_square(5, 5, 10, 5) == pytest.approx(10.0)


class TestChiSquareUpperBound:
    def test_dominates_all_reachable_points(self):
        # Enumerate the whole parallelogram of Lemma 3.9 and check the
        # bound dominates chi at every feasible (x', y').
        n, m = 12, 5
        for x in range(1, n + 1):
            for y in range(0, min(x, m) + 1):
                if x - y > n - m:
                    continue
                bound = measures.chi_square_upper_bound(x, y, n, m)
                for x2 in range(x, n + 1):
                    for y2 in range(y, min(x2, m) + 1):
                        if not (x - y <= x2 - y2 <= n - m):
                            continue
                        assert (
                            measures.chi_square(x2, y2, n, m) <= bound + 1e-9
                        ), (x, y, x2, y2)

    def test_bound_at_least_current(self):
        assert measures.chi_square_upper_bound(
            6, 4, 20, 9
        ) >= measures.chi_square(6, 4, 20, 9)


class TestLift:
    def test_above_one_for_enriched(self):
        assert measures.lift(5, 5, 20, 10) == pytest.approx(2.0)

    def test_zero_for_empty(self):
        assert measures.lift(0, 0, 20, 10) == 0.0
        assert measures.lift(5, 0, 20, 0) == 0.0


class TestConviction:
    def test_infinite_for_exact_rule(self):
        assert measures.conviction(4, 4, 20, 10) == math.inf

    def test_value(self):
        # conf = 0.5, base negative rate = 0.5 -> conviction 1.0.
        assert measures.conviction(4, 2, 20, 10) == pytest.approx(1.0)

    def test_zero_for_empty(self):
        assert measures.conviction(0, 0, 20, 10) == 0.0


class TestEntropyGain:
    def test_perfect_split_recovers_class_entropy(self):
        # Antecedent exactly identifies the positive class.
        gain = measures.entropy_gain(10, 10, 20, 10)
        assert gain == pytest.approx(1.0)

    def test_useless_split_is_zero(self):
        assert measures.entropy_gain(10, 5, 20, 10) == pytest.approx(0.0)

    def test_empty_dataset(self):
        assert measures.entropy_gain(0, 0, 0, 0) == 0.0


class TestGiniGain:
    def test_perfect_split(self):
        assert measures.gini_gain(10, 10, 20, 10) == pytest.approx(0.5)

    def test_useless_split_is_zero(self):
        assert measures.gini_gain(10, 5, 20, 10) == pytest.approx(0.0)


class TestCorrelation:
    def test_sign_and_chi_relation(self):
        x, y, n, m = 6, 5, 20, 8
        phi = measures.correlation(x, y, n, m)
        assert phi > 0
        assert phi**2 * n == pytest.approx(measures.chi_square(x, y, n, m))

    def test_negative_association(self):
        assert measures.correlation(6, 0, 20, 8) < 0

    def test_degenerate(self):
        assert measures.correlation(0, 0, 20, 8) == 0.0


class TestTwoByTwo:
    def test_cells(self):
        table = measures.TwoByTwo(x=10, y=8, n=30, m=12)
        assert table.cells == (8, 2, 4, 16)
        assert sum(table.cells) == 30

    def test_validation(self):
        with pytest.raises(ValueError):
            measures.TwoByTwo(x=5, y=6, n=30, m=12)  # y > x
        with pytest.raises(ValueError):
            measures.TwoByTwo(x=5, y=2, n=30, m=40)  # m > n
        with pytest.raises(ValueError):
            measures.TwoByTwo(x=10, y=1, n=12, m=10)  # x-y > n-m


class TestRegistry:
    def test_all_measures_callable(self):
        for name, function in measures.MEASURES.items():
            value = function(6, 4, 20, 9)
            assert isinstance(value, float), name
