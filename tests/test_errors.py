"""Tests for the exception hierarchy."""

import pytest

from repro.errors import BudgetExceeded, ConstraintError, DataError, ReproError


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        for exception_type in (DataError, ConstraintError, BudgetExceeded):
            assert issubclass(exception_type, ReproError)

    def test_value_error_compatibility(self):
        # Library validation errors also read as ValueErrors to generic
        # callers.
        assert issubclass(DataError, ValueError)
        assert issubclass(ConstraintError, ValueError)
        assert issubclass(BudgetExceeded, RuntimeError)

    def test_budget_exceeded_carries_node_count(self):
        error = BudgetExceeded("over", nodes_expanded=42)
        assert error.nodes_expanded == 42
        assert "over" in str(error)

    def test_one_base_catches_everything(self, paper_dataset):
        from repro import SearchBudget, mine_irgs

        with pytest.raises(ReproError):
            mine_irgs(paper_dataset, "missing-label")
        with pytest.raises(ReproError):
            mine_irgs(
                paper_dataset, "C", budget=SearchBudget(max_nodes=1)
            )
