"""CLI tests for the mine --save / validate round trip and classifiers."""

import pytest

from repro.cli import main


class TestSaveValidate:
    def test_round_trip(self, tmp_path, capsys):
        groups_path = tmp_path / "ct.irgs"
        code = main(
            [
                "mine",
                "--dataset",
                "CT",
                "--scale",
                "0.01",
                "--minsup",
                "5",
                "--top",
                "0",
                "--save",
                str(groups_path),
            ]
        )
        assert code == 0
        assert groups_path.exists()
        capsys.readouterr()

        code = main(
            [
                "validate",
                "--dataset",
                "CT",
                "--scale",
                "0.01",
                "--groups",
                str(groups_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "all invariants hold" in out

    def test_validate_catches_corruption(self, tmp_path, capsys):
        groups_path = tmp_path / "ct.irgs"
        main(
            [
                "mine",
                "--dataset",
                "CT",
                "--scale",
                "0.01",
                "--minsup",
                "6",
                "--top",
                "0",
                "--save",
                str(groups_path),
            ]
        )
        capsys.readouterr()
        # Validate against a *different* dataset (more genes, different
        # cut points): invariants must break.  Note small scales clamp to
        # the generator's 64-gene floor, so 0.05 (100 genes) is the
        # nearest genuinely different workload.
        code = main(
            [
                "validate",
                "--dataset",
                "CT",
                "--scale",
                "0.05",
                "--groups",
                str(groups_path),
            ]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "problems" in out


class TestClassifierChoices:
    @pytest.mark.parametrize("name", ["tree", "cba"])
    def test_classifier_runs(self, name, capsys):
        code = main(
            [
                "classify",
                "--dataset",
                "CT",
                "--scale",
                "0.01",
                "--classifier",
                name,
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "test accuracy" in out
