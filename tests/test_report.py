"""Unit tests for the Markdown report generator."""

import pytest

from repro.experiments import (
    run_fig10,
    run_pruning_ablation,
    run_scaling,
    run_table1,
    run_table2,
)
from repro.experiments.report import markdown_report, write_report


@pytest.fixture(scope="module")
def sections():
    return {
        "table1": run_table1(("CT",), scale=0.01),
        "fig10": run_fig10(("CT",), scale=0.01, timeout=30, minsup_grid=[5]),
        "table2": run_table2(("CT",), scale=0.02),
        "scaling": run_scaling("CT", factors=(1, 2), scale=0.01, timeout=30, min_genes=1),
        "ablation": run_pruning_ablation("CT", scale=0.01, timeout=30),
    }


class TestMarkdownReport:
    def test_contains_all_sections(self, sections):
        text = markdown_report(sections, scale=0.01)
        assert "# FARMER reproduction" in text
        assert "## Table 1" in text
        assert "## Figure 10" in text
        assert "## Table 2" in text
        assert "## Row-replication scaling" in text
        assert "## Pruning ablation" in text
        assert "`0.01`" in text

    def test_markdown_tables_well_formed(self, sections):
        text = markdown_report(sections)
        for line in text.splitlines():
            if line.startswith("|"):
                assert line.endswith("|")

    def test_table2_includes_paper_column(self, sections):
        text = markdown_report({"table2": sections["table2"]})
        assert "IRG paper" in text
        assert "93.33%" in text  # the paper's CT IRG accuracy

    def test_unknown_section_raises(self):
        with pytest.raises(KeyError):
            markdown_report({"fig99": []})

    def test_write_report(self, tmp_path, sections):
        path = write_report(tmp_path / "run.md", {"table1": sections["table1"]})
        assert path.exists()
        assert "## Table 1" in path.read_text()

    def test_subset_of_sections(self, sections):
        text = markdown_report({"table1": sections["table1"]})
        assert "## Figure 10" not in text
