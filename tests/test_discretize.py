"""Unit tests for equal-depth and entropy-MDL discretization."""

import numpy as np
import pytest

from repro.data.discretize import EntropyMDLDiscretizer, EqualDepthDiscretizer
from repro.data.matrix import GeneExpressionMatrix
from repro.errors import DataError


def matrix_from(values, labels):
    return GeneExpressionMatrix.from_arrays(np.asarray(values, float), labels)


class TestEqualDepth:
    def test_one_item_per_gene_per_row(self):
        rng = np.random.default_rng(0)
        matrix = matrix_from(rng.normal(size=(30, 4)), ["a"] * 15 + ["b"] * 15)
        data = EqualDepthDiscretizer(n_buckets=10).fit_transform(matrix)
        for row in data.rows:
            assert len(row) == 4  # exactly one bucket per gene

    def test_buckets_roughly_equal_depth(self):
        values = np.arange(100, dtype=float).reshape(100, 1)
        matrix = matrix_from(values, ["a"] * 100)
        discretizer = EqualDepthDiscretizer(n_buckets=10).fit(matrix)
        data = discretizer.transform(matrix)
        counts = {}
        for row in data.rows:
            (item,) = row
            counts[item] = counts.get(item, 0) + 1
        assert len(counts) == 10
        assert set(counts.values()) == {10}

    def test_constant_gene_single_bucket(self):
        matrix = matrix_from([[1.0], [1.0], [1.0]], ["a", "a", "b"])
        data = EqualDepthDiscretizer(n_buckets=10).fit_transform(matrix)
        items = {next(iter(row)) for row in data.rows}
        assert len(items) == 1

    def test_transform_unseen_values(self):
        train = matrix_from([[0.0], [1.0], [2.0], [3.0]], ["a"] * 4)
        discretizer = EqualDepthDiscretizer(n_buckets=2).fit(train)
        test = matrix_from([[-100.0], [100.0]], ["a", "a"])
        data = discretizer.transform(test)
        low = next(iter(data.rows[0]))
        high = next(iter(data.rows[1]))
        assert low != high  # extremes land in opposite buckets

    def test_item_names_carry_gene(self):
        matrix = GeneExpressionMatrix.from_arrays(
            [[0.0, 1.0]], ["a"], gene_names=["TP53", "BRCA1"]
        )
        data = EqualDepthDiscretizer(n_buckets=2).fit(
            matrix_from([[0.0, 1.0], [1.0, 0.0]], ["a", "b"])
        ).transform(matrix)
        names = {data.item_name(item) for item in data.rows[0]}
        assert any(name.startswith("g0@") for name in names)

    def test_transform_before_fit(self):
        with pytest.raises(DataError):
            EqualDepthDiscretizer().transform(matrix_from([[0.0]], ["a"]))

    def test_gene_count_mismatch(self):
        discretizer = EqualDepthDiscretizer().fit(matrix_from([[0.0]], ["a"]))
        with pytest.raises(DataError):
            discretizer.transform(matrix_from([[0.0, 1.0]], ["a"]))

    def test_invalid_buckets(self):
        with pytest.raises(DataError):
            EqualDepthDiscretizer(n_buckets=0)

    def test_deterministic(self):
        rng = np.random.default_rng(4)
        matrix = matrix_from(rng.normal(size=(20, 3)), ["a"] * 10 + ["b"] * 10)
        first = EqualDepthDiscretizer(5).fit_transform(matrix)
        second = EqualDepthDiscretizer(5).fit_transform(matrix)
        assert first.rows == second.rows


class TestEntropyMDL:
    def test_separable_gene_is_cut(self):
        # Class a: values around 0, class b: values around 10.
        values = [[v] for v in [0.0, 0.1, 0.2, 0.3, 10.0, 10.1, 10.2, 10.3]]
        labels = ["a"] * 4 + ["b"] * 4
        discretizer = EntropyMDLDiscretizer().fit(matrix_from(values, labels))
        assert discretizer.n_kept_genes == 1
        data = discretizer.transform(matrix_from(values, labels))
        class_a_items = {next(iter(row)) for row in data.rows[:4]}
        class_b_items = {next(iter(row)) for row in data.rows[4:]}
        assert class_a_items.isdisjoint(class_b_items)

    def test_noise_gene_is_dropped(self):
        rng = np.random.default_rng(1)
        values = rng.normal(size=(40, 1))
        labels = ["a"] * 20 + ["b"] * 20
        discretizer = EntropyMDLDiscretizer().fit(matrix_from(values, labels))
        assert discretizer.n_kept_genes == 0
        data = discretizer.transform(matrix_from(values, labels))
        assert all(len(row) == 0 for row in data.rows)
        assert data.n_items == 0

    def test_cut_between_classes(self):
        values = [[0.0], [1.0], [2.0], [10.0], [11.0], [12.0]]
        labels = ["a", "a", "a", "b", "b", "b"]
        discretizer = EntropyMDLDiscretizer().fit(matrix_from(values, labels))
        cuts = discretizer._cuts[0]
        assert len(cuts) == 1
        assert 2.0 < cuts[0] < 10.0

    def test_ties_never_split(self):
        # Identical values with different classes cannot be separated.
        values = [[1.0], [1.0], [1.0], [1.0]]
        labels = ["a", "b", "a", "b"]
        discretizer = EntropyMDLDiscretizer().fit(matrix_from(values, labels))
        assert discretizer.n_kept_genes == 0

    def test_transform_before_fit(self):
        with pytest.raises(DataError):
            EntropyMDLDiscretizer().transform(matrix_from([[0.0]], ["a"]))

    def test_max_depth_validation(self):
        with pytest.raises(DataError):
            EntropyMDLDiscretizer(max_depth=0)

    def test_mixed_matrix(self):
        # One informative gene + one noise gene: only one kept.
        rng = np.random.default_rng(2)
        informative = np.concatenate([rng.normal(0, 0.2, 20), rng.normal(5, 0.2, 20)])
        noise = rng.normal(size=40)
        values = np.column_stack([informative, noise])
        labels = ["a"] * 20 + ["b"] * 20
        discretizer = EntropyMDLDiscretizer().fit(matrix_from(values, labels))
        assert discretizer.n_kept_genes == 1

    def test_deterministic(self):
        rng = np.random.default_rng(3)
        values = np.column_stack(
            [
                np.concatenate([rng.normal(0, 1, 15), rng.normal(3, 1, 15)]),
                rng.normal(size=30),
            ]
        )
        labels = ["a"] * 15 + ["b"] * 15
        matrix = matrix_from(values, labels)
        first = EntropyMDLDiscretizer().fit_transform(matrix)
        second = EntropyMDLDiscretizer().fit_transform(matrix)
        assert first.rows == second.rows
