"""Unit tests for the preprocessing substrate."""

import numpy as np
import pytest

from repro.data.matrix import GeneExpressionMatrix
from repro.data.preprocess import (
    LogTransform,
    MissingValueImputer,
    QuantileNormalizer,
    fold_change_filter,
    variance_filter,
)
from repro.errors import DataError


def matrix(values, labels=None):
    values = np.asarray(values, dtype=float)
    labels = labels or ["x"] * values.shape[0]
    return GeneExpressionMatrix.from_arrays(values, labels)


class TestImputer:
    def test_mean_imputation(self):
        raw = np.array([[1.0, np.nan], [3.0, 4.0]])
        filled = MissingValueImputer("mean").fit(raw).transform(raw)
        assert filled[0, 1] == 4.0
        assert filled[0, 0] == 1.0

    def test_median_imputation(self):
        raw = np.array([[1.0], [np.nan], [9.0], [2.0]])
        filled = MissingValueImputer("median").fit(raw).transform(raw)
        assert filled[1, 0] == 2.0

    def test_all_missing_gene_fills_zero(self):
        raw = np.array([[np.nan], [np.nan]])
        filled = MissingValueImputer().fit(raw).transform(raw)
        assert (filled == 0.0).all()

    def test_train_statistics_applied_to_test(self):
        train = np.array([[10.0], [20.0]])
        imputer = MissingValueImputer().fit(train)
        test = np.array([[np.nan]])
        assert imputer.transform(test)[0, 0] == 15.0

    def test_to_matrix(self):
        raw = np.array([[1.0, np.nan]])
        result = MissingValueImputer().fit(raw).to_matrix(raw, ["a"])
        assert isinstance(result, GeneExpressionMatrix)
        assert np.isfinite(result.values).all()

    def test_validation(self):
        with pytest.raises(DataError):
            MissingValueImputer("mode")
        with pytest.raises(DataError):
            MissingValueImputer().transform(np.zeros((1, 1)))
        imputer = MissingValueImputer().fit(np.zeros((2, 3)))
        with pytest.raises(DataError):
            imputer.transform(np.zeros((2, 5)))


class TestQuantileNormalizer:
    def test_samples_share_distribution(self):
        data = matrix([[1.0, 5.0, 3.0], [100.0, 2.0, 50.0]])
        normalized = QuantileNormalizer().fit_transform(data)
        first = np.sort(normalized.values[0])
        second = np.sort(normalized.values[1])
        assert np.allclose(first, second)

    def test_rank_order_preserved(self):
        data = matrix([[1.0, 5.0, 3.0]])
        normalized = QuantileNormalizer().fit_transform(data)
        assert (
            np.argsort(normalized.values[0]).tolist()
            == np.argsort(data.values[0]).tolist()
        )

    def test_transform_before_fit(self):
        with pytest.raises(DataError):
            QuantileNormalizer().transform(matrix([[1.0]]))

    def test_gene_count_mismatch(self):
        normalizer = QuantileNormalizer().fit(matrix([[1.0, 2.0]]))
        with pytest.raises(DataError):
            normalizer.transform(matrix([[1.0]]))


class TestLogTransform:
    def test_log2(self):
        data = matrix([[1.0, 3.0]])
        logged = LogTransform(offset=1.0).transform(data)
        assert logged.values[0, 0] == pytest.approx(1.0)
        assert logged.values[0, 1] == pytest.approx(2.0)

    def test_nonpositive_rejected(self):
        with pytest.raises(DataError):
            LogTransform(offset=0.0).transform(matrix([[0.0]]))


class TestVarianceFilter:
    def test_keeps_highest_variance(self):
        data = matrix([[0.0, 0.0, -5.0], [0.0, 1.0, 5.0]])
        kept = variance_filter(data, keep=1)
        assert kept.gene_names == ("g2",)

    def test_keep_larger_than_genes(self):
        data = matrix([[1.0, 2.0]])
        assert variance_filter(data, keep=10).n_genes == 2

    def test_validation(self):
        with pytest.raises(DataError):
            variance_filter(matrix([[1.0]]), keep=0)


class TestFoldChangeFilter:
    def test_keeps_spread_genes(self):
        data = matrix([[1.0, 1.0], [10.0, 1.1]])
        kept = fold_change_filter(data, min_ratio=5.0, min_difference=2.0)
        assert kept.gene_names == ("g0",)

    def test_all_removed_raises(self):
        data = matrix([[1.0], [1.0]])
        with pytest.raises(DataError):
            fold_change_filter(data, min_ratio=100.0, min_difference=50.0)

    def test_negative_values_handled(self):
        data = matrix([[-5.0, 0.0], [5.0, 0.1]])
        kept = fold_change_filter(data, min_ratio=2.0, min_difference=1.0)
        assert "g0" in kept.gene_names

    def test_validation(self):
        with pytest.raises(DataError):
            fold_change_filter(matrix([[1.0]]), min_ratio=0.5)
