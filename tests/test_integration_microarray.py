"""End-to-end integration on realistic (small-scale) microarray workloads.

These tests run the full pipeline — registry generation, equal-depth
discretization, mining with all engines, classification — at a scale a CI
machine handles in seconds, pinning the cross-system agreements the paper
relies on.
"""

import pytest

from repro import Constraints, Farmer, SearchBudget, mine_irgs
from repro.baselines import (
    mine_closed_carpenter,
    mine_closed_charm,
    mine_closed_closet,
    mine_irgs_columnwise,
)
from repro.data.discretize import EqualDepthDiscretizer
from repro.data.registry import PAPER_DATASETS, load
from repro.extensions import mine_closed_cobbler


@pytest.fixture(scope="module")
def ct_workload():
    matrix = load("CT", scale=0.01)
    data = EqualDepthDiscretizer(n_buckets=10).fit_transform(matrix)
    return data, PAPER_DATASETS["CT"].class1


class TestMinerAgreementAtScale:
    def test_farmer_equals_columne(self, ct_workload):
        data, consequent = ct_workload
        farmer = mine_irgs(data, consequent, minsup=5, minconf=0.0)
        columne = mine_irgs_columnwise(data, consequent, minsup=5)
        assert farmer.upper_antecedents() == {g.upper for g in columne}
        assert len(farmer.groups) > 0

    def test_closed_miners_agree(self, ct_workload):
        data, _ = ct_workload
        charm = {c.items for c in mine_closed_charm(data, minsup=5)}
        closet = {c.items for c in mine_closed_closet(data, minsup=5)}
        carpenter = {c.items for c in mine_closed_carpenter(data, minsup=5)}
        cobbler = {c.items for c in mine_closed_cobbler(data, minsup=5)}
        assert charm == closet == carpenter == cobbler
        assert len(charm) > 0

    def test_irgs_are_subset_of_closed_sets(self, ct_workload):
        """Every IRG upper bound is a closed itemset (Lemma 2.1)."""
        data, consequent = ct_workload
        farmer = mine_irgs(data, consequent, minsup=5)
        closed = {c.items for c in mine_closed_charm(data, minsup=5)}
        for upper in farmer.upper_antecedents():
            assert upper in closed


class TestMonotonicities:
    """The count/pruning monotonicities behind Figures 10 and 11."""

    def test_irg_count_grows_as_minsup_falls(self, ct_workload):
        data, consequent = ct_workload
        counts = [
            len(mine_irgs(data, consequent, minsup=minsup).groups)
            for minsup in (6, 5, 4)
        ]
        assert counts == sorted(counts)

    def test_irg_count_falls_as_minconf_rises(self, ct_workload):
        data, consequent = ct_workload
        counts = [
            len(mine_irgs(data, consequent, minsup=4, minconf=c).groups)
            for c in (0.0, 0.7, 0.99)
        ]
        assert counts == sorted(counts, reverse=True)

    def test_confidence_pruning_reduces_nodes(self, ct_workload):
        data, consequent = ct_workload
        low = mine_irgs(data, consequent, minsup=4, minconf=0.0)
        high = mine_irgs(data, consequent, minsup=4, minconf=0.95)
        assert high.counters.nodes <= low.counters.nodes

    def test_chi_pruning_reduces_nodes(self, ct_workload):
        data, consequent = ct_workload
        without = mine_irgs(data, consequent, minsup=4, minconf=0.8, minchi=0.0)
        with_chi = mine_irgs(
            data, consequent, minsup=4, minconf=0.8, minchi=10.0
        )
        assert with_chi.counters.nodes <= without.counters.nodes
        assert len(with_chi.groups) <= len(without.groups)

    def test_chi_filter_consistency(self, ct_workload):
        """Groups surviving minchi=10 all have chi >= 10, and they are a
        subset of the minchi=0 result... interestingness caveat: pruning
        by chi changes the comparison pool, so subset holds on uppers
        satisfying chi."""
        data, consequent = ct_workload
        strict = mine_irgs(data, consequent, minsup=4, minchi=10.0)
        for group in strict.groups:
            assert group.chi_square >= 10.0


class TestReplication:
    def test_replicated_dataset_scales_counts(self, ct_workload):
        data, consequent = ct_workload
        doubled = data.replicate(2)
        base = mine_irgs(data, consequent, minsup=5)
        scaled = mine_irgs(doubled, consequent, minsup=10)
        # Same patterns exist with doubled support.
        assert scaled.upper_antecedents() == base.upper_antecedents()
        base_stats = {g.upper: g.support for g in base.groups}
        for group in scaled.groups:
            assert group.support == 2 * base_stats[group.upper]


class TestTruncatedMining:
    def test_non_strict_budget_returns_partial(self, ct_workload):
        data, consequent = ct_workload
        miner = Farmer(
            constraints=Constraints(minsup=4),
            budget=SearchBudget(max_nodes=200, strict=False),
        )
        result = miner.mine(data, consequent)
        assert result.truncated
        full = mine_irgs(data, consequent, minsup=4)
        assert len(result.groups) <= len(full.groups)
        # Partial groups are still genuine rule groups.
        full_uppers = full.upper_antecedents()
        for group in result.groups:
            assert group.upper in full_uppers or group.antecedent_support > 0
