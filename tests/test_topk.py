"""Unit tests for top-k IRG mining (extension)."""

import pytest

from conftest import random_dataset

from repro import mine_irgs
from repro.errors import ConstraintError
from repro.extensions import mine_topk_irgs


class TestTopK:
    def test_returns_at_most_k(self, paper_dataset):
        groups = mine_topk_irgs(paper_dataset, "C", k=2, minsup=1)
        assert len(groups) == 2

    def test_sorted_by_confidence(self, paper_dataset):
        groups = mine_topk_irgs(paper_dataset, "C", k=4, minsup=1)
        confidences = [group.confidence for group in groups]
        assert confidences == sorted(confidences, reverse=True)

    def test_matches_full_mine_prefix(self, paper_dataset):
        full = mine_irgs(paper_dataset, "C", minsup=1).sorted_groups()
        top = mine_topk_irgs(paper_dataset, "C", k=3, minsup=1)
        assert [g.upper for g in top] == [g.upper for g in full[:3]]

    def test_k_larger_than_population(self, paper_dataset):
        groups = mine_topk_irgs(paper_dataset, "C", k=100, minsup=1)
        assert len(groups) == 5  # the dataset only has 5 IRGs

    def test_randomized_consistency(self):
        for seed in range(10):
            data = random_dataset(seed + 400)
            full = mine_irgs(data, "C", minsup=1).sorted_groups()
            top = mine_topk_irgs(data, "C", k=3, minsup=1)
            assert [g.upper for g in top] == [g.upper for g in full[:3]]

    def test_lower_bounds_option(self, paper_dataset):
        groups = mine_topk_irgs(
            paper_dataset, "C", k=2, minsup=1, compute_lower_bounds=True
        )
        assert all(group.lower_bounds for group in groups)

    def test_validation(self, paper_dataset):
        with pytest.raises(ConstraintError):
            mine_topk_irgs(paper_dataset, "C", k=0)
        with pytest.raises(ConstraintError):
            mine_topk_irgs(paper_dataset, "C", k=1, relax_factor=1.5)
        with pytest.raises(ConstraintError):
            mine_topk_irgs(paper_dataset, "C", k=1, start_confidence=2.0)
