"""Deriving interesting rule groups from closed-itemset miner output.

The paper compares FARMER against CHARM even though CHARM "only"
discovers closed itemsets, because closed itemsets are rule-group upper
bounds waiting for class counts: the closed sets over the whole dataset
include every rule group's upper bound, and each closed set's supporting
rows split into per-class counts.  This module completes that pipeline —
:func:`groups_from_closed` attaches class statistics, dedupes by support
set and (optionally) applies constraints plus the Step 7 interestingness
filter — so *any* of the closed miners (CHARM, CLOSET+, CARPENTER,
COBBLER) can stand in for FARMER end-to-end.

Correctness subtlety: a class-blind closed set is closed over *all*
rows, while a rule-group upper bound is ``I(R(A))`` — the same thing —
so the closed-set family is exactly the upper-bound family (restricted
to support >= the mining threshold).  The test suite pins
``FARMER == CHARM -> groups_from_closed`` on randomized data.

This is also the honest accounting behind Figure 10: CHARM's runtime in
the comparison excludes this conversion, i.e. the baseline is given its
best case.
"""

from __future__ import annotations

from typing import Hashable, Iterable

from ..core import bitset
from ..core.constraints import Constraints
from ..core.rulegroup import RuleGroup
from ..data.dataset import ItemizedDataset
from ..errors import DataError
from .charm import ClosedItemset

__all__ = ["groups_from_closed", "interesting_groups_from_closed"]


def groups_from_closed(
    dataset: ItemizedDataset,
    closed_itemsets: Iterable[ClosedItemset],
    consequent: Hashable,
) -> list[RuleGroup]:
    """Turn class-blind closed itemsets into rule groups for a class.

    Duplicated support sets (which a correct closed miner never emits,
    but deserialized or concatenated inputs might) are rejected.

    Returns groups sorted by (|upper|, items) — the subset-compatible
    order the interestingness filter needs.
    """
    m = dataset.class_count(consequent)
    if m == 0:
        raise DataError(
            f"consequent {consequent!r} does not occur in dataset "
            f"{dataset.name!r}"
        )
    positive_mask = 0
    for index, label in enumerate(dataset.labels):
        if label == consequent:
            positive_mask |= 1 << index

    groups: list[RuleGroup] = []
    seen: set[int] = set()
    for closed in closed_itemsets:
        if closed.row_mask in seen:
            raise DataError(
                f"duplicate support set for closed itemset "
                f"{sorted(closed.items)}"
            )
        seen.add(closed.row_mask)
        supp = bitset.bit_count(closed.row_mask & positive_mask)
        groups.append(
            RuleGroup(
                upper=closed.items,
                consequent=consequent,
                rows=frozenset(bitset.iter_bits(closed.row_mask)),
                support=supp,
                antecedent_support=closed.support,
                n=dataset.n_rows,
                m=m,
            )
        )
    groups.sort(key=lambda group: (len(group.upper), sorted(group.upper)))
    return groups


def interesting_groups_from_closed(
    dataset: ItemizedDataset,
    closed_itemsets: Iterable[ClosedItemset],
    consequent: Hashable,
    constraints: Constraints | None = None,
) -> list[RuleGroup]:
    """The full FARMER-equivalent pipeline over closed-miner output.

    Applies the thresholds and the Step 7 admission rule
    (smallest-antecedent-first, compare against admitted groups only).

    Caveat: this matches FARMER exactly only when ``closed_itemsets``
    covers every rule group that satisfies the constraints — i.e. the
    closed miner must have been run with a row-count ``minsup`` no larger
    than the rule-support threshold (``ClosedItemset.support >=
    |R(A ∪ C)|`` always, so ``Charm(minsup=constraints.minsup)`` is
    sufficient).
    """
    constraints = constraints if constraints is not None else Constraints()
    admitted: list[RuleGroup] = []
    for group in groups_from_closed(dataset, closed_itemsets, consequent):
        if not constraints.satisfied_by(
            group.support,
            group.antecedent_support - group.support,
            group.n,
            group.m,
        ):
            continue
        dominated = any(
            other.upper < group.upper and other.confidence >= group.confidence
            for other in admitted
        )
        if not dominated:
            admitted.append(group)
    return admitted
