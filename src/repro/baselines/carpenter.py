"""CARPENTER — row-enumeration closed pattern mining (Pan et al., KDD'03).

FARMER's predecessor (reference [17] of the paper) and the third system
in our scaling benchmark: it mines all *frequent closed patterns* (no
classes, no interestingness) by the same depth-first row enumeration,
with the row-enumeration analogues of FARMER's prunings:

* Pruning 1 — rows present in every tuple of the conditional table are
  folded into the node instead of being enumerated;
* Pruning 2 — a skipped earlier row present in every tuple proves the
  subtree was enumerated before;
* Pruning 3 — ``minsup`` pruning: a node can contribute patterns of
  support at most ``|R(I(X))| + |remaining candidates|``.

Support here is a plain row count; results match CHARM / CLOSET+ /
the brute-force oracle exactly (tests pin this three-way agreement).

The traversal runs on the fused kernel (:mod:`repro.core.kernel`): a
node's conditional table is carried lazily as (parent table, row bit) and
materialized with :meth:`~repro.core.kernel.CondTable.extend`, which
builds the child table *and* its intersection/union in one pass — halving
the per-node table walks of the original extend-then-scan loop.  Item
order inside a table is support-sorted (a kernel invariant); emitted
itemsets become frozensets, so results are order-identical to before.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core import bitset
from ..core.enumeration import SearchBudget
from ..core.kernel import CondTable, CondTableProtocol
from ..data.dataset import ItemizedDataset
from ..errors import ConstraintError
from .charm import ClosedItemset

if TYPE_CHECKING:
    from ..obs.telemetry import Telemetry

__all__ = ["Carpenter", "mine_closed_carpenter"]


@dataclass
class Carpenter:
    """CARPENTER closed-pattern miner.

    Args:
        minsup: minimum number of supporting rows (>= 1).
        budget: optional node/time limits.
        engine: conditional-table backend, an engine name from
            :data:`repro.core.farmer.ENGINES`.  The traversal only
            touches the :class:`~repro.core.kernel.CondTableProtocol`
            surface, so ``"numpy"`` swaps in the packed-uint64 table
            with byte-identical results; ``None`` (the default) honors
            the ``FARMER_ENGINE`` environment default.  ``"reference"``
            has no table of its own and runs on the kernel table.
        telemetry: optional observability sink; when set, the mine
            emits ``run_start``/``run_end`` events, a ``search`` phase,
            and ``carpenter.*`` counters.  ``None`` (the default) keeps
            the hot path untouched.
    """

    minsup: int = 1
    budget: SearchBudget = field(default_factory=SearchBudget)
    engine: str | None = None
    telemetry: "Telemetry | None" = None

    def __post_init__(self) -> None:
        if self.minsup < 1:
            raise ConstraintError(f"minsup must be >= 1, got {self.minsup}")
        from ..core.farmer import _validate_engine, default_engine

        self.engine = (
            default_engine()
            if self.engine is None
            else _validate_engine(self.engine)
        )

    def _build_table(self, item_masks: list[int]) -> CondTableProtocol:
        """The root conditional table on this miner's engine backend."""
        if self.engine == "numpy":
            from ..core.npbitset import NumpyCondTable

            return NumpyCondTable.build(item_masks, self._all_rows)
        return CondTable.build(item_masks, self._all_rows)

    def mine(self, dataset: ItemizedDataset) -> list[ClosedItemset]:
        """Mine all closed itemsets with support >= ``minsup``."""
        import sys

        self.budget.start()
        self._n = dataset.n_rows
        self._all_rows = bitset.universe(self._n)
        self._results: list[tuple[tuple[int, ...], int]] = []
        self._seen: set[int] = set()

        item_masks = [0] * dataset.n_items
        for row_index, row in enumerate(dataset.rows):
            bit = 1 << row_index
            for item in row:
                item_masks[item] |= bit

        if self.telemetry is not None:
            self.telemetry.run_start(
                algorithm="carpenter",
                n_rows=dataset.n_rows,
                n_items=dataset.n_items,
                minsup=self.minsup,
            )
        if self._n and dataset.n_items:
            old_limit = sys.getrecursionlimit()
            sys.setrecursionlimit(max(old_limit, self._n * 4 + 1000))
            try:
                if self.telemetry is not None:
                    with self.telemetry.phase("search"):
                        self._visit(
                            table=self._build_table(item_masks),
                            row_bit=0,
                            x_mask=0,
                            cand=self._all_rows,
                            p1_removed=0,
                        )
                else:
                    self._visit(
                        table=self._build_table(item_masks),
                        row_bit=0,
                        x_mask=0,
                        cand=self._all_rows,
                        p1_removed=0,
                    )
            finally:
                sys.setrecursionlimit(old_limit)

        results = [
            ClosedItemset(
                items=frozenset(items),
                support=bitset.bit_count(row_mask),
                row_mask=row_mask,
            )
            for items, row_mask in self._results
        ]
        results.sort(key=lambda c: (-c.support, sorted(c.items)))
        if self.telemetry is not None:
            self.telemetry.add_counters(
                {
                    "carpenter.nodes": self.budget.nodes,
                    "carpenter.closed_sets": len(results),
                }
            )
            self.telemetry.run_end(closed_sets=len(results))
        return results

    # ------------------------------------------------------------------

    def _visit(
        self,
        table: CondTableProtocol,
        row_bit: int,
        x_mask: int,
        cand: int,
        p1_removed: int,
    ) -> None:
        self.budget.tick()

        # Fused materialize + scan: ``table`` is the parent's table until
        # extended by this node's row bit (one pass; Lemma 3.3 + scan).
        # A candidate row always occurs in some tuple of the parent
        # (it is drawn from the union), so the child table is never empty.
        if row_bit:
            table = table.extend(row_bit)
        intersection = table.inter
        union = table.union

        # Pruning 2: an earlier, never-compressed row in every tuple.
        witness = intersection & ~x_mask & ~cand & ~p1_removed
        if witness:
            return

        support = bitset.bit_count(intersection)

        # Pruning 3: even taking every remaining candidate cannot reach
        # minsup rows.
        remaining = bitset.bit_count(cand & union & ~intersection)
        if support + remaining < self.minsup:
            return

        # Pruning 1: compress always-present candidates into the node.
        y_mask = intersection & cand
        new_cand = union & cand & ~y_mask
        child_p1_removed = p1_removed | y_mask

        for row in bitset.iter_bits(new_cand):
            bit = 1 << row
            self._visit(
                table=table,
                row_bit=bit,
                x_mask=x_mask | bit,
                cand=new_cand & ~bitset.below_mask(row + 1),
                p1_removed=child_p1_removed,
            )

        # Emit I(X) (at the root this is the whole vocabulary, a real
        # closed set exactly when some rows contain every item — in which
        # case `support` is non-zero and Pruning 1 just compressed those
        # rows away).
        if support >= self.minsup and intersection not in self._seen:
            self._seen.add(intersection)
            self._results.append((tuple(table.item_ids), intersection))


def mine_closed_carpenter(
    dataset: ItemizedDataset,
    minsup: int = 1,
    budget: SearchBudget | None = None,
    engine: str | None = None,
) -> list[ClosedItemset]:
    """Convenience wrapper: run :class:`Carpenter` on ``dataset``."""
    miner = Carpenter(
        minsup=minsup, budget=budget or SearchBudget(), engine=engine
    )
    return miner.mine(dataset)
