"""Exhaustive reference miner — the correctness oracle for the test suite.

Enumerates *all* rule groups of a dataset by brute force and applies the
paper's definitions literally, with none of FARMER's machinery:

* every rule group is found by closing every non-empty row subset
  (Lemma 3.2 — the row-enumeration space is complete), deduplicated by
  antecedent support set;
* interestingness follows Definition 2.2 operationally: groups are
  processed in order of increasing upper-bound size, and a group is
  admitted iff it meets the constraints and every *admitted* group with a
  strictly smaller antecedent has strictly lower confidence.  (With
  ``minchi = 0`` this is equivalent to comparing against all
  constraint-satisfying groups — see DESIGN.md §6.)

Everything here is exponential in the number of rows and only suitable
for the small randomized datasets the tests use (<= ~12 rows).
"""

from __future__ import annotations

from itertools import combinations
from typing import TYPE_CHECKING, Hashable

from ..core.closure import items_of, rows_of
from ..core.constraints import Constraints
from ..core.minelb import attach_lower_bounds
from ..core.rulegroup import RuleGroup
from ..data.dataset import ItemizedDataset

if TYPE_CHECKING:
    from ..obs.telemetry import Telemetry

__all__ = [
    "all_rule_groups",
    "interesting_rule_groups",
    "all_closed_itemsets",
]


def all_rule_groups(
    dataset: ItemizedDataset, consequent: Hashable
) -> list[RuleGroup]:
    """Every rule group with a non-empty upper bound, via row enumeration.

    Returns groups sorted by (|upper|, sorted items) for determinism.
    Lower bounds are *not* attached (use
    :func:`repro.core.minelb.attach_lower_bounds`).
    """
    n = dataset.n_rows
    m = dataset.class_count(consequent)
    by_support_set: dict[frozenset[int], RuleGroup] = {}
    row_indices = list(range(n))
    for size in range(1, n + 1):
        for subset in combinations(row_indices, size):
            upper = items_of(dataset, subset)
            if not upper:
                continue
            support_set = rows_of(dataset, upper)
            if support_set in by_support_set:
                continue
            supp = sum(
                1 for index in support_set if dataset.labels[index] == consequent
            )
            by_support_set[support_set] = RuleGroup(
                upper=upper,
                consequent=consequent,
                rows=support_set,
                support=supp,
                antecedent_support=len(support_set),
                n=n,
                m=m,
            )
    groups = list(by_support_set.values())
    groups.sort(key=lambda group: (len(group.upper), sorted(group.upper)))
    return groups


def interesting_rule_groups(
    dataset: ItemizedDataset,
    consequent: Hashable,
    constraints: Constraints | None = None,
    compute_lower_bounds: bool = False,
    telemetry: "Telemetry | None" = None,
) -> list[RuleGroup]:
    """The IRGs of ``dataset`` per Definition 2.2 + the paper's Step 7.

    Groups are considered smallest-antecedent-first so that, when a group
    is examined, every potential subset comparator has already been
    decided — the same well-founded order FARMER achieves via Lemma 3.4.

    Args:
        dataset: the itemized input table.
        consequent: class label on the rule RHS.
        constraints: admission thresholds (default: no constraints).
        compute_lower_bounds: attach MineLB lower bounds to results.
        telemetry: optional observability sink; when set, emits an
            ``enumerate`` phase plus ``bruteforce.*`` counters.

    Returns:
        The admitted interesting rule groups, smallest-antecedent-first.
    """
    constraints = constraints if constraints is not None else Constraints()
    admitted: list[RuleGroup] = []
    considered = 0
    if telemetry is not None:
        with telemetry.phase("enumerate"):
            candidates = all_rule_groups(dataset, consequent)
    else:
        candidates = all_rule_groups(dataset, consequent)
    for group in candidates:
        considered += 1
        if not constraints.satisfied_by(
            group.support,
            group.antecedent_support - group.support,
            group.n,
            group.m,
        ):
            continue
        dominated = any(
            previous.upper < group.upper
            and previous.confidence >= group.confidence
            for previous in admitted
        )
        if not dominated:
            admitted.append(group)
    if compute_lower_bounds:
        admitted = [attach_lower_bounds(dataset, group) for group in admitted]
    if telemetry is not None:
        telemetry.add_counters(
            {
                "bruteforce.groups_considered": considered,
                "bruteforce.groups_admitted": len(admitted),
            }
        )
    return admitted


def all_closed_itemsets(
    dataset: ItemizedDataset, minsup: int = 1
) -> set[frozenset[int]]:
    """All non-empty closed itemsets with ``|R(A)| >= minsup``.

    Oracle for CHARM / CLOSET+ / CARPENTER.  ``minsup`` here counts all
    supporting rows regardless of class, matching the closed-pattern
    miners' (class-blind) notion of support.
    """
    closed: set[frozenset[int]] = set()
    row_indices = list(range(dataset.n_rows))
    for size in range(1, dataset.n_rows + 1):
        if size < minsup:
            continue
        for subset in combinations(row_indices, size):
            upper = items_of(dataset, subset)
            if not upper:
                continue
            support_set = rows_of(dataset, upper)
            if len(support_set) >= minsup:
                closed.add(upper)
    return closed
