"""CLOSET+-style closed frequent itemset mining (Wang, Han & Pei, KDD'03).

The second closed-itemset competitor in the paper's Section 4.1 (the
paper reports CHARM consistently beat it on microarray data, and our
benchmarks reproduce that ordering).  This is a faithful pattern-growth
implementation of the algorithm's core:

* a global FP-tree over frequent items ordered by descending support;
* recursive conditional FP-trees (bottom-up, per header-table item);
* the *single prefix path* / item-merging optimization: items appearing
  in every transaction of a conditional tree are merged straight into the
  prefix instead of being enumerated;
* closedness via subset checking against already-found closed sets of the
  same support (CLOSET+'s result-tree check, realized here with an exact
  index keyed by support).

Like CHARM it is class-blind; support is a row count.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import bitset
from ..core.enumeration import SearchBudget
from ..data.dataset import ItemizedDataset
from ..errors import ConstraintError
from .charm import ClosedItemset

__all__ = ["ClosetPlus", "mine_closed_closet"]


class _FPNode:
    """One FP-tree node."""

    __slots__ = ("item", "count", "parent", "children")

    def __init__(self, item: int, parent: "_FPNode | None") -> None:
        self.item = item
        self.count = 0
        self.parent = parent
        self.children: dict[int, _FPNode] = {}


class _FPTree:
    """FP-tree with a header table of per-item node lists."""

    def __init__(self) -> None:
        self.root = _FPNode(item=-1, parent=None)
        self.header: dict[int, list[_FPNode]] = {}

    def insert(self, items: list[int], count: int) -> None:
        """Insert a transaction (items already in tree order)."""
        node = self.root
        for item in items:
            child = node.children.get(item)
            if child is None:
                child = _FPNode(item=item, parent=node)
                node.children[item] = child
                self.header.setdefault(item, []).append(child)
            child.count += count
            node = child

    def item_supports(self) -> dict[int, int]:
        """Support of each item present in the tree."""
        return {
            item: sum(node.count for node in nodes)
            for item, nodes in self.header.items()
        }

    def is_single_path(self) -> bool:
        """Whether the tree degenerates to a single chain from the root."""
        node = self.root
        while node.children:
            if len(node.children) > 1:
                return False
            node = next(iter(node.children.values()))
        return True

    def single_path(self) -> list[tuple[int, int]]:
        """The (item, count) chain of a single-path tree, top-down."""
        path: list[tuple[int, int]] = []
        node = self.root
        while node.children:
            node = next(iter(node.children.values()))
            path.append((node.item, node.count))
        return path


@dataclass
class ClosetPlus:
    """CLOSET+-style closed itemset miner.

    Args:
        minsup: minimum number of supporting rows (>= 1).
        budget: optional node/time limits (ticked per conditional tree).
    """

    minsup: int = 1
    budget: SearchBudget = field(default_factory=SearchBudget)

    def __post_init__(self) -> None:
        if self.minsup < 1:
            raise ConstraintError(f"minsup must be >= 1, got {self.minsup}")

    def mine(self, dataset: ItemizedDataset) -> list[ClosedItemset]:
        """Mine all closed itemsets with support >= ``minsup``."""
        self.budget.start()
        self._dataset = dataset
        self._closed_by_support: dict[int, list[int]] = {}
        self._results: list[tuple[int, int]] = []

        counts: dict[int, int] = {}
        for row in dataset.rows:
            for item in row:
                counts[item] = counts.get(item, 0) + 1
        frequent = {
            item: count for item, count in counts.items() if count >= self.minsup
        }
        # Global tree order: support descending, item id as tiebreak.
        self._rank = {
            item: rank
            for rank, (item, _) in enumerate(
                sorted(frequent.items(), key=lambda pair: (-pair[1], pair[0]))
            )
        }
        tree = _FPTree()
        for row in dataset.rows:
            ordered = sorted(
                (item for item in row if item in frequent),
                key=self._rank.__getitem__,
            )
            if ordered:
                tree.insert(ordered, 1)
        self._mine_tree(tree, prefix=0)

        results = []
        for items_mask, support in self._results:
            itemset = frozenset(bitset.iter_bits(items_mask))
            row_mask = self._rows_supporting(itemset)
            results.append(
                ClosedItemset(items=itemset, support=support, row_mask=row_mask)
            )
        results.sort(key=lambda c: (-c.support, sorted(c.items)))
        return results

    # ------------------------------------------------------------------

    def _rows_supporting(self, itemset: frozenset[int]) -> int:
        mask = 0
        for index, row in enumerate(self._dataset.rows):
            if itemset <= row:
                mask |= 1 << index
        return mask

    def _mine_tree(self, tree: _FPTree, prefix: int) -> None:
        """Pattern-growth over one (conditional) FP-tree."""
        self.budget.tick()

        if tree.is_single_path():
            # Every combination of a single path is determined by the
            # chain's count structure: the closed sets are the maximal
            # prefixes at each distinct count level.
            path = tree.single_path()
            if not path:
                return
            accumulated = prefix
            for position, (item, count) in enumerate(path):
                accumulated |= 1 << item
                is_count_boundary = (
                    position + 1 == len(path) or path[position + 1][1] < count
                )
                if count >= self.minsup and is_count_boundary:
                    self._emit(accumulated, count)
            return

        supports = tree.item_supports()
        # Bottom-up over the header table (least-frequent first), the
        # classic CLOSET order.
        items_bottom_up = sorted(
            supports, key=lambda item: -self._rank[item]
        )
        for item in items_bottom_up:
            support = supports[item]
            if support < self.minsup:
                continue
            new_prefix = prefix | (1 << item)

            # Build the conditional pattern base for `item`.
            conditional: list[tuple[list[int], int]] = []
            base_counts: dict[int, int] = {}
            for node in tree.header[item]:
                path: list[int] = []
                ancestor = node.parent
                while ancestor is not None and ancestor.item != -1:
                    path.append(ancestor.item)
                    ancestor = ancestor.parent
                path.reverse()
                conditional.append((path, node.count))
                for ancestor_item in path:
                    base_counts[ancestor_item] = (
                        base_counts.get(ancestor_item, 0) + node.count
                    )

            # Item merging: conditional items occurring in *every*
            # occurrence of `item` belong to the closure of the prefix.
            merged = [
                other
                for other, count in base_counts.items()
                if count == support
            ]
            for other in merged:
                new_prefix |= 1 << other
            merged_set = set(merged)

            # Closedness sub-check: if the merged prefix is subsumed,
            # the whole branch is redundant (CLOSET+'s pruning).
            if self._subsumed(new_prefix, support):
                continue

            subtree = _FPTree()
            for path, count in conditional:
                kept = [
                    other
                    for other in path
                    if other not in merged_set
                    and base_counts.get(other, 0) >= self.minsup
                ]
                if kept:
                    subtree.insert(kept, count)
            self._mine_tree(subtree, new_prefix)
            self._emit(new_prefix, support)

    # ------------------------------------------------------------------

    def _subsumed(self, items_mask: int, support: int) -> bool:
        """Whether a known closed set of equal support contains the mask.

        Equality counts as subsumed: the identical prefix has already been
        explored (reachable through item merging along another branch).
        """
        return any(
            items_mask & existing == items_mask
            for existing in self._closed_by_support.get(support, ())
        )

    def _emit(self, items_mask: int, support: int) -> None:
        known = self._closed_by_support.setdefault(support, [])
        for existing in known:
            if items_mask & existing == items_mask:
                return
        known.append(items_mask)
        self._results.append((items_mask, support))


def mine_closed_closet(
    dataset: ItemizedDataset,
    minsup: int = 1,
    budget: SearchBudget | None = None,
) -> list[ClosedItemset]:
    """Convenience wrapper: run :class:`ClosetPlus` on ``dataset``."""
    miner = ClosetPlus(minsup=minsup, budget=budget or SearchBudget())
    return miner.mine(dataset)
