"""Apriori — levelwise frequent itemset and class-association-rule mining.

Reference [1] of the paper (Agrawal & Srikant, VLDB'94) and the rule
generator behind CBA's CBA-RG stage [14].  Two entry points:

* :func:`frequent_itemsets` — the classic class-blind levelwise search
  with candidate generation + prefix join + subset pruning;
* :func:`mine_cars` — CBA-RG: levelwise search over *ruleitems*
  ``(condset, class)``, keeping condsets whose per-class support meets
  ``minsup`` and emitting class association rules meeting ``minconf``.

Both are exponential on microarray-scale data (that is the paper's
point); ``max_length`` and the budget keep them usable as baselines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from ..core import bitset
from ..core.enumeration import SearchBudget
from ..core.rule import Rule
from ..data.dataset import ItemizedDataset
from ..errors import ConstraintError

__all__ = ["frequent_itemsets", "mine_cars", "AprioriConfig"]


@dataclass
class AprioriConfig:
    """Knobs for the levelwise searches.

    Attributes:
        minsup: minimum supporting-row count (>= 1).
        max_length: stop after itemsets of this many items (``None`` =
            unbounded).
        budget: optional candidate-count/time limits (ticked per counted
            candidate).
    """

    minsup: int = 1
    max_length: int | None = None
    budget: SearchBudget = field(default_factory=SearchBudget)

    def __post_init__(self) -> None:
        if self.minsup < 1:
            raise ConstraintError(f"minsup must be >= 1, got {self.minsup}")
        if self.max_length is not None and self.max_length < 1:
            raise ConstraintError(
                f"max_length must be >= 1, got {self.max_length}"
            )


def _item_tidsets(dataset: ItemizedDataset) -> dict[int, int]:
    """Bitset of supporting rows for every item that occurs."""
    tids: dict[int, int] = {}
    for row_index, row in enumerate(dataset.rows):
        bit = 1 << row_index
        for item in row:
            tids[item] = tids.get(item, 0) | bit
    return tids


def _generate_candidates(
    frequent_level: list[tuple[int, ...]], level: int
) -> list[tuple[int, ...]]:
    """Prefix-join + subset-prune candidate generation (Apriori-gen)."""
    frequent_set = set(frequent_level)
    candidates: list[tuple[int, ...]] = []
    for index, left in enumerate(frequent_level):
        for right in frequent_level[index + 1 :]:
            if left[: level - 1] != right[: level - 1]:
                break  # sorted order: prefixes diverge permanently
            candidate = left + (right[-1],)
            # Subset pruning: every (level)-subset must be frequent.
            if all(
                candidate[:drop] + candidate[drop + 1 :] in frequent_set
                for drop in range(level + 1)
            ):
                candidates.append(candidate)
    return candidates


def frequent_itemsets(
    dataset: ItemizedDataset, config: AprioriConfig | None = None
) -> dict[frozenset[int], int]:
    """All frequent itemsets and their supports, levelwise.

    Returns a mapping ``itemset -> support`` (row count).
    """
    config = config if config is not None else AprioriConfig()
    config.budget.start()
    tids = _item_tidsets(dataset)

    results: dict[frozenset[int], int] = {}
    level_sets: list[tuple[int, ...]] = []
    level_tids: dict[tuple[int, ...], int] = {}
    for item in sorted(tids):
        config.budget.tick()
        support = bitset.bit_count(tids[item])
        if support >= config.minsup:
            key = (item,)
            level_sets.append(key)
            level_tids[key] = tids[item]
            results[frozenset(key)] = support

    level = 1
    while level_sets and (config.max_length is None or level < config.max_length):
        candidates = _generate_candidates(level_sets, level)
        next_sets: list[tuple[int, ...]] = []
        next_tids: dict[tuple[int, ...], int] = {}
        for candidate in candidates:
            config.budget.tick()
            mask = level_tids[candidate[:-1]] & tids[candidate[-1]]
            support = bitset.bit_count(mask)
            if support >= config.minsup:
                next_sets.append(candidate)
                next_tids[candidate] = mask
                results[frozenset(candidate)] = support
        level_sets = next_sets
        level_tids = next_tids
        level += 1
    return results


def mine_cars(
    dataset: ItemizedDataset,
    minsup: int,
    minconf: float,
    max_length: int | None = None,
    budget: SearchBudget | None = None,
) -> list[Rule]:
    """CBA-RG: class association rules ``condset -> class``.

    A ruleitem is frequent when ``|R(condset ∪ {class})| >= minsup``; a
    frequent ruleitem becomes a rule when its confidence meets
    ``minconf``.  The levelwise frontier keeps every condset that is
    frequent *for at least one class* (the standard CBA-RG frontier).

    Returns rules sorted by (confidence desc, support desc, shorter
    antecedent first) — CBA's precedence order.
    """
    if not 0.0 <= minconf <= 1.0:
        raise ConstraintError(f"minconf must be in [0, 1], got {minconf}")
    config = AprioriConfig(
        minsup=minsup, max_length=max_length, budget=budget or SearchBudget()
    )
    config.budget.start()
    tids = _item_tidsets(dataset)
    labels = dataset.class_labels
    class_masks: dict[Hashable, int] = {label: 0 for label in labels}
    for row_index, label in enumerate(dataset.labels):
        class_masks[label] |= 1 << row_index
    class_totals = {label: dataset.class_count(label) for label in labels}

    rules: list[Rule] = []

    def consider(itemset: tuple[int, ...], mask: int) -> bool:
        """Record rules for a condset; return whether it stays frontier."""
        antecedent_support = bitset.bit_count(mask)
        frequent_for_some_class = False
        for label in labels:
            support = bitset.bit_count(mask & class_masks[label])
            if support < config.minsup:
                continue
            frequent_for_some_class = True
            if antecedent_support and support / antecedent_support >= minconf:
                rules.append(
                    Rule(
                        antecedent=frozenset(itemset),
                        consequent=label,
                        support=support,
                        antecedent_support=antecedent_support,
                        n=dataset.n_rows,
                        m=class_totals[label],
                    )
                )
        return frequent_for_some_class

    level_sets: list[tuple[int, ...]] = []
    level_tids: dict[tuple[int, ...], int] = {}
    for item in sorted(tids):
        config.budget.tick()
        key = (item,)
        if consider(key, tids[item]):
            level_sets.append(key)
            level_tids[key] = tids[item]

    level = 1
    while level_sets and (config.max_length is None or level < config.max_length):
        candidates = _generate_candidates(level_sets, level)
        next_sets: list[tuple[int, ...]] = []
        next_tids: dict[tuple[int, ...], int] = {}
        for candidate in candidates:
            config.budget.tick()
            mask = level_tids[candidate[:-1]] & tids[candidate[-1]]
            if consider(candidate, mask):
                next_sets.append(candidate)
                next_tids[candidate] = mask
        level_sets = next_sets
        level_tids = next_tids
        level += 1

    rules.sort(
        key=lambda rule: (
            -rule.confidence,
            -rule.support,
            len(rule.antecedent),
            sorted(rule.antecedent),
            str(rule.consequent),
        )
    )
    return rules
