"""CHARM — closed frequent itemset mining (Zaki & Hsiao, SDM 2002).

The strongest column-enumeration competitor in the paper's Figure 10.
CHARM explores the itemset-tidset (IT) search tree, pairing each itemset
with its tidset (bitset of supporting rows here), and collapses the tree
with the four subsumption properties:

1. ``t(Xi) == t(Xj)``  — merge ``Xj`` into ``Xi``, kill ``Xj``;
2. ``t(Xi) ⊂ t(Xj)``   — extend ``Xi`` with ``Xj``'s items, keep ``Xj``;
3. ``t(Xi) ⊃ t(Xj)``   — spawn child ``Xi ∪ Xj``, kill ``Xj`` from this
   level (folded into property 1/2 handling below, Zaki's formulation);
4. otherwise           — spawn child ``Xi ∪ Xj``.

A candidate closed set is only emitted if no already-found closed set
with the same tidset subsumes it (the "hash on tidset" check — exact
here, keyed by the tidset bitmask).

CHARM is class-blind: it mines closed itemsets at a row-count support
threshold.  The paper runs it on the same discretized datasets and
compares wall-clock time; the rule-group statistics are then derivable
from the closed sets, which is exactly how we use it in the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core import bitset
from ..core.enumeration import SearchBudget
from ..data.dataset import ItemizedDataset
from ..errors import ConstraintError

__all__ = ["Charm", "ClosedItemset", "mine_closed_charm"]


@dataclass(frozen=True, slots=True)
class ClosedItemset:
    """A closed itemset with its support.

    Attributes:
        items: the closed itemset.
        support: ``|R(items)|``.
        row_mask: supporting rows as a bitset over dataset row order.
    """

    items: frozenset[int]
    support: int
    row_mask: int


@dataclass
class _ITNode:
    """IT-tree node: itemset bitmask paired with its tidset bitmask."""

    items: int
    tids: int


@dataclass
class Charm:
    """CHARM closed frequent itemset miner.

    Args:
        minsup: minimum number of supporting rows (>= 1).
        budget: optional node/time limits.
    """

    minsup: int = 1
    budget: SearchBudget = field(default_factory=SearchBudget)

    def __post_init__(self) -> None:
        if self.minsup < 1:
            raise ConstraintError(f"minsup must be >= 1, got {self.minsup}")

    def mine(self, dataset: ItemizedDataset) -> list[ClosedItemset]:
        """Mine all closed itemsets with support >= ``minsup``.

        Results are sorted by (support desc, itemset) for determinism.
        """
        self.budget.start()
        tid_of_item = [0] * dataset.n_items
        for row_index, row in enumerate(dataset.rows):
            bit = 1 << row_index
            for item in row:
                tid_of_item[item] |= bit

        # Frequent single items, ordered by increasing support then item
        # id (Zaki's recommended ordering: it maximizes early merges).
        nodes = [
            _ITNode(items=1 << item, tids=tids)
            for item, tids in enumerate(tid_of_item)
            if bitset.bit_count(tids) >= self.minsup
        ]
        nodes.sort(key=lambda node: (bitset.bit_count(node.tids), node.items))

        self._closed_by_tids: dict[int, list[int]] = {}
        self._results: list[tuple[int, int]] = []
        self._extend(nodes)

        results = [
            ClosedItemset(
                items=frozenset(bitset.iter_bits(items)),
                support=bitset.bit_count(tids),
                row_mask=tids,
            )
            for items, tids in self._results
        ]
        results.sort(key=lambda c: (-c.support, sorted(c.items)))
        return results

    # ------------------------------------------------------------------

    def _extend(self, nodes: list[_ITNode]) -> None:
        """CHARM-EXTEND over one level of sibling IT-nodes."""
        for index, node in enumerate(nodes):
            if node.items == 0:
                continue  # merged away by property 1/2
            self.budget.tick()
            children: list[_ITNode] = []
            extended_items = node.items
            for other in nodes[index + 1 :]:
                if other.items == 0:
                    continue
                tids = node.tids & other.tids
                if bitset.bit_count(tids) < self.minsup:
                    continue
                if node.tids == other.tids:
                    # Property 1: same tidset — fuse and retire `other`.
                    extended_items |= other.items
                    other.items = 0
                elif node.tids & other.tids == node.tids:
                    # Property 2: t(Xi) ⊂ t(Xj) — every occurrence of Xi
                    # also has Xj's items; fold them into this node.
                    extended_items |= other.items
                elif node.tids & other.tids == other.tids:
                    # Property 3: t(Xi) ⊃ t(Xj) — Xj never occurs without
                    # Xi, so its own subtree is redundant: retire it and
                    # explore the combination under this node instead.
                    children.append(
                        _ITNode(items=node.items | other.items, tids=tids)
                    )
                    other.items = 0
                else:
                    # Property 4: genuine new child.
                    children.append(
                        _ITNode(items=node.items | other.items, tids=tids)
                    )

            if children:
                # Children inherit the items folded into their parent.
                for child in children:
                    child.items |= extended_items
                children.sort(
                    key=lambda child: (bitset.bit_count(child.tids), child.items)
                )
                self._extend(children)

            self._emit(extended_items, node.tids)

    def _emit(self, items: int, tids: int) -> None:
        """Record ``items`` unless an equal-tidset superset already exists."""
        known = self._closed_by_tids.setdefault(tids, [])
        for existing in known:
            if items & existing == items:
                return  # subsumed: not closed
        known.append(items)
        self._results.append((items, tids))


def mine_closed_charm(
    dataset: ItemizedDataset,
    minsup: int = 1,
    budget: SearchBudget | None = None,
) -> list[ClosedItemset]:
    """Convenience wrapper: run :class:`Charm` on ``dataset``."""
    miner = Charm(minsup=minsup, budget=budget or SearchBudget())
    return miner.mine(dataset)
