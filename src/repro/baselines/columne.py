"""ColumnE — column-enumeration interesting-rule mining.

The paper's primary head-to-head competitor ([2], Bayardo & Agrawal's
interesting-rule miner; no public code survives).  Per DESIGN.md, our
ColumnE is deliberately the *strongest reasonable* column-wise miner for
the same problem, so the FARMER comparison isolates the enumeration
direction:

* depth-first search over the **itemset** lattice with tidset (row
  bitset) propagation;
* closure jumping with prefix-preserving extension (LCM-style), so every
  closed antecedent — i.e. every rule-group upper bound — is visited
  exactly once;
* pruning on the rule support ``|R(A ∪ C)|``, which *is* anti-monotone
  under antecedent growth (confidence and chi-square are not, so a
  column-wise miner cannot exploit them the way FARMER's Lemmas 3.7-3.9
  do — this asymmetry is part of the paper's argument);
* the same Step-7 interestingness admission as FARMER, applied after
  collecting the groups in smallest-antecedent-first order.

Its search space is ``2^(max row length)`` — tens of thousands of items
on microarray data — which is exactly why the paper finds it orders of
magnitude slower than FARMER.  Use a :class:`SearchBudget`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable

from ..core import bitset
from ..core.constraints import Constraints
from ..core.enumeration import NodeCounters, SearchBudget
from ..core.minelb import attach_lower_bounds
from ..core.rulegroup import RuleGroup
from ..data.dataset import ItemizedDataset
from ..data.transpose import TransposedTable

__all__ = ["ColumnE", "mine_irgs_columnwise"]


@dataclass
class ColumnE:
    """Column-enumeration IRG miner (see module docstring).

    Args:
        constraints: same thresholds as :class:`repro.core.Farmer`.
        compute_lower_bounds: attach MineLB lower bounds to results.
        budget: node/time limits (strongly recommended at scale).
    """

    constraints: Constraints = field(default_factory=Constraints)
    compute_lower_bounds: bool = False
    budget: SearchBudget = field(default_factory=SearchBudget)

    def mine(self, dataset: ItemizedDataset, consequent: Hashable) -> list[RuleGroup]:
        """Mine the IRGs of ``dataset`` for ``consequent``.

        Returns the same groups as FARMER (verified by the test suite),
        discovered by column enumeration.
        """
        self.counters = NodeCounters()
        self.budget.start()
        table = TransposedTable.build(dataset, consequent)
        self._table = table
        self._item_tids = table.item_masks
        self._n_items = len(table.item_masks)
        # (closure bitmask over items, row mask, supp, supn)
        self._found: list[tuple[frozenset[int], int, int, int]] = []

        minsup = self.constraints.minsup
        for item in range(self._n_items):
            tids = self._item_tids[item]
            if not tids:
                continue  # item occurs in no row: no rule group to derive
            supp = bitset.bit_count(tids & table.positive_mask)
            if supp < minsup:
                continue
            closure = self._closure(tids)
            if min(closure) < item:
                continue  # prefix violation: visited from a smaller item
            self._expand(closure, tids, item)

        groups = self._admit()
        if self.compute_lower_bounds:
            groups = [attach_lower_bounds(dataset, group) for group in groups]
        return groups

    # ------------------------------------------------------------------

    def _closure(self, tids: int) -> frozenset[int]:
        """Items present in every supporting row — ``I(R(A))``.

        The full pass over the vocabulary is the inherent cost of closing
        in column space (FARMER gets the closure for free as its node
        label).
        """
        return frozenset(
            item
            for item, item_tids in enumerate(self._item_tids)
            if tids & item_tids == tids
        )

    def _expand(self, closure: frozenset[int], tids: int, core_item: int) -> None:
        """Visit one closed antecedent; recurse on ppc-extensions."""
        self.budget.tick()
        table = self._table
        supp = bitset.bit_count(tids & table.positive_mask)
        supn = bitset.bit_count(tids) - supp
        self._found.append((closure, tids, supp, supn))

        minsup = self.constraints.minsup
        for item in range(core_item + 1, self._n_items):
            if item in closure:
                continue
            new_tids = tids & self._item_tids[item]
            if not new_tids:
                continue  # empty antecedent support: not a rule group
            new_supp = bitset.bit_count(new_tids & table.positive_mask)
            if new_supp < minsup:
                self.counters.pruned_tight += 1
                continue
            new_closure = self._closure(new_tids)
            # Prefix-preserving check: the extension is canonical iff the
            # closure adds no item smaller than `item` beyond the old
            # closure (otherwise this closed set is reached elsewhere).
            if any(other < item and other not in closure for other in new_closure):
                continue
            self._expand(new_closure, new_tids, item)

    def _admit(self) -> list[RuleGroup]:
        """Step-7 interestingness over the collected closed groups."""
        table = self._table
        ordered = sorted(
            self._found, key=lambda entry: (len(entry[0]), sorted(entry[0]))
        )
        admitted: list[tuple[frozenset[int], float]] = []
        groups: list[RuleGroup] = []
        for closure, tids, supp, supn in ordered:
            if not self.constraints.satisfied_by(supp, supn, table.n, table.m):
                continue
            confidence = supp / (supp + supn)
            dominated = any(
                previous_items < closure and previous_conf >= confidence
                for previous_items, previous_conf in admitted
            )
            if dominated:
                self.counters.candidates_rejected += 1
                continue
            admitted.append((closure, confidence))
            groups.append(
                RuleGroup(
                    upper=closure,
                    consequent=table.consequent,
                    rows=table.original_rows(tids),
                    support=supp,
                    antecedent_support=supp + supn,
                    n=table.n,
                    m=table.m,
                )
            )
        self.counters.nodes = self.budget.nodes
        self.counters.groups_emitted = len(groups)
        return groups


def mine_irgs_columnwise(
    dataset: ItemizedDataset,
    consequent: Hashable,
    minsup: int = 1,
    minconf: float = 0.0,
    minchi: float = 0.0,
    budget: SearchBudget | None = None,
) -> list[RuleGroup]:
    """Convenience wrapper: run :class:`ColumnE` on ``dataset``."""
    miner = ColumnE(
        constraints=Constraints(minsup=minsup, minconf=minconf, minchi=minchi),
        budget=budget or SearchBudget(),
    )
    return miner.mine(dataset, consequent)
