"""Baseline miners the paper evaluates FARMER against, plus the oracle.

* :class:`~repro.baselines.columne.ColumnE` — column-enumeration IRG
  miner (the paper's ColumnE, reference [2]).
* :class:`~repro.baselines.charm.Charm` — closed itemset mining [23].
* :class:`~repro.baselines.closet.ClosetPlus` — FP-tree closed mining [21].
* :class:`~repro.baselines.carpenter.Carpenter` — row-enumeration closed
  pattern mining (the KDD'03 predecessor, reference [17]).
* :mod:`~repro.baselines.apriori` — levelwise frequent itemsets and CBA's
  rule generator [1, 14].
* :mod:`~repro.baselines.bruteforce` — the exhaustive oracle used by the
  test suite.
"""

from .apriori import AprioriConfig, frequent_itemsets, mine_cars
from .bruteforce import (
    all_closed_itemsets,
    all_rule_groups,
    interesting_rule_groups,
)
from .carpenter import Carpenter, mine_closed_carpenter
from .closed_to_irgs import groups_from_closed, interesting_groups_from_closed
from .charm import Charm, ClosedItemset, mine_closed_charm
from .closet import ClosetPlus, mine_closed_closet
from .columne import ColumnE, mine_irgs_columnwise

__all__ = [
    "AprioriConfig",
    "Carpenter",
    "Charm",
    "ClosedItemset",
    "ClosetPlus",
    "ColumnE",
    "all_closed_itemsets",
    "all_rule_groups",
    "frequent_itemsets",
    "groups_from_closed",
    "interesting_groups_from_closed",
    "interesting_rule_groups",
    "mine_cars",
    "mine_closed_carpenter",
    "mine_closed_charm",
    "mine_closed_closet",
    "mine_irgs_columnwise",
]
