"""Exception hierarchy for the :mod:`repro` package.

Every error raised deliberately by this library derives from
:class:`ReproError`, so callers can catch one base class.  The subclasses
distinguish the failure domains a user can hit: malformed input data,
invalid mining parameters, incorrect API call order, and exhausted
resource budgets (the harness uses the latter to reproduce the paper's
"baseline did not finish" outcomes without hanging the benchmark suite).
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "DataError",
    "ConstraintError",
    "UsageError",
    "BudgetExceeded",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class DataError(ReproError, ValueError):
    """Raised when an input dataset or matrix is malformed.

    Examples: a label vector whose length does not match the number of
    rows, an item id outside the vocabulary, or a file in an unrecognised
    format.
    """


class ConstraintError(ReproError, ValueError):
    """Raised when mining constraints are invalid.

    Examples: a negative ``minsup``, a confidence outside ``[0, 1]``, or a
    consequent class that does not occur in the dataset.
    """


class UsageError(ReproError, ValueError):
    """Raised when the library API is called incorrectly.

    Examples: reading lower bounds before MineLB has run, or asking for
    the lowest bit of an empty bitset.  Subclasses :class:`ValueError`
    so generic callers keep working.
    """


class BudgetExceeded(ReproError, RuntimeError):
    """Raised when a miner exceeds its node or wall-clock budget.

    The experiment harness converts this into a ``timeout`` cell, mirroring
    the missing CHARM/ColumnE data points in the paper's Figure 10(a, b)
    (runs that ran out of memory or "ran for several days").
    """

    def __init__(self, message: str, *, nodes_expanded: int = 0) -> None:
        super().__init__(message)
        #: Number of search-tree nodes expanded before the budget tripped.
        self.nodes_expanded = nodes_expanded
