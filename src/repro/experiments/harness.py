"""Shared experiment machinery: timed runs, series, table rendering.

Every figure/table module in this package produces plain data structures
(:class:`TimedRun` cells and :class:`Series` curves) that the benchmarks,
the CLI and ``examples/reproduce_paper.py`` all render through the same
formatters — so EXPERIMENTS.md, the benchmark output and the CLI agree
byte-for-byte on what a result row looks like.

A cell whose miner exceeds its :class:`~repro.core.enumeration.
SearchBudget` is recorded as a ``timeout`` rather than an error: the
paper's own Figure 10(a, b) has missing CHARM curves ("runs out of
memory") and ColumnE runs "of more than 1 day", and the harness preserves
that outcome class.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..errors import BudgetExceeded

__all__ = [
    "TimedRun",
    "Series",
    "ScalingPoint",
    "timed",
    "format_table",
    "format_series",
    "scaling_curve",
    "format_scaling",
]


@dataclass(frozen=True, slots=True)
class TimedRun:
    """One timed miner invocation.

    Attributes:
        seconds: wall-clock runtime; meaningful only when ``ok``.
        count: size of the result (groups/itemsets found); 0 on timeout.
        status: ``"ok"`` or ``"timeout"``.
    """

    seconds: float
    count: int
    status: str = "ok"

    @property
    def ok(self) -> bool:
        return self.status == "ok"

    def cell(self) -> str:
        """Render as a table cell, e.g. ``"0.41s (153)"`` or ``"timeout"``."""
        if not self.ok:
            return "timeout"
        return f"{self.seconds:.3f}s ({self.count})"


def timed(run: Callable[[], Sequence]) -> TimedRun:
    """Execute ``run``, timing it and converting budget trips to timeouts.

    ``run`` must return a sized result (its length becomes ``count``).
    """
    started = time.perf_counter()
    try:
        result = run()
    except BudgetExceeded:
        return TimedRun(
            seconds=time.perf_counter() - started, count=0, status="timeout"
        )
    return TimedRun(seconds=time.perf_counter() - started, count=len(result))


@dataclass
class Series:
    """A named curve for one of the paper's figures.

    Attributes:
        name: legend label, e.g. ``"FARMER"``.
        xs: x-axis values (minsup or minconf).
        ys: one :class:`TimedRun` per x value.
    """

    name: str
    xs: list[float] = field(default_factory=list)
    ys: list[TimedRun] = field(default_factory=list)

    def add(self, x: float, run: TimedRun) -> None:
        self.xs.append(x)
        self.ys.append(run)


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render an aligned plain-text table (monospace, padded columns)."""
    cells = [[str(value) for value in row] for row in rows]
    widths = [
        max(len(headers[column]), *(len(row[column]) for row in cells))
        if cells
        else len(headers[column])
        for column in range(len(headers))
    ]
    def line(values: Sequence[str]) -> str:
        return "  ".join(value.ljust(widths[i]) for i, value in enumerate(values)).rstrip()

    out = [line(list(headers)), line(["-" * width for width in widths])]
    out.extend(line(row) for row in cells)
    return "\n".join(out)


@dataclass(frozen=True, slots=True)
class ScalingPoint:
    """One point of a worker-scaling curve.

    Attributes:
        n_workers: worker processes used for this run.
        run: the timed result at that worker count.
        speedup: serial time / this run's time (0.0 when either timed out).
        efficiency: ``speedup / n_workers`` (parallel efficiency).
    """

    n_workers: int
    run: TimedRun
    speedup: float
    efficiency: float


def scaling_curve(
    serial: TimedRun, runs: Sequence[tuple[int, TimedRun]]
) -> list[ScalingPoint]:
    """Derive speedup/efficiency points from timed runs at worker counts.

    ``serial`` is the 1-process reference; ``runs`` are ``(n_workers,
    run)`` pairs.  Timed-out cells get zero speedup so a partially
    completed sweep still renders.
    """
    points = []
    for n_workers, run in runs:
        if serial.ok and run.ok and run.seconds > 0:
            speedup = serial.seconds / run.seconds
        else:
            speedup = 0.0
        points.append(
            ScalingPoint(
                n_workers=n_workers,
                run=run,
                speedup=speedup,
                efficiency=speedup / n_workers if n_workers else 0.0,
            )
        )
    return points


def format_scaling(
    title: str, serial: TimedRun, points: Sequence[ScalingPoint]
) -> str:
    """Render a worker-scaling curve as an aligned table."""
    headers = ["workers", "time", "speedup", "efficiency"]
    rows: list[Sequence[object]] = [["serial", serial.cell(), "1.00x", "-"]]
    for point in points:
        rows.append(
            [
                point.n_workers,
                point.run.cell(),
                f"{point.speedup:.2f}x" if point.speedup else "-",
                f"{point.efficiency:.0%}" if point.speedup else "-",
            ]
        )
    return f"{title}\n{format_table(headers, rows)}"


def format_series(title: str, x_label: str, series: Sequence[Series]) -> str:
    """Render several curves sharing an x-axis as one aligned table."""
    if not series:
        return title
    headers = [x_label] + [curve.name for curve in series]
    rows = []
    for index, x in enumerate(series[0].xs):
        row: list[object] = [x]
        for curve in series:
            row.append(curve.ys[index].cell() if index < len(curve.ys) else "-")
        rows.append(row)
    return f"{title}\n{format_table(headers, rows)}"
