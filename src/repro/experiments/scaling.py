"""Row-replication scaling (Section 4.1.3's closing remark).

The paper: "we also look at how the performance of FARMER varies as the
number of rows increase.  This is done by replicating each dataset a
number of times ... It is observed that the performance of FARMER still
outperform other algorithms even when the datasets are replicated for
5-10 times."  This experiment replicates a dataset 1x-5x and times
FARMER against CHARM (the strongest column baseline) and CARPENTER (row
enumeration without FARMER's interestingness machinery).

``minsup`` is scaled with the replication factor so the mined pattern set
stays comparable across factors.
"""

from __future__ import annotations

from ..baselines.carpenter import Carpenter
from ..baselines.charm import Charm
from ..core.constraints import Constraints
from ..core.enumeration import SearchBudget
from ..core.farmer import Farmer
from .harness import Series, TimedRun, format_series, timed
from .workloads import build_workload

__all__ = ["run_scaling", "scaling_report"]


def run_scaling(
    dataset: str = "CT",
    factors: tuple[int, ...] = (1, 2, 3, 4, 5),
    base_minsup: int | None = None,
    scale: float = 0.08,
    timeout: float = 60.0,
    min_genes: int = 600,
) -> list[Series]:
    """Time FARMER / CHARM / CARPENTER on replicated datasets.

    ``scale`` is floored so the workload has at least ``min_genes`` genes:
    replication multiplies *rows*, and the paper's claim is about staying
    ahead in the rows << columns regime — below a few hundred genes the
    enumeration directions cross over regardless of replication.
    """
    from ..data.registry import PAPER_DATASETS

    spec = PAPER_DATASETS[dataset.upper()]
    scale = max(scale, min_genes / spec.paper_cols)
    workload = build_workload(dataset, scale=scale)
    minsup0 = base_minsup if base_minsup is not None else workload.minsup_grid[-2]

    farmer = Series("FARMER")
    charm = Series("CHARM")
    carpenter = Series("CARPENTER")
    charm_dead = carpenter_dead = False
    for factor in factors:
        replicated = workload.data.replicate(factor)
        minsup = minsup0 * factor

        miner = Farmer(
            constraints=Constraints(minsup=minsup),
            budget=SearchBudget(max_seconds=timeout),
        )
        farmer.add(
            factor, timed(lambda: miner.mine(replicated, workload.consequent).groups)
        )

        if charm_dead:
            charm.add(factor, TimedRun(timeout, 0, "timeout"))
        else:
            run = timed(
                lambda: Charm(
                    minsup=minsup, budget=SearchBudget(max_seconds=timeout)
                ).mine(replicated)
            )
            charm.add(factor, run)
            charm_dead = not run.ok

        if carpenter_dead:
            carpenter.add(factor, TimedRun(timeout, 0, "timeout"))
        else:
            run = timed(
                lambda: Carpenter(
                    minsup=minsup, budget=SearchBudget(max_seconds=timeout)
                ).mine(replicated)
            )
            carpenter.add(factor, run)
            carpenter_dead = not run.ok
    return [farmer, charm, carpenter]


def scaling_report(series: list[Series], dataset: str = "CT") -> str:
    """Render the replication sweep."""
    return format_series(
        f"Row-replication scaling ({dataset}): runtime vs replication factor "
        "(minsup scales with the factor)",
        "factor",
        series,
    )
