"""Figure 11: runtime vs ``minconf`` — confidence & chi-square pruning.

Reproduces Section 4.1.2/4.1.3: fix ``minsup`` low (the paper uses
``minsup = 1``; we use each dataset's lowest Figure 10 grid point so the
sweep stays in pure-Python time), sweep ``minconf`` from 0 to 0.99 and
time FARMER twice per point — with ``minchi = 0`` and ``minchi = 10`` —
plus the IRG count per confidence level (Figure 11(f)).

Expected shape (paper): runtime falls as ``minconf`` rises (confidence
pruning works), flattening between 0.85 and 0.99 because nearly all
surviving IRGs have 100% confidence; the ``minchi = 10`` curve sits below
the ``minchi = 0`` curve (chi-square pruning compounds).  CHARM and
ColumnE cannot finish at this low support at all — the paper drops them
from Figure 11, and so do we.
"""

from __future__ import annotations

from ..core.constraints import Constraints
from ..core.enumeration import SearchBudget
from ..core.farmer import Farmer
from .harness import Series, TimedRun, format_series, timed
from .workloads import DATASET_ORDER, MINCONF_GRID, Workload, build_workload

__all__ = ["run_fig11", "fig11_report"]


def _point(
    workload: Workload, minsup: int, minconf: float, minchi: float, timeout: float
) -> TimedRun:
    miner = Farmer(
        constraints=Constraints(minsup=minsup, minconf=minconf, minchi=minchi),
        budget=SearchBudget(max_seconds=timeout),
    )
    return timed(lambda: miner.mine(workload.data, workload.consequent).groups)


def run_fig11(
    datasets: tuple[str, ...] = DATASET_ORDER,
    scale: float = 0.08,
    timeout: float = 120.0,
    minconf_grid: list[float] | None = None,
    minsup: int | None = None,
) -> dict[str, list[Series]]:
    """Run the Figure 11 sweep; returns per-dataset series.

    Series per dataset: FARMER at ``minchi = 0``, FARMER at
    ``minchi = 10`` and the IRG count at ``minchi = 0``.
    """
    grid = minconf_grid if minconf_grid is not None else MINCONF_GRID
    results: dict[str, list[Series]] = {}
    for name in datasets:
        workload = build_workload(name, scale=scale)
        support = minsup if minsup is not None else workload.fig11_minsup
        chi_zero = Series("FARMER (minchi=0)")
        chi_ten = Series("FARMER (minchi=10)")
        irgs = Series("#IRGs (minchi=0)")
        for minconf in grid:
            run_zero = _point(workload, support, minconf, 0.0, timeout)
            chi_zero.add(minconf, run_zero)
            irgs.add(minconf, run_zero)
            chi_ten.add(minconf, _point(workload, support, minconf, 10.0, timeout))
        results[name] = [chi_zero, chi_ten, irgs]
    return results


def fig11_report(results: dict[str, list[Series]]) -> str:
    """Render the Figure 11 sweep as plain-text tables."""
    sections = []
    for name, series in results.items():
        sections.append(
            format_series(
                f"Figure 11 ({name}): FARMER runtime vs minconf "
                "(low fixed minsup; cells are 'seconds (IRG count)')",
                "minconf",
                series,
            )
        )
    return "\n\n".join(sections)
