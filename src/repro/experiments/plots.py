"""ASCII rendering of the paper's figures.

The evaluation figures are log-scale runtime curves; this module draws
them in plain text so a terminal-only reproduction still *looks* like
Figure 10 ("y-axes in logarithmic scale").  One letter per series,
``*`` where curves overlap, timeout points dropped::

    Figure 10 (BC): runtime vs minsup    [F]ARMER [C]olumnE [H]CHARM
    36.885s |H   H   H   H
            |
            | ...
    0.487s  |F
            +---------------
             9   8   7   6

No plotting dependency needed; the benchmarks and
``examples/reproduce_paper.py --charts`` use it.
"""

from __future__ import annotations

import math

from .harness import Series

__all__ = ["ascii_chart"]


def _format_seconds(value: float) -> str:
    if value >= 100:
        return f"{value:.0f}s"
    if value >= 1:
        return f"{value:.1f}s"
    return f"{value:.3f}s"


def ascii_chart(
    title: str,
    series: list[Series],
    height: int = 12,
    log_y: bool = True,
) -> str:
    """Render runtime curves as an ASCII chart.

    Args:
        title: chart heading.
        series: curves sharing an x grid; only ``ok`` points are drawn.
        height: number of plot rows.
        log_y: log-scale the y axis (like the paper's figures).

    Returns the chart as a multi-line string; series are marked with the
    first letter of their name (uppercased), overlaps with ``*``.
    """
    points: list[tuple[int, float, str]] = []  # (x index, seconds, marker)
    markers = []
    used: set[str] = set()
    for curve in series:
        # First unused letter of the name keeps markers distinct
        # (e.g. ColumnE -> C, CHARM -> H).
        marker = next(
            (
                letter.upper()
                for letter in curve.name
                if letter.isalpha() and letter.upper() not in used
            ),
            "?",
        )
        used.add(marker)
        markers.append(f"[{marker}]{curve.name}")
        for index, run in enumerate(curve.ys):
            if run.ok and run.seconds > 0:
                points.append((index, run.seconds, marker))
    if not points:
        return f"{title}\n(no completed points to plot)"

    xs = series[0].xs
    n_columns = len(xs)
    values = [seconds for _, seconds, _ in points]
    low, high = min(values), max(values)

    def scale(value: float) -> float:
        if log_y:
            if high == low:
                return 0.5
            return (math.log10(value) - math.log10(low)) / (
                math.log10(high) - math.log10(low)
            )
        if high == low:
            return 0.5
        return (value - low) / (high - low)

    column_width = 6
    grid = [
        [" "] * (n_columns * column_width) for _ in range(height)
    ]
    for x_index, seconds, marker in points:
        row = height - 1 - int(round(scale(seconds) * (height - 1)))
        column = x_index * column_width
        cell = grid[row][column]
        grid[row][column] = "*" if cell not in (" ", marker) else marker

    label_width = max(len(_format_seconds(high)), len(_format_seconds(low))) + 1
    lines = [f"{title}    " + " ".join(markers)]
    for row_index, row in enumerate(grid):
        if row_index == 0:
            label = _format_seconds(high).rjust(label_width)
        elif row_index == height - 1:
            label = _format_seconds(low).rjust(label_width)
        else:
            label = " " * label_width
        lines.append(f"{label} |" + "".join(row).rstrip())
    lines.append(" " * label_width + " +" + "-" * (n_columns * column_width))
    axis = " " * (label_width + 2)
    for x in xs:
        axis += str(x).ljust(column_width)
    lines.append(axis.rstrip())
    if log_y:
        lines.append(" " * (label_width + 2) + "(log-scale y, like the paper)")
    return "\n".join(lines)
