"""Ablations of FARMER's design choices (DESIGN.md §5).

Two studies beyond the paper's own evaluation:

* **pruning ablation** — re-run FARMER with each pruning strategy
  disabled (P1 row compression, P2 already-identified back-check, P3
  threshold bounds) and report runtime + nodes expanded.  Results are
  identical across configurations by construction (the test suite pins
  this); only the work changes.
* **MineLB ablation** — the incremental lower-bound algorithm (Figure 9)
  against a naive minimal-generator search that tests every subset of
  the upper bound.
"""

from __future__ import annotations

import time
from itertools import combinations

from ..core.constraints import Constraints
from ..core.enumeration import SearchBudget
from ..core.farmer import ALL_PRUNINGS, Farmer
from ..core.minelb import lower_bounds_for_group
from ..core.rulegroup import RuleGroup
from ..data.dataset import ItemizedDataset
from ..errors import ReproError
from .harness import format_table
from .workloads import build_workload

__all__ = [
    "run_pruning_ablation",
    "pruning_ablation_report",
    "naive_lower_bounds",
    "run_minelb_ablation",
    "minelb_ablation_report",
]

#: Ablation configurations: name -> enabled prunings.
PRUNING_CONFIGS: dict[str, frozenset[str]] = {
    "all prunings": ALL_PRUNINGS,
    "no P1 (row compression)": frozenset({"p3"}),
    "no P2 (already identified)": frozenset({"p1", "p3"}),
    "no P3 (threshold bounds)": frozenset({"p1", "p2"}),
    "no pruning at all": frozenset(),
}


def run_pruning_ablation(
    dataset: str = "CT",
    minsup: int | None = None,
    minconf: float = 0.8,
    scale: float = 0.04,
    timeout: float = 120.0,
) -> list[dict[str, object]]:
    """Time FARMER under each pruning configuration on one workload."""
    workload = build_workload(dataset, scale=scale)
    support = minsup if minsup is not None else workload.minsup_grid[-2]
    rows: list[dict[str, object]] = []
    for config_name, prunings in PRUNING_CONFIGS.items():
        miner = Farmer(
            constraints=Constraints(minsup=support, minconf=minconf),
            prunings=prunings,
            budget=SearchBudget(max_seconds=timeout),
        )
        started = time.perf_counter()
        try:
            result = miner.mine(workload.data, workload.consequent)
            rows.append(
                {
                    "config": config_name,
                    "seconds": time.perf_counter() - started,
                    "nodes": result.counters.nodes,
                    "groups": len(result.groups),
                    "status": "ok",
                }
            )
        except Exception:  # BudgetExceeded
            rows.append(
                {
                    "config": config_name,
                    "seconds": time.perf_counter() - started,
                    "nodes": miner.budget.nodes,
                    "groups": 0,
                    "status": "timeout",
                }
            )
    return rows


def pruning_ablation_report(rows: list[dict[str, object]]) -> str:
    """Render the pruning ablation."""
    headers = ["configuration", "runtime", "nodes expanded", "IRGs", "status"]
    body = [
        [
            row["config"],
            f"{row['seconds']:.3f}s",
            row["nodes"],
            row["groups"],
            row["status"],
        ]
        for row in rows
    ]
    return "Pruning ablation (identical output, different work)\n" + format_table(
        headers, body
    )


def naive_lower_bounds(
    dataset: ItemizedDataset, group: RuleGroup
) -> tuple[frozenset[int], ...]:
    """Reference minimal-generator search: test subsets smallest-first.

    Exponential in ``|upper|``; the MineLB ablation baseline and the
    oracle for MineLB's property tests.
    """
    outside = [
        dataset.rows[index] & group.upper
        for index in range(dataset.n_rows)
        if index not in group.rows
    ]
    items = sorted(group.upper)
    minimal: list[frozenset[int]] = []
    for size in range(1, len(items) + 1):
        for subset in combinations(items, size):
            candidate = frozenset(subset)
            if any(candidate <= row for row in outside):
                continue
            if any(bound <= candidate for bound in minimal):
                continue
            minimal.append(candidate)
    if not minimal and items:
        minimal = [frozenset((item,)) for item in items]
    return tuple(sorted(minimal, key=lambda bound: (len(bound), sorted(bound))))


def run_minelb_ablation(
    dataset: str = "CT",
    minsup: int = 2,
    minconf: float = 0.0,
    scale: float = 0.08,
    max_groups: int = 40,
    max_upper_size: int = 16,
) -> dict[str, object]:
    """Time incremental MineLB vs the naive search on real mined groups.

    The groups with the *longest* upper bounds are compared — that is
    where generator computation is hard (a ``k``-item upper bound gives
    the naive search a ``2^k`` subset space).  Groups beyond
    ``max_upper_size`` are skipped for the naive side entirely, which is
    itself the ablation's finding: on real microarray rule groups
    (upper bounds of tens to thousands of items) only the incremental
    algorithm is feasible.
    """
    workload = build_workload(dataset, scale=scale)
    result = Farmer(
        constraints=Constraints(minsup=minsup, minconf=minconf)
    ).mine(workload.data, workload.consequent)
    groups = sorted(result.groups, key=lambda g: -len(g.upper))[:max_groups]

    # Add a few single-row closures: the minsup=1 rule groups whose upper
    # bounds are whole rows (hundreds of items on real microarray data) —
    # far beyond anything the naive search can touch.
    from ..core.closure import items_of, rows_of

    data = workload.data
    seen_rows = {group.rows for group in groups}
    added = 0
    for row_index in range(data.n_rows):
        if added >= 5:
            break
        upper = items_of(data, [row_index])
        support_set = rows_of(data, upper)
        if not upper or support_set in seen_rows:
            continue
        supp = sum(
            1
            for row in support_set
            if data.labels[row] == workload.consequent
        )
        groups.append(
            RuleGroup(
                upper=upper,
                consequent=workload.consequent,
                rows=support_set,
                support=supp,
                antecedent_support=len(support_set),
                n=data.n_rows,
                m=data.class_count(workload.consequent),
            )
        )
        seen_rows.add(support_set)
        added += 1

    timed_groups = 0
    incremental_seconds = 0.0
    naive_seconds = 0.0
    skipped = 0
    longest = 0
    for group in groups:
        longest = max(longest, len(group.upper))
        started = time.perf_counter()
        incremental = lower_bounds_for_group(workload.data, group)
        incremental_seconds += time.perf_counter() - started
        if len(group.upper) > max_upper_size:
            skipped += 1  # naive would need 2^|upper| subset tests
            continue
        started = time.perf_counter()
        naive = naive_lower_bounds(workload.data, group)
        naive_seconds += time.perf_counter() - started
        if set(incremental) != set(naive):
            raise ReproError(
                f"MineLB disagrees with naive enumeration on {dataset}"
            )
        timed_groups += 1
    return {
        "dataset": dataset,
        "groups_timed": timed_groups,
        "groups_skipped_too_long": skipped,
        "longest_upper": longest,
        "incremental_seconds": incremental_seconds,
        "naive_seconds": naive_seconds,
    }


def minelb_ablation_report(result: dict[str, object]) -> str:
    """Render the MineLB ablation."""
    lines = [
        "MineLB ablation (incremental Figure 9 vs naive subset search)",
        f"dataset: {result['dataset']} "
        f"(longest upper bound: {result['longest_upper']} items)",
        f"groups timed on both: {result['groups_timed']}; "
        f"naive infeasible (2^|upper|) on {result['groups_skipped_too_long']} "
        "more — that asymmetry is the point",
        f"incremental MineLB (all selected groups): "
        f"{result['incremental_seconds']:.4f}s",
        f"naive search (feasible groups only):      "
        f"{result['naive_seconds']:.4f}s",
    ]
    return "\n".join(lines)
