"""Experiment modules regenerating every table and figure of the paper.

One module per paper artifact (see DESIGN.md §4 for the full index):

* :mod:`~repro.experiments.table1`  — Table 1 dataset characteristics.
* :mod:`~repro.experiments.fig10`   — Figure 10(a-f), runtime vs minsup.
* :mod:`~repro.experiments.fig11`   — Figure 11(a-f), runtime vs minconf.
* :mod:`~repro.experiments.table2`  — Table 2 classification accuracy.
* :mod:`~repro.experiments.scaling` — Section 4.1.3 row replication.
* :mod:`~repro.experiments.ablation` — pruning & MineLB ablations (ours).
"""

from .ablation import (
    minelb_ablation_report,
    naive_lower_bounds,
    pruning_ablation_report,
    run_minelb_ablation,
    run_pruning_ablation,
)
from .crossover import crossover_report, run_crossover, run_tall_crossover
from .fig10 import fig10_report, run_fig10
from .fig11 import fig11_report, run_fig11
from .harness import (
    ScalingPoint,
    Series,
    TimedRun,
    format_scaling,
    format_series,
    format_table,
    scaling_curve,
    timed,
)
from .plots import ascii_chart
from .report import markdown_report, write_report
from .scaling import run_scaling, scaling_report
from .table1 import run_table1, table1_report
from .table2 import PAPER_TABLE2, run_table2, table2_report
from .workloads import MINCONF_GRID, MINSUP_GRIDS, Workload, build_workload

__all__ = [
    "MINCONF_GRID",
    "MINSUP_GRIDS",
    "PAPER_TABLE2",
    "ScalingPoint",
    "Series",
    "TimedRun",
    "Workload",
    "ascii_chart",
    "build_workload",
    "crossover_report",
    "fig10_report",
    "fig11_report",
    "format_scaling",
    "format_series",
    "format_table",
    "markdown_report",
    "minelb_ablation_report",
    "naive_lower_bounds",
    "pruning_ablation_report",
    "run_crossover",
    "run_fig10",
    "run_fig11",
    "run_minelb_ablation",
    "run_pruning_ablation",
    "run_scaling",
    "run_table1",
    "run_table2",
    "run_tall_crossover",
    "scaling_curve",
    "scaling_report",
    "table1_report",
    "table2_report",
    "timed",
    "write_report",
]
