"""Markdown report generation for experiment runs.

``EXPERIMENTS.md`` in this repository records one run; this module lets a
user regenerate that kind of record from their own runs (different
scales, seeds, datasets) without hand-editing::

    from repro import experiments
    from repro.experiments.report import markdown_report, write_report

    sections = {
        "table1": experiments.run_table1(),
        "fig10": experiments.run_fig10(("CT", "ALL")),
        "table2": experiments.run_table2(("CT",)),
    }
    write_report("MY_RUN.md", sections, scale=0.08)

Only the artifacts present in ``sections`` are rendered; each renders as
a Markdown section with GitHub-style tables.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from .harness import Series
from .table2 import PAPER_TABLE2

__all__ = ["markdown_report", "write_report"]


def _markdown_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    lines = [
        "| " + " | ".join(str(h) for h in headers) + " |",
        "|" + "|".join("---" for _ in headers) + "|",
    ]
    for row in rows:
        lines.append("| " + " | ".join(str(v) for v in row) + " |")
    return "\n".join(lines)


def _render_table1(rows: list[dict]) -> str:
    body = [
        [
            r["dataset"],
            r["n_rows"],
            r["paper_cols"],
            r["generated_cols"],
            f"{r['class1']} / {r['class0']}",
            r["n_class1"],
        ]
        for r in rows
    ]
    return "## Table 1 — dataset characteristics\n\n" + _markdown_table(
        ["dataset", "# row", "# col paper", "# col ours", "classes", "# class 1"],
        body,
    )


def _render_figure(
    title: str, x_label: str, results: dict[str, list[Series]]
) -> str:
    sections = [f"## {title}"]
    for name, series in results.items():
        headers = [x_label] + [curve.name for curve in series]
        rows = []
        for index, x in enumerate(series[0].xs):
            row: list[object] = [x]
            for curve in series:
                row.append(
                    curve.ys[index].cell() if index < len(curve.ys) else "-"
                )
            rows.append(row)
        sections.append(f"### {name}\n\n" + _markdown_table(headers, rows))
    return "\n\n".join(sections)


def _render_table2(rows: list[dict]) -> str:
    body = []
    for row in rows:
        paper = PAPER_TABLE2.get(row["dataset"], {})
        body.append(
            [
                row["dataset"],
                f"{row['n_train']}/{row['n_test']}",
                f"{row['IRG']:.2%}",
                f"{paper.get('IRG', float('nan')):.2%}" if paper else "-",
                f"{row['CBA']:.2%}",
                f"{row['SVM']:.2%}",
            ]
        )
    if rows:
        count = len(rows)
        body.append(
            [
                "**average**",
                "",
                f"{sum(r['IRG'] for r in rows) / count:.2%}",
                "83.03%" if len(rows) == 5 else "-",
                f"{sum(r['CBA'] for r in rows) / count:.2%}",
                f"{sum(r['SVM'] for r in rows) / count:.2%}",
            ]
        )
    return (
        "## Table 2 — classification accuracy\n\n"
        + _markdown_table(
            ["dataset", "train/test", "IRG ours", "IRG paper", "CBA ours", "SVM ours"],
            body,
        )
    )


def _render_scaling(series: list[Series]) -> str:
    headers = ["factor"] + [curve.name for curve in series]
    rows = []
    for index, x in enumerate(series[0].xs):
        rows.append([x] + [curve.ys[index].cell() for curve in series])
    return "## Row-replication scaling\n\n" + _markdown_table(headers, rows)


def _render_ablation(rows: list[dict]) -> str:
    body = [
        [r["config"], f"{r['seconds']:.3f}s", r["nodes"], r["groups"], r["status"]]
        for r in rows
    ]
    return "## Pruning ablation\n\n" + _markdown_table(
        ["configuration", "runtime", "nodes", "IRGs", "status"], body
    )


_RENDERERS = {
    "table1": _render_table1,
    "fig10": lambda results: _render_figure(
        "Figure 10 — runtime vs minsup", "minsup", results
    ),
    "fig11": lambda results: _render_figure(
        "Figure 11 — runtime vs minconf", "minconf", results
    ),
    "table2": _render_table2,
    "scaling": _render_scaling,
    "ablation": _render_ablation,
}


def markdown_report(sections: dict[str, object], scale: float | None = None) -> str:
    """Render the given experiment outputs as one Markdown document.

    Args:
        sections: artifact name -> the corresponding ``run_*`` output;
            recognized names: ``table1 fig10 fig11 table2 scaling
            ablation``.  Unknown names raise ``KeyError``.
        scale: the gene-count scale used, recorded in the preamble.
    """
    parts = ["# FARMER reproduction — experiment run"]
    if scale is not None:
        parts.append(f"Gene-count scale: `{scale}` of the paper's columns.")
    for name, payload in sections.items():
        renderer = _RENDERERS[name]
        parts.append(renderer(payload))
    return "\n\n".join(parts) + "\n"


def write_report(
    path: str | Path, sections: dict[str, object], scale: float | None = None
) -> Path:
    """Render and write the report; returns the path written."""
    path = Path(path)
    path.write_text(markdown_report(sections, scale=scale), encoding="utf-8")
    return path
