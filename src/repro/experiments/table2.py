"""Table 2: classification accuracy — IRG classifier vs CBA vs SVM.

Reproduces Section 4.2: on each dataset, split samples into the paper's
train/test sizes, discretize with entropy-MDL (fitted on training samples
only — this is the discretization the paper says the *other miners could
not even run on*), train the three classifiers and report test accuracy.

Paper numbers for reference (our data is synthetic, so absolute values
differ; the shapes that should hold are: the IRG classifier is the best
*on average*, and no classifier wins on every dataset)::

    dataset  #training  #test   IRG      CBA      SVM
    BC        78         19     78.95%   57.89%   36.84%
    LC        32        149     89.93%   81.88%   96.64%
    CT        47         15     93.33%   73.33%   73.33%
    PC       102         34     88.24%   82.35%   79.41%
    ALL       38         34     64.71%   91.18%   97.06%
    average                     83.03%   77.33%   76.66%
"""

from __future__ import annotations

from ..classify.cba import CBAClassifier
from ..classify.evaluate import (
    evaluate_matrix_based,
    evaluate_rule_based,
    split_matrix,
)
from ..classify.irg import IRGClassifier
from ..classify.svm import LinearSVM
from ..data.discretize import EntropyMDLDiscretizer
from ..data.registry import PAPER_DATASETS, load, train_test_rows
from .harness import format_table
from .workloads import DATASET_ORDER

__all__ = ["run_table2", "table2_report", "PAPER_TABLE2"]

#: The paper's reported accuracies, for EXPERIMENTS.md comparisons.
PAPER_TABLE2: dict[str, dict[str, float]] = {
    "BC": {"IRG": 0.7895, "CBA": 0.5789, "SVM": 0.3684},
    "LC": {"IRG": 0.8993, "CBA": 0.8188, "SVM": 0.9664},
    "CT": {"IRG": 0.9333, "CBA": 0.7333, "SVM": 0.7333},
    "PC": {"IRG": 0.8824, "CBA": 0.8235, "SVM": 0.7941},
    "ALL": {"IRG": 0.6471, "CBA": 0.9118, "SVM": 0.9706},
}


def run_table2(
    datasets: tuple[str, ...] = DATASET_ORDER,
    scale: float = 0.08,
    seed: int = 0,
) -> list[dict[str, object]]:
    """Run the Table 2 protocol; returns one result row per dataset."""
    rows: list[dict[str, object]] = []
    for name in datasets:
        spec = PAPER_DATASETS[name]
        matrix = load(name, scale=scale)
        train_rows, test_rows = train_test_rows(spec, seed=seed)
        train, test = split_matrix(matrix, train_rows, test_rows)

        irg_accuracy = evaluate_rule_based(
            IRGClassifier(), train, test, discretizer=EntropyMDLDiscretizer()
        )
        cba_accuracy = evaluate_rule_based(
            CBAClassifier(), train, test, discretizer=EntropyMDLDiscretizer()
        )
        svm_accuracy = evaluate_matrix_based(LinearSVM(seed=seed), train, test)
        rows.append(
            {
                "dataset": spec.name,
                "n_train": len(train_rows),
                "n_test": len(test_rows),
                "IRG": irg_accuracy,
                "CBA": cba_accuracy,
                "SVM": svm_accuracy,
            }
        )
    return rows


def table2_report(rows: list[dict[str, object]]) -> str:
    """Render Table 2 (with the average-accuracy footer row)."""
    headers = ["dataset", "#training", "#test", "IRG classifier", "CBA", "SVM"]
    body = [
        [
            row["dataset"],
            row["n_train"],
            row["n_test"],
            f"{row['IRG']:.2%}",
            f"{row['CBA']:.2%}",
            f"{row['SVM']:.2%}",
        ]
        for row in rows
    ]
    if rows:
        count = len(rows)
        body.append(
            [
                "average",
                "",
                "",
                f"{sum(r['IRG'] for r in rows) / count:.2%}",
                f"{sum(r['CBA'] for r in rows) / count:.2%}",
                f"{sum(r['SVM'] for r in rows) / count:.2%}",
            ]
        )
    return "Table 2: classification accuracy\n" + format_table(headers, body)
