"""Table 1: characteristics of the five microarray datasets.

The paper's Table 1 lists, per dataset: row count, column count, the two
class labels and the class-1 row count.  Our synthetic stand-ins preserve
rows/classes exactly and scale the columns (see DESIGN.md); this module
reports both the paper's column count and the generated one so the
substitution is visible in every report.
"""

from __future__ import annotations

from ..data.registry import PAPER_DATASETS, load
from .harness import format_table
from .workloads import DATASET_ORDER

__all__ = ["run_table1", "table1_report"]


def run_table1(
    datasets: tuple[str, ...] = DATASET_ORDER, scale: float = 0.08
) -> list[dict[str, object]]:
    """Collect Table 1 rows (paper values + generated values)."""
    rows = []
    for name in datasets:
        spec = PAPER_DATASETS[name]
        matrix = load(name, scale=scale)
        rows.append(
            {
                "dataset": spec.name,
                "n_rows": matrix.n_samples,
                "paper_cols": spec.paper_cols,
                "generated_cols": matrix.n_genes,
                "class1": spec.class1,
                "class0": spec.class0,
                "n_class1": matrix.class_count(spec.class1),
            }
        )
    return rows


def table1_report(rows: list[dict[str, object]]) -> str:
    """Render Table 1 as plain text."""
    headers = [
        "dataset",
        "# row",
        "# col (paper)",
        "# col (ours)",
        "class 1",
        "class 0",
        "# row of class 1",
    ]
    body = [
        [
            row["dataset"],
            row["n_rows"],
            row["paper_cols"],
            row["generated_cols"],
            row["class1"],
            row["class0"],
            row["n_class1"],
        ]
        for row in rows
    ]
    return "Table 1: microarray datasets\n" + format_table(headers, body)
