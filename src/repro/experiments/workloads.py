"""Workload construction shared by the figure/table experiments.

One place decides how a paper dataset becomes a miner-ready workload:
registry generation -> equal-depth discretization (the paper's setting
for the efficiency experiments) -> per-dataset parameter grids.

The ``minsup`` grids track each dataset's row count: with 10 equal-depth
buckets an item supports about ``n/10`` rows, which caps every rule's
antecedent support — the paper's Figure 10 x-axes (single-digit minsup
on the small datasets) reflect the same ceiling.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

from ..data.dataset import ItemizedDataset
from ..data.discretize import EqualDepthDiscretizer
from ..data.registry import PAPER_DATASETS, load

__all__ = ["Workload", "build_workload", "MINSUP_GRIDS", "MINCONF_GRID", "DATASET_ORDER"]

#: Dataset presentation order used by the paper's figures.
DATASET_ORDER = ("LC", "BC", "PC", "ALL", "CT")

#: Per-dataset minsup sweeps (descending, like the paper's x-axes).
MINSUP_GRIDS: dict[str, list[int]] = {
    "LC": [16, 14, 12, 11],
    "BC": [9, 8, 7, 6],
    "PC": [12, 11, 10, 9],
    "ALL": [7, 6, 5, 4],
    "CT": [6, 5, 4, 3],
}

#: The minconf sweep of Figure 11 (the paper's 0 .. 99%).
MINCONF_GRID: list[float] = [0.0, 0.5, 0.7, 0.8, 0.85, 0.9, 0.99]


@dataclass(frozen=True)
class Workload:
    """A miner-ready dataset plus its experiment parameters.

    Attributes:
        name: dataset code (``LC`` etc.).
        data: the equal-depth discretized dataset.
        consequent: class 1 of the dataset (the paper's consequent for
            every experiment).
        minsup_grid: the Figure 10 sweep for this dataset.
        fig11_minsup: the low fixed minsup used in the Figure 11 sweep.
    """

    name: str
    data: ItemizedDataset
    consequent: str
    minsup_grid: tuple[int, ...]
    fig11_minsup: int


@lru_cache(maxsize=32)
def build_workload(
    name: str, scale: float = 0.08, n_buckets: int = 10, seed: int | None = None
) -> Workload:
    """Generate + discretize one paper dataset (cached per parameters)."""
    spec = PAPER_DATASETS[name.upper()]
    matrix = load(name, scale=scale, seed=seed)
    data = EqualDepthDiscretizer(n_buckets=n_buckets).fit_transform(matrix)
    grid = MINSUP_GRIDS[spec.name]
    return Workload(
        name=spec.name,
        data=data,
        consequent=spec.class1,
        minsup_grid=tuple(grid),
        fig11_minsup=grid[-1],
    )
