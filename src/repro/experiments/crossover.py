"""Experiment X4: the enumeration-direction crossover (COBBLER's motive).

The authors' SSDBM'04 follow-up (and their talk's "length and row ratio"
plots) observe that neither enumeration direction wins everywhere: row
enumeration dominates when columns >> rows, column enumeration when rows
>> columns, and COBBLER's dynamic switching should track the better of
the two as the ratio moves.

This experiment sweeps the gene count of a fixed-row synthetic cohort and
times closed-pattern mining by CARPENTER (pure row enumeration), CHARM
(pure column enumeration) and COBBLER (dynamic).  Expected shape: the
CARPENTER and CHARM curves cross as genes grow; COBBLER stays near the
lower envelope.
"""

from __future__ import annotations

from ..baselines.carpenter import Carpenter
from ..baselines.charm import Charm
from ..core.enumeration import SearchBudget
from ..data.discretize import EqualDepthDiscretizer
from ..data.registry import load
from ..extensions.cobbler import Cobbler
from .harness import Series, format_series, timed

__all__ = ["run_crossover", "run_tall_crossover", "crossover_report"]


def run_crossover(
    dataset: str = "CT",
    gene_counts: tuple[int, ...] = (100, 300, 600, 1000),
    minsup: int = 4,
    timeout: float = 120.0,
) -> list[Series]:
    """Sweep the gene count; time the three closed-pattern miners."""
    spec_cols = {"CT": 2000, "ALL": 7129, "BC": 24481, "PC": 12600, "LC": 12533}
    paper_cols = spec_cols[dataset.upper()]

    carpenter = Series("CARPENTER (rows)")
    charm = Series("CHARM (columns)")
    cobbler = Series("COBBLER (dynamic)")
    for genes in gene_counts:
        matrix = load(dataset, scale=genes / paper_cols)
        data = EqualDepthDiscretizer(n_buckets=10).fit_transform(matrix)

        carpenter.add(
            genes,
            timed(
                lambda: Carpenter(
                    minsup=minsup, budget=SearchBudget(max_seconds=timeout)
                ).mine(data)
            ),
        )
        charm.add(
            genes,
            timed(
                lambda: Charm(
                    minsup=minsup, budget=SearchBudget(max_seconds=timeout)
                ).mine(data)
            ),
        )
        cobbler.add(
            genes,
            timed(
                lambda: Cobbler(
                    minsup=minsup, budget=SearchBudget(max_seconds=timeout)
                ).mine(data)
            ),
        )
    return [carpenter, charm, cobbler]


def run_tall_crossover(
    dataset: str = "CT",
    factors: tuple[int, ...] = (2, 5, 10),
    genes: int = 64,
    base_minsup: int = 4,
    timeout: float = 120.0,
) -> list[Series]:
    """The opposite regime: few genes, replicated rows (rows >> columns).

    Here column enumeration should win and COBBLER should switch into it
    — the other half of the crossover story.
    """
    spec_cols = {"CT": 2000, "ALL": 7129, "BC": 24481, "PC": 12600, "LC": 12533}
    matrix = load(dataset, scale=genes / spec_cols[dataset.upper()])
    base = EqualDepthDiscretizer(n_buckets=10).fit_transform(matrix)

    carpenter = Series("CARPENTER (rows)")
    charm = Series("CHARM (columns)")
    cobbler = Series("COBBLER (dynamic)")
    for factor in factors:
        data = base.replicate(factor)
        minsup = base_minsup * factor
        carpenter.add(
            factor,
            timed(
                lambda: Carpenter(
                    minsup=minsup, budget=SearchBudget(max_seconds=timeout)
                ).mine(data)
            ),
        )
        charm.add(
            factor,
            timed(
                lambda: Charm(
                    minsup=minsup, budget=SearchBudget(max_seconds=timeout)
                ).mine(data)
            ),
        )
        cobbler.add(
            factor,
            timed(
                lambda: Cobbler(
                    minsup=minsup, budget=SearchBudget(max_seconds=timeout)
                ).mine(data)
            ),
        )
    return [carpenter, charm, cobbler]


def crossover_report(
    wide: list[Series],
    tall: list[Series] | None = None,
    dataset: str = "CT",
) -> str:
    """Render the crossover sweeps."""
    parts = [
        format_series(
            f"Enumeration-direction crossover ({dataset}, wide regime): "
            "closed-pattern mining runtime vs gene count (fixed rows)",
            "genes",
            wide,
        )
    ]
    if tall is not None:
        parts.append(
            format_series(
                f"Enumeration-direction crossover ({dataset}, tall regime): "
                "runtime vs row-replication factor (few genes)",
                "factor",
                tall,
            )
        )
    return "\n\n".join(parts)
