"""Figure 10: runtime vs ``minsup`` — FARMER vs ColumnE vs CHARM.

Reproduces the paper's first experiment set (Section 4.1.1): on each of
the five datasets, sweep ``minsup`` with ``minconf = minchi = 0``
(disabling FARMER's confidence and chi-square pruning, as the paper
does), timing FARMER, ColumnE and CHARM; and count the discovered IRGs
(Figure 10(f)).

Expected shape (paper): FARMER is fastest everywhere, the gap growing as
``minsup`` falls; CHARM cannot finish at all on the widest datasets
(BC, LC) — reproduced here as ``timeout`` cells under the per-run budget.
"""

from __future__ import annotations

from ..baselines.charm import Charm
from ..baselines.columne import ColumnE
from ..core.constraints import Constraints
from ..core.enumeration import SearchBudget
from ..core.farmer import Farmer
from .harness import Series, TimedRun, format_series, timed
from .workloads import DATASET_ORDER, Workload, build_workload

__all__ = ["run_fig10", "fig10_report"]


def _farmer_point(workload: Workload, minsup: int, timeout: float) -> TimedRun:
    miner = Farmer(
        constraints=Constraints(minsup=minsup, minconf=0.0, minchi=0.0),
        budget=SearchBudget(max_seconds=timeout),
    )
    return timed(lambda: miner.mine(workload.data, workload.consequent).groups)


def _columne_point(workload: Workload, minsup: int, timeout: float) -> TimedRun:
    miner = ColumnE(
        constraints=Constraints(minsup=minsup, minconf=0.0, minchi=0.0),
        budget=SearchBudget(max_seconds=timeout),
    )
    return timed(lambda: miner.mine(workload.data, workload.consequent))


def _charm_point(workload: Workload, minsup: int, timeout: float) -> TimedRun:
    miner = Charm(minsup=minsup, budget=SearchBudget(max_seconds=timeout))
    return timed(lambda: miner.mine(workload.data))


def run_fig10(
    datasets: tuple[str, ...] = DATASET_ORDER,
    scale: float = 0.08,
    timeout: float = 60.0,
    minsup_grid: list[int] | None = None,
) -> dict[str, list[Series]]:
    """Run the Figure 10 sweep; returns per-dataset series.

    Each dataset maps to four series: FARMER, ColumnE, CHARM runtimes and
    the IRG count (the count series stores the number in ``count`` with
    FARMER's runtime).  ``timeout`` is the per-point budget; a baseline
    exceeding it yields a ``timeout`` cell, and once a baseline times out
    at some ``minsup`` it is skipped at lower values (runtime grows
    monotonically as ``minsup`` falls, matching the paper's missing
    curves).
    """
    results: dict[str, list[Series]] = {}
    for name in datasets:
        workload = build_workload(name, scale=scale)
        grid = minsup_grid if minsup_grid is not None else list(workload.minsup_grid)
        farmer = Series("FARMER")
        columne = Series("ColumnE")
        charm = Series("CHARM")
        irgs = Series("#IRGs")
        columne_dead = charm_dead = False
        for minsup in grid:
            farmer_run = _farmer_point(workload, minsup, timeout)
            farmer.add(minsup, farmer_run)
            irgs.add(minsup, farmer_run)

            if columne_dead:
                columne.add(minsup, TimedRun(timeout, 0, "timeout"))
            else:
                run = _columne_point(workload, minsup, timeout)
                columne.add(minsup, run)
                columne_dead = not run.ok

            if charm_dead:
                charm.add(minsup, TimedRun(timeout, 0, "timeout"))
            else:
                run = _charm_point(workload, minsup, timeout)
                charm.add(minsup, run)
                charm_dead = not run.ok
        results[name] = [farmer, columne, charm, irgs]
    return results


def fig10_report(results: dict[str, list[Series]]) -> str:
    """Render the Figure 10 sweep as plain-text tables."""
    sections = []
    for name, series in results.items():
        sections.append(
            format_series(
                f"Figure 10 ({name}): runtime vs minsup "
                "(minconf=0, minchi=0; cells are 'seconds (result count)')",
                "minsup",
                series,
            )
        )
    return "\n\n".join(sections)
