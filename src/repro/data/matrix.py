"""Continuous gene-expression matrices.

Real microarray data arrives as a dense matrix of expression levels — one
row per clinical sample, one column per gene — plus a class label per
sample (e.g. ``tumor`` / ``normal``).  :class:`GeneExpressionMatrix` is the
thin, validated container for that stage of the pipeline; discretizers in
:mod:`repro.data.discretize` turn it into the :class:`~repro.data.dataset.
ItemizedDataset` the miners consume, and :mod:`repro.classify.svm` consumes
it directly (the SVM baseline works on continuous values, as in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, Sequence

import numpy as np

from ..errors import DataError

__all__ = ["GeneExpressionMatrix"]


@dataclass(frozen=True)
class GeneExpressionMatrix:
    """A samples x genes expression matrix with per-sample class labels.

    Attributes:
        values: float array of shape ``(n_samples, n_genes)``.
        labels: one class label per sample.
        gene_names: one name per gene column.
        name: dataset name used in reports.
    """

    values: np.ndarray
    labels: tuple[Hashable, ...]
    gene_names: tuple[str, ...]
    name: str = "matrix"

    def __post_init__(self) -> None:
        values = np.asarray(self.values, dtype=float)
        if values.ndim != 2:
            raise DataError(f"expression matrix must be 2-D, got shape {values.shape}")
        object.__setattr__(self, "values", values)
        if len(self.labels) != values.shape[0]:
            raise DataError(
                f"{len(self.labels)} labels for {values.shape[0]} samples"
            )
        if len(self.gene_names) != values.shape[1]:
            raise DataError(
                f"{len(self.gene_names)} gene names for {values.shape[1]} genes"
            )
        if not np.isfinite(values).all():
            raise DataError("expression matrix contains NaN or infinite values")

    @classmethod
    def from_arrays(
        cls,
        values,
        labels: Sequence[Hashable],
        gene_names: Sequence[str] | None = None,
        name: str = "matrix",
    ) -> "GeneExpressionMatrix":
        """Build a matrix, synthesizing ``g0, g1, ...`` gene names if absent."""
        values = np.asarray(values, dtype=float)
        if gene_names is None:
            gene_names = tuple(f"g{j}" for j in range(values.shape[1]))
        return cls(
            values=values,
            labels=tuple(labels),
            gene_names=tuple(gene_names),
            name=name,
        )

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    @property
    def n_samples(self) -> int:
        """Number of samples (rows)."""
        return self.values.shape[0]

    @property
    def n_genes(self) -> int:
        """Number of genes (columns)."""
        return self.values.shape[1]

    @property
    def class_labels(self) -> tuple[Hashable, ...]:
        """Distinct class labels in first-appearance order."""
        seen: dict[Hashable, None] = {}
        for label in self.labels:
            seen.setdefault(label, None)
        return tuple(seen)

    def class_count(self, label: Hashable) -> int:
        """Number of samples carrying ``label``."""
        return sum(1 for current in self.labels if current == label)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def select_samples(self, indices: Sequence[int], name: str | None = None) -> "GeneExpressionMatrix":
        """Return a sub-matrix with the given sample rows, in order."""
        indices = list(indices)
        if any(not 0 <= i < self.n_samples for i in indices):
            raise DataError(f"sample index out of range in {indices!r}")
        return GeneExpressionMatrix(
            values=self.values[indices],
            labels=tuple(self.labels[i] for i in indices),
            gene_names=self.gene_names,
            name=name if name is not None else self.name,
        )

    def select_genes(self, indices: Sequence[int], name: str | None = None) -> "GeneExpressionMatrix":
        """Return a sub-matrix with the given gene columns, in order."""
        indices = list(indices)
        if any(not 0 <= j < self.n_genes for j in indices):
            raise DataError(f"gene index out of range in {indices!r}")
        return GeneExpressionMatrix(
            values=self.values[:, indices],
            labels=self.labels,
            gene_names=tuple(self.gene_names[j] for j in indices),
            name=name if name is not None else self.name,
        )

    def standardized(self) -> np.ndarray:
        """Per-gene z-scored copy of the values (for the SVM baseline).

        Genes with zero variance standardize to all-zero columns rather
        than dividing by zero.
        """
        mean = self.values.mean(axis=0)
        std = self.values.std(axis=0)
        std[std == 0.0] = 1.0
        return (self.values - mean) / std

    def summary(self) -> dict[str, object]:
        """Table-1 style characteristics of the matrix."""
        return {
            "name": self.name,
            "n_samples": self.n_samples,
            "n_genes": self.n_genes,
            "class_counts": {
                label: self.class_count(label) for label in self.class_labels
            },
        }
