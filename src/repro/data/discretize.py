"""Discretization of continuous expression values into items.

The paper (Section 4, "Datasets") uses two discretization schemes:

* **equal-depth partitioning with 10 buckets** for the efficiency
  experiments (Figures 10 and 11), and
* **entropy-minimized partitioning** (Fayyad & Irani's MDL method, via
  MLC++) for the classification experiments (Table 2) — it is supervised
  and drops genes whose expression carries no class signal, which is why
  the competing miners could not even finish on the equal-depth data.

Both are implemented here with a scikit-learn-style ``fit`` /
``transform`` split so a discretizer fitted on training samples can be
applied to held-out test samples (required by the Table 2 protocol).

An *item* is a ``(gene, interval)`` pair; e.g. the item named
``"TP53@[2.31,3.05)"`` is present in a sample iff that sample's TP53
expression falls in the interval.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod

import numpy as np

from ..errors import DataError
from .dataset import ItemizedDataset
from .matrix import GeneExpressionMatrix

__all__ = [
    "Discretizer",
    "EqualDepthDiscretizer",
    "EntropyMDLDiscretizer",
]


class Discretizer(ABC):
    """Common interface: ``fit`` on a matrix, ``transform`` to items."""

    @abstractmethod
    def fit(self, matrix: GeneExpressionMatrix) -> "Discretizer":
        """Learn per-gene cut points from ``matrix``; returns ``self``."""

    @abstractmethod
    def transform(self, matrix: GeneExpressionMatrix) -> ItemizedDataset:
        """Map each sample to its set of ``(gene, interval)`` items."""

    def fit_transform(self, matrix: GeneExpressionMatrix) -> ItemizedDataset:
        """Convenience: ``fit(matrix)`` then ``transform(matrix)``."""
        return self.fit(matrix).transform(matrix)


def _interval_name(gene: str, cuts: np.ndarray, bucket: int) -> str:
    """Human-readable name for bucket ``bucket`` of a gene with ``cuts``."""
    low = "-inf" if bucket == 0 else f"{cuts[bucket - 1]:.4g}"
    high = "+inf" if bucket == len(cuts) else f"{cuts[bucket]:.4g}"
    return f"{gene}@[{low},{high})"


class EqualDepthDiscretizer(Discretizer):
    """Equal-frequency bucketing, ``n_buckets`` per gene (paper default 10).

    Cut points are the empirical quantiles of each gene's training values.
    Duplicate quantiles (genes with many ties) are collapsed, so a gene may
    end up with fewer than ``n_buckets`` distinct buckets; a constant gene
    yields a single bucket.  Every sample produces exactly one item per
    gene, so rows all have length ``n_genes`` — this is what makes the
    equal-depth datasets brutal for column enumeration.
    """

    def __init__(self, n_buckets: int = 10) -> None:
        if n_buckets < 1:
            raise DataError(f"n_buckets must be >= 1, got {n_buckets}")
        self.n_buckets = n_buckets
        self._cuts: list[np.ndarray] | None = None
        self._item_base: list[int] | None = None
        self._item_names: list[str] | None = None
        self._n_items = 0

    def fit(self, matrix: GeneExpressionMatrix) -> "EqualDepthDiscretizer":
        if matrix.n_samples == 0:
            raise DataError("cannot fit a discretizer on an empty matrix")
        cuts_per_gene: list[np.ndarray] = []
        item_base: list[int] = []
        item_names: list[str] = []
        next_id = 0
        quantiles = np.arange(1, self.n_buckets) / self.n_buckets
        for gene_index in range(matrix.n_genes):
            column = matrix.values[:, gene_index]
            cuts = np.unique(np.quantile(column, quantiles)) if len(quantiles) else np.empty(0)
            cuts_per_gene.append(cuts)
            item_base.append(next_id)
            gene = matrix.gene_names[gene_index]
            for bucket in range(len(cuts) + 1):
                item_names.append(_interval_name(gene, cuts, bucket))
            next_id += len(cuts) + 1
        self._cuts = cuts_per_gene
        self._item_base = item_base
        self._item_names = item_names
        self._n_items = next_id
        return self

    def transform(self, matrix: GeneExpressionMatrix) -> ItemizedDataset:
        if self._cuts is None:
            raise DataError("transform() called before fit()")
        if matrix.n_genes != len(self._cuts):
            raise DataError(
                f"matrix has {matrix.n_genes} genes; discretizer was fitted "
                f"on {len(self._cuts)}"
            )
        # searchsorted with side="right" sends a value equal to a cut into
        # the higher bucket, matching the half-open [low, high) intervals.
        buckets = np.empty((matrix.n_samples, matrix.n_genes), dtype=np.int64)
        for gene_index, cuts in enumerate(self._cuts):
            buckets[:, gene_index] = np.searchsorted(
                cuts, matrix.values[:, gene_index], side="right"
            )
        base = np.asarray(self._item_base, dtype=np.int64)
        item_matrix = buckets + base
        rows = [frozenset(int(i) for i in sample) for sample in item_matrix]
        return ItemizedDataset(
            rows=tuple(rows),
            labels=tuple(matrix.labels),
            n_items=self._n_items,
            item_names=tuple(self._item_names or ()),
            name=f"{matrix.name}/eqdepth{self.n_buckets}",
        )


def _class_entropy(counts: np.ndarray) -> float:
    """Entropy in bits of a class-count vector."""
    total = counts.sum()
    if total == 0:
        return 0.0
    probabilities = counts[counts > 0] / total
    return float(-(probabilities * np.log2(probabilities)).sum())


class EntropyMDLDiscretizer(Discretizer):
    """Fayyad-Irani recursive entropy minimization with the MDL stop rule.

    For each gene the samples are sorted by expression; the binary cut
    minimizing the class-entropy of the two halves is found among boundary
    points, accepted iff its information gain passes the MDL criterion

    ``gain > (log2(N-1) + log2(3^k - 2) - k*E(S) + k1*E(S1) + k2*E(S2)) / N``

    and the two halves are then split recursively.  Genes where no cut is
    accepted are *dropped* (they produce no items), which is the behaviour
    of the MLC++ code the paper used and the reason the entropy-discretized
    datasets are far sparser than the equal-depth ones.
    """

    def __init__(self, max_depth: int = 16) -> None:
        if max_depth < 1:
            raise DataError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self._cuts: list[np.ndarray] | None = None
        self._item_base: list[int] | None = None
        self._item_names: list[str] | None = None
        self._kept_genes: list[int] | None = None
        self._n_items = 0

    # -- fitting -------------------------------------------------------

    def fit(self, matrix: GeneExpressionMatrix) -> "EntropyMDLDiscretizer":
        if matrix.n_samples == 0:
            raise DataError("cannot fit a discretizer on an empty matrix")
        label_to_index = {label: k for k, label in enumerate(matrix.class_labels)}
        classes = np.asarray([label_to_index[label] for label in matrix.labels])
        n_classes = len(label_to_index)

        cuts_per_gene: list[np.ndarray] = []
        kept: list[int] = []
        item_base: list[int] = []
        item_names: list[str] = []
        next_id = 0
        for gene_index in range(matrix.n_genes):
            column = matrix.values[:, gene_index]
            order = np.argsort(column, kind="stable")
            cuts = self._split_recursive(
                column[order], classes[order], n_classes, self.max_depth
            )
            if not cuts:
                continue
            cut_array = np.asarray(sorted(cuts))
            kept.append(gene_index)
            cuts_per_gene.append(cut_array)
            item_base.append(next_id)
            gene = matrix.gene_names[gene_index]
            for bucket in range(len(cut_array) + 1):
                item_names.append(_interval_name(gene, cut_array, bucket))
            next_id += len(cut_array) + 1
        self._cuts = cuts_per_gene
        self._kept_genes = kept
        self._item_base = item_base
        self._item_names = item_names
        self._n_items = next_id
        return self

    def _split_recursive(
        self,
        values: np.ndarray,
        classes: np.ndarray,
        n_classes: int,
        depth: int,
    ) -> list[float]:
        """Return accepted cut values for a sorted (values, classes) run."""
        n = len(values)
        if depth == 0 or n < 2:
            return []
        total_counts = np.bincount(classes, minlength=n_classes)
        base_entropy = _class_entropy(total_counts)
        if base_entropy == 0.0:
            return []

        best = self._best_boundary(values, classes, n_classes, total_counts)
        if best is None:
            return []
        split_at, left_entropy, right_entropy, left_classes_n, right_classes_n = best

        info = (
            split_at / n * left_entropy + (n - split_at) / n * right_entropy
        )
        gain = base_entropy - info
        k = int((total_counts > 0).sum())
        delta = (
            math.log2(3**k - 2)
            - (k * base_entropy - left_classes_n * left_entropy - right_classes_n * right_entropy)
        )
        threshold = (math.log2(n - 1) + delta) / n
        if gain <= threshold:
            return []

        cut = (values[split_at - 1] + values[split_at]) / 2.0
        left = self._split_recursive(
            values[:split_at], classes[:split_at], n_classes, depth - 1
        )
        right = self._split_recursive(
            values[split_at:], classes[split_at:], n_classes, depth - 1
        )
        return left + [float(cut)] + right

    @staticmethod
    def _best_boundary(
        values: np.ndarray,
        classes: np.ndarray,
        n_classes: int,
        total_counts: np.ndarray,
    ):
        """Find the entropy-minimizing cut position among value boundaries.

        Returns ``(split_index, left_entropy, right_entropy, k_left,
        k_right)`` or ``None`` when no valid boundary exists (all values
        equal).  Only positions where the value actually changes are
        candidates, so identical expression levels are never separated.
        """
        n = len(values)
        best_info = math.inf
        best = None
        left_counts = np.zeros(n_classes, dtype=np.int64)
        for split_at in range(1, n):
            left_counts[classes[split_at - 1]] += 1
            if values[split_at] == values[split_at - 1]:
                continue
            right_counts = total_counts - left_counts
            left_entropy = _class_entropy(left_counts)
            right_entropy = _class_entropy(right_counts)
            info = (
                split_at / n * left_entropy
                + (n - split_at) / n * right_entropy
            )
            if info < best_info:
                best_info = info
                best = (
                    split_at,
                    left_entropy,
                    right_entropy,
                    int((left_counts > 0).sum()),
                    int((right_counts > 0).sum()),
                )
        return best

    # -- transform ------------------------------------------------------

    def transform(self, matrix: GeneExpressionMatrix) -> ItemizedDataset:
        if self._cuts is None or self._kept_genes is None:
            raise DataError("transform() called before fit()")
        rows: list[frozenset[int]] = []
        if self._item_base is None:
            raise DataError("transform() called before fit()")
        for sample_index in range(matrix.n_samples):
            items: list[int] = []
            for kept_index, gene_index in enumerate(self._kept_genes):
                if gene_index >= matrix.n_genes:
                    raise DataError(
                        f"matrix has {matrix.n_genes} genes; discretizer "
                        f"expects gene index {gene_index}"
                    )
                value = matrix.values[sample_index, gene_index]
                cuts = self._cuts[kept_index]
                bucket = int(np.searchsorted(cuts, value, side="right"))
                items.append(self._item_base[kept_index] + bucket)
            rows.append(frozenset(items))
        return ItemizedDataset(
            rows=tuple(rows),
            labels=tuple(matrix.labels),
            n_items=self._n_items,
            item_names=tuple(self._item_names or ()),
            name=f"{matrix.name}/entropy",
        )

    @property
    def n_kept_genes(self) -> int:
        """Number of genes with at least one accepted cut."""
        if self._kept_genes is None:
            raise DataError("fit() has not been called")
        return len(self._kept_genes)
