"""Discretized transactional dataset with class labels.

This is the representation every miner in the package consumes: each row
(a microarray *sample*) is a set of item ids (discretized *gene,interval*
pairs) plus a class label.  It corresponds to the table ``D`` in the
paper's Section 2.1 and Figure 1(a).

Item ids are dense integers ``0 .. n_items - 1``; optional human-readable
item names are kept alongside for reporting.  Labels may be any hashable
value (the paper's datasets use strings such as ``"tumor"``/``"normal"``);
miners binarize against a chosen consequent label.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Iterable, Sequence
from dataclasses import dataclass, field
from typing import Hashable

from ..errors import DataError

__all__ = ["ItemizedDataset"]

Label = Hashable


@dataclass(frozen=True)
class ItemizedDataset:
    """An immutable transactional dataset with one class label per row.

    Attributes:
        rows: one ``frozenset`` of item ids per row.
        labels: one class label per row (same length as ``rows``).
        n_items: size of the item vocabulary; every item id is in
            ``range(n_items)``.
        item_names: optional human-readable name per item id.
        name: optional dataset name used in reports.
    """

    rows: tuple[frozenset[int], ...]
    labels: tuple[Label, ...]
    n_items: int
    item_names: tuple[str, ...] | None = None
    name: str = "dataset"
    _class_counts: Counter = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.rows) != len(self.labels):
            raise DataError(
                f"{len(self.rows)} rows but {len(self.labels)} labels"
            )
        for index, row in enumerate(self.rows):
            for item in row:
                if not 0 <= item < self.n_items:
                    raise DataError(
                        f"row {index} contains item {item} outside "
                        f"vocabulary of size {self.n_items}"
                    )
        if self.item_names is not None and len(self.item_names) != self.n_items:
            raise DataError(
                f"{len(self.item_names)} item names for {self.n_items} items"
            )
        object.__setattr__(self, "_class_counts", Counter(self.labels))

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------

    @classmethod
    def from_lists(
        cls,
        rows: Iterable[Iterable[int]],
        labels: Iterable[Label],
        n_items: int | None = None,
        item_names: Sequence[str] | None = None,
        name: str = "dataset",
    ) -> "ItemizedDataset":
        """Build a dataset from plain Python iterables.

        ``n_items`` defaults to ``1 + max(item id)`` (or 0 for an empty
        dataset) when not given.
        """
        frozen = tuple(frozenset(row) for row in rows)
        label_tuple = tuple(labels)
        if n_items is None:
            n_items = 1 + max((max(row) for row in frozen if row), default=-1)
        return cls(
            rows=frozen,
            labels=label_tuple,
            n_items=n_items,
            item_names=tuple(item_names) if item_names is not None else None,
            name=name,
        )

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------

    @property
    def n_rows(self) -> int:
        """Number of rows (samples)."""
        return len(self.rows)

    @property
    def class_labels(self) -> tuple[Label, ...]:
        """Distinct class labels in first-appearance order."""
        seen: dict[Label, None] = {}
        for label in self.labels:
            seen.setdefault(label, None)
        return tuple(seen)

    def class_count(self, label: Label) -> int:
        """Number of rows carrying ``label``."""
        return self._class_counts.get(label, 0)

    def item_name(self, item: int) -> str:
        """Human-readable name of ``item`` (falls back to ``item<i>``)."""
        if self.item_names is not None:
            return self.item_names[item]
        return f"item{item}"

    def format_itemset(self, items: Iterable[int]) -> str:
        """Render an itemset as a readable, deterministic string."""
        return "{" + ", ".join(self.item_name(i) for i in sorted(items)) + "}"

    def max_row_length(self) -> int:
        """Length of the longest row — the ``i`` in the paper's ``2^i``."""
        return max((len(row) for row in self.rows), default=0)

    def density(self) -> float:
        """Mean fraction of the vocabulary present per row."""
        if not self.rows or not self.n_items:
            return 0.0
        return sum(len(row) for row in self.rows) / (self.n_rows * self.n_items)

    # ------------------------------------------------------------------
    # Transformations
    # ------------------------------------------------------------------

    def select_rows(self, indices: Sequence[int], name: str | None = None) -> "ItemizedDataset":
        """Return a new dataset containing only the given rows, in order."""
        try:
            rows = tuple(self.rows[i] for i in indices)
            labels = tuple(self.labels[i] for i in indices)
        except IndexError as exc:
            raise DataError(f"row index out of range: {exc}") from exc
        return ItemizedDataset(
            rows=rows,
            labels=labels,
            n_items=self.n_items,
            item_names=self.item_names,
            name=name if name is not None else self.name,
        )

    def replicate(self, factor: int) -> "ItemizedDataset":
        """Concatenate ``factor`` copies of the dataset (row replication).

        This reproduces the paper's Section 4.1.3 scaling experiment, where
        each dataset is "replicated a number of times to generate a new
        dataset" with more rows.
        """
        if factor < 1:
            raise DataError(f"replication factor must be >= 1, got {factor}")
        return ItemizedDataset(
            rows=self.rows * factor,
            labels=self.labels * factor,
            n_items=self.n_items,
            item_names=self.item_names,
            name=f"{self.name}x{factor}",
        )

    def binarized_labels(self, consequent: Label) -> tuple[bool, ...]:
        """Per-row booleans: ``True`` where the row carries ``consequent``.

        Raises:
            DataError: if ``consequent`` never occurs in the dataset.
        """
        if self.class_count(consequent) == 0:
            raise DataError(
                f"consequent {consequent!r} does not occur in dataset "
                f"{self.name!r} (labels: {self.class_labels})"
            )
        return tuple(label == consequent for label in self.labels)

    def summary(self) -> dict[str, object]:
        """Table-1 style characteristics of the dataset."""
        return {
            "name": self.name,
            "n_rows": self.n_rows,
            "n_items": self.n_items,
            "max_row_length": self.max_row_length(),
            "density": round(self.density(), 4),
            "class_counts": dict(self._class_counts),
        }
