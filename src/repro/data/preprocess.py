"""Microarray preprocessing: the steps upstream of discretization.

The paper's datasets arrive already cleaned; real microarray pipelines
first handle missing probes, normalize per-chip intensity, and throw away
genes that cannot carry signal.  This module provides those standard
steps so the library is usable on raw data, all in the scikit-learn-ish
``fit``/``transform`` style (statistics learned on training samples only,
like the discretizers):

* :class:`MissingValueImputer` — mean/median per gene over finite values;
* :class:`QuantileNormalizer` — force every sample to a common intensity
  distribution (the classic microarray between-chip normalization);
* :class:`LogTransform` — ``log2(x + offset)`` for raw intensity data;
* :func:`variance_filter` / :func:`fold_change_filter` — unsupervised
  gene selection (the ``max/min`` and ``max-min`` filters the original
  dataset publications applied before analysis).
"""

from __future__ import annotations

import numpy as np

from ..errors import DataError
from .matrix import GeneExpressionMatrix

__all__ = [
    "MissingValueImputer",
    "QuantileNormalizer",
    "LogTransform",
    "variance_filter",
    "fold_change_filter",
]


class MissingValueImputer:
    """Replace NaN entries by the per-gene training mean or median.

    ``GeneExpressionMatrix`` itself rejects NaNs, so this imputer works
    on raw arrays and *produces* a matrix::

        imputer = MissingValueImputer("median").fit(raw_values)
        matrix = imputer.to_matrix(raw_values, labels)
    """

    def __init__(self, strategy: str = "mean") -> None:
        if strategy not in ("mean", "median"):
            raise DataError(f"strategy must be 'mean' or 'median', got {strategy!r}")
        self.strategy = strategy
        self._fill: np.ndarray | None = None

    def fit(self, values) -> "MissingValueImputer":
        """Learn per-gene fill values from the finite entries."""
        values = np.asarray(values, dtype=float)
        if values.ndim != 2:
            raise DataError(f"expected a 2-D array, got shape {values.shape}")
        import warnings

        with warnings.catch_warnings():
            # An all-NaN gene produces a "Mean of empty slice" warning and
            # a NaN fill value, which is handled explicitly below.
            warnings.simplefilter("ignore", RuntimeWarning)
            if self.strategy == "mean":
                fill = np.nanmean(values, axis=0)
            else:
                fill = np.nanmedian(values, axis=0)
        # A gene with no finite value at all imputes to zero.
        fill = np.where(np.isfinite(fill), fill, 0.0)
        self._fill = fill
        return self

    def transform(self, values) -> np.ndarray:
        """Return a copy of ``values`` with NaNs replaced."""
        if self._fill is None:
            raise DataError("transform() called before fit()")
        values = np.asarray(values, dtype=float)
        if values.shape[1] != self._fill.shape[0]:
            raise DataError(
                f"{values.shape[1]} genes, imputer fitted on "
                f"{self._fill.shape[0]}"
            )
        filled = values.copy()
        missing = ~np.isfinite(filled)
        filled[missing] = np.broadcast_to(self._fill, filled.shape)[missing]
        return filled

    def to_matrix(self, values, labels, gene_names=None, name="imputed") -> GeneExpressionMatrix:
        """Impute and wrap into a :class:`GeneExpressionMatrix`."""
        return GeneExpressionMatrix.from_arrays(
            self.transform(values), labels, gene_names=gene_names, name=name
        )


class QuantileNormalizer:
    """Quantile normalization: give every sample the same distribution.

    The reference distribution is the mean order statistic over the
    training samples; ``transform`` maps each sample's ranks onto it
    (ties share their average reference value).
    """

    def __init__(self) -> None:
        self._reference: np.ndarray | None = None

    def fit(self, matrix: GeneExpressionMatrix) -> "QuantileNormalizer":
        sorted_values = np.sort(matrix.values, axis=1)
        self._reference = sorted_values.mean(axis=0)
        return self

    def transform(self, matrix: GeneExpressionMatrix) -> GeneExpressionMatrix:
        if self._reference is None:
            raise DataError("transform() called before fit()")
        if matrix.n_genes != self._reference.shape[0]:
            raise DataError(
                f"{matrix.n_genes} genes, normalizer fitted on "
                f"{self._reference.shape[0]}"
            )
        normalized = np.empty_like(matrix.values)
        for sample in range(matrix.n_samples):
            order = np.argsort(matrix.values[sample], kind="stable")
            normalized[sample, order] = self._reference
        return GeneExpressionMatrix(
            values=normalized,
            labels=matrix.labels,
            gene_names=matrix.gene_names,
            name=f"{matrix.name}/qnorm",
        )

    def fit_transform(self, matrix: GeneExpressionMatrix) -> GeneExpressionMatrix:
        return self.fit(matrix).transform(matrix)


class LogTransform:
    """``log2(x + offset)`` with a validity check for raw intensities."""

    def __init__(self, offset: float = 1.0) -> None:
        self.offset = offset

    def transform(self, matrix: GeneExpressionMatrix) -> GeneExpressionMatrix:
        shifted = matrix.values + self.offset
        if (shifted <= 0).any():
            raise DataError(
                "log transform needs x + offset > 0 everywhere; raise the "
                f"offset (currently {self.offset})"
            )
        return GeneExpressionMatrix(
            values=np.log2(shifted),
            labels=matrix.labels,
            gene_names=matrix.gene_names,
            name=f"{matrix.name}/log2",
        )


def variance_filter(
    matrix: GeneExpressionMatrix, keep: int
) -> GeneExpressionMatrix:
    """Keep the ``keep`` genes with the highest expression variance.

    Ties are broken by gene index for determinism.
    """
    if keep < 1:
        raise DataError(f"keep must be >= 1, got {keep}")
    keep = min(keep, matrix.n_genes)
    variances = matrix.values.var(axis=0)
    order = sorted(range(matrix.n_genes), key=lambda j: (-variances[j], j))
    selected = sorted(order[:keep])
    return matrix.select_genes(selected, name=f"{matrix.name}/var{keep}")


def fold_change_filter(
    matrix: GeneExpressionMatrix,
    min_ratio: float = 2.0,
    min_difference: float = 0.0,
    epsilon: float = 1e-9,
) -> GeneExpressionMatrix:
    """Keep genes whose max/min ratio and max-min spread clear thresholds.

    The classic microarray filter (e.g. the colon-tumor publication kept
    genes with max/min >= 15 and max-min >= 500).  Ratios are computed on
    values shifted to be positive when necessary.
    """
    if min_ratio < 1.0:
        raise DataError(f"min_ratio must be >= 1, got {min_ratio}")
    highs = matrix.values.max(axis=0)
    lows = matrix.values.min(axis=0)
    shift = np.minimum(lows, 0.0)
    ratio = (highs - shift + epsilon) / (lows - shift + epsilon)
    spread = highs - lows
    selected = [
        j
        for j in range(matrix.n_genes)
        if ratio[j] >= min_ratio and spread[j] >= min_difference
    ]
    if not selected:
        raise DataError(
            "fold-change filter removed every gene; lower the thresholds"
        )
    return matrix.select_genes(selected, name=f"{matrix.name}/fold")
