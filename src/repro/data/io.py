"""Plain-text persistence for datasets and matrices.

Two deliberately simple formats, both line-oriented and diff-friendly:

* **itemized** (``*.items``): one row per line as
  ``label<TAB>item ids separated by spaces``, preceded by ``#``-prefixed
  header lines carrying the vocabulary size, dataset name and (optionally)
  the item names.  This mirrors the transaction files used by classic
  rule-mining tools.
* **expression** (``*.tsv``): a tab-separated matrix whose first line is
  ``label<TAB>gene names...`` and whose subsequent lines are
  ``label<TAB>values...``.

Both loaders validate aggressively and raise :class:`~repro.errors.
DataError` with the offending line number on malformed input.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from ..errors import DataError
from .dataset import ItemizedDataset
from .matrix import GeneExpressionMatrix

__all__ = [
    "save_itemized",
    "load_itemized",
    "save_expression",
    "load_expression",
]

_ITEMIZED_MAGIC = "# repro-itemized v1"
_NAME_SEPARATOR = "\x1f"  # unit separator: never appears in sane item names


def save_itemized(dataset: ItemizedDataset, path: str | Path) -> None:
    """Write ``dataset`` to ``path`` in the itemized text format."""
    path = Path(path)
    lines = [
        _ITEMIZED_MAGIC,
        f"# n_items {dataset.n_items}",
        f"# name {dataset.name}",
    ]
    if dataset.item_names is not None:
        lines.append("# item_names " + _NAME_SEPARATOR.join(dataset.item_names))
    for row, label in zip(dataset.rows, dataset.labels):
        items = " ".join(str(item) for item in sorted(row))
        lines.append(f"{label}\t{items}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_itemized(path: str | Path) -> ItemizedDataset:
    """Read an :class:`ItemizedDataset` previously written by
    :func:`save_itemized`.

    Labels round-trip as strings (the on-disk format is untyped).
    """
    path = Path(path)
    text = path.read_text(encoding="utf-8")
    lines = text.splitlines()
    if not lines or lines[0] != _ITEMIZED_MAGIC:
        raise DataError(f"{path}: not a repro-itemized v1 file")
    n_items: int | None = None
    name = "dataset"
    item_names: tuple[str, ...] | None = None
    rows: list[frozenset[int]] = []
    labels: list[str] = []
    for line_number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        if line.startswith("# n_items "):
            n_items = int(line[len("# n_items "):])
            continue
        if line.startswith("# name "):
            name = line[len("# name "):]
            continue
        if line.startswith("# item_names "):
            item_names = tuple(line[len("# item_names "):].split(_NAME_SEPARATOR))
            continue
        if line.startswith("#"):
            continue
        label, _, items_text = line.partition("\t")
        if not _:
            raise DataError(f"{path}:{line_number}: missing tab separator")
        try:
            items = frozenset(int(token) for token in items_text.split())
        except ValueError as exc:
            raise DataError(f"{path}:{line_number}: bad item id ({exc})") from exc
        rows.append(items)
        labels.append(label)
    if n_items is None:
        raise DataError(f"{path}: missing '# n_items' header")
    return ItemizedDataset(
        rows=tuple(rows),
        labels=tuple(labels),
        n_items=n_items,
        item_names=item_names,
        name=name,
    )


def save_expression(matrix: GeneExpressionMatrix, path: str | Path) -> None:
    """Write ``matrix`` to ``path`` in the expression TSV format."""
    path = Path(path)
    header = "label\t" + "\t".join(matrix.gene_names)
    lines = [header]
    for sample_index in range(matrix.n_samples):
        values = "\t".join(
            repr(float(v)) for v in matrix.values[sample_index]
        )
        lines.append(f"{matrix.labels[sample_index]}\t{values}")
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")


def load_expression(path: str | Path, name: str | None = None) -> GeneExpressionMatrix:
    """Read a :class:`GeneExpressionMatrix` written by
    :func:`save_expression`.

    Labels round-trip as strings.
    """
    path = Path(path)
    lines = path.read_text(encoding="utf-8").splitlines()
    if not lines:
        raise DataError(f"{path}: empty expression file")
    header = lines[0].split("\t")
    if not header or header[0] != "label":
        raise DataError(f"{path}:1: header must start with 'label'")
    gene_names = tuple(header[1:])
    labels: list[str] = []
    rows: list[list[float]] = []
    for line_number, line in enumerate(lines[1:], start=2):
        if not line.strip():
            continue
        fields = line.split("\t")
        if len(fields) != len(gene_names) + 1:
            raise DataError(
                f"{path}:{line_number}: expected {len(gene_names) + 1} "
                f"fields, found {len(fields)}"
            )
        labels.append(fields[0])
        try:
            rows.append([float(field) for field in fields[1:]])
        except ValueError as exc:
            raise DataError(f"{path}:{line_number}: bad value ({exc})") from exc
    return GeneExpressionMatrix(
        values=np.asarray(rows, dtype=float),
        labels=tuple(labels),
        gene_names=gene_names,
        name=name if name is not None else path.stem,
    )
