"""Transposed tables and the ORD row ordering.

The paper's Figure 1(b) transposes the dataset: each *tuple* of the
transposed table ``TT`` is an item, holding the set of row ids that contain
it.  FARMER additionally imposes the order ORD on rows — all rows carrying
the consequent class ``C`` come *before* all rows that do not — because the
support/confidence upper bounds of Pruning Strategy 3 rely on it
(Lemmas 3.7 and 3.8).

:class:`TransposedTable` materializes both: rows are re-indexed into ORD
positions ``0 .. n-1`` (positives occupy ``0 .. m-1``) and each item's row
support set becomes a bitset over those positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..core import bitset
from ..errors import DataError
from .dataset import ItemizedDataset

__all__ = ["TransposedTable", "ord_permutation"]


def ord_permutation(labels: tuple[Hashable, ...], consequent: Hashable) -> list[int]:
    """Return original-row indices in ORD order (consequent rows first).

    The ordering is stable within each class, so results are deterministic
    for a given dataset.
    """
    positives = [i for i, label in enumerate(labels) if label == consequent]
    negatives = [i for i, label in enumerate(labels) if label != consequent]
    return positives + negatives


@dataclass(frozen=True)
class TransposedTable:
    """A dataset transposed and ORD-ordered for a fixed consequent.

    Attributes:
        item_masks: per item id, the bitset of ORD row positions whose row
            contains the item (the tuple ``R(i_j)`` of Figure 1(b)).
        n: total number of rows.
        m: number of rows labelled with the consequent; ORD positions
            ``0 .. m-1`` are exactly those rows.
        ord_to_original: maps an ORD position back to the original row
            index in the source :class:`ItemizedDataset`.
        consequent: the class label the table was built for.
        source: the dataset this table was derived from.
    """

    item_masks: tuple[int, ...]
    n: int
    m: int
    ord_to_original: tuple[int, ...]
    consequent: Hashable
    source: ItemizedDataset

    @classmethod
    def build(cls, dataset: ItemizedDataset, consequent: Hashable) -> "TransposedTable":
        """Transpose ``dataset`` with rows ORD-ordered for ``consequent``."""
        if dataset.class_count(consequent) == 0:
            raise DataError(
                f"consequent {consequent!r} does not occur in dataset "
                f"{dataset.name!r} (labels: {dataset.class_labels})"
            )
        order = ord_permutation(dataset.labels, consequent)
        masks = [0] * dataset.n_items
        for position, original in enumerate(order):
            bit = 1 << position
            for item in dataset.rows[original]:
                masks[item] |= bit
        return cls(
            item_masks=tuple(masks),
            n=dataset.n_rows,
            m=dataset.class_count(consequent),
            ord_to_original=tuple(order),
            consequent=consequent,
            source=dataset,
        )

    # ------------------------------------------------------------------
    # Masks and conversions
    # ------------------------------------------------------------------

    @property
    def positive_mask(self) -> int:
        """Bitset of all ORD positions labelled with the consequent."""
        return bitset.universe(self.m)

    @property
    def negative_mask(self) -> int:
        """Bitset of all ORD positions *not* labelled with the consequent."""
        return bitset.universe(self.n) ^ bitset.universe(self.m)

    @property
    def all_rows_mask(self) -> int:
        """Bitset of every ORD position."""
        return bitset.universe(self.n)

    def is_positive(self, position: int) -> bool:
        """Whether the ORD ``position`` carries the consequent label."""
        return position < self.m

    def rows_of_itemset(self, items) -> int:
        """``R(I')`` as a bitset of ORD positions; all rows for ``I' = ∅``."""
        mask = self.all_rows_mask
        for item in items:
            mask &= self.item_masks[item]
            if not mask:
                break
        return mask

    def items_of_rows(self, row_mask: int) -> frozenset[int]:
        """``I(R')``: items common to every row in ``row_mask``.

        For ``row_mask == 0`` this is the whole vocabulary by convention
        (the intersection over an empty family).
        """
        return frozenset(
            item
            for item, mask in enumerate(self.item_masks)
            if row_mask & mask == row_mask
        )

    def original_rows(self, row_mask: int) -> frozenset[int]:
        """Map a bitset of ORD positions back to original row indices."""
        return frozenset(
            self.ord_to_original[pos] for pos in bitset.iter_bits(row_mask)
        )

    def support_counts(self, row_mask: int) -> tuple[int, int]:
        """Split a row bitset into (positive, negative) cardinalities."""
        positives = bitset.bit_count(row_mask & self.positive_mask)
        return positives, bitset.bit_count(row_mask) - positives
