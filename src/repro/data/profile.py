"""Dataset profiling: know your table before you mine it.

Whether row or column enumeration wins — and which ``minsup`` values are
even attainable — is a property of the table's shape and support
distribution.  :func:`profile_dataset` computes the pre-mining
diagnostics this library's own experiments rely on:

* shape: rows, items, density, max row length (the ``i`` of the paper's
  ``2^i`` argument);
* class balance per label;
* item-support distribution (max / quartiles) — with equal-depth
  discretization the max item support caps every rule's antecedent
  support, which is why the paper's Figure 10 sweeps single-digit
  ``minsup`` values;
* a recommended enumeration direction (the COBBLER shape rule) and a
  recommended ``minsup`` sweep.

:func:`profile_report` renders everything as plain text; the CLI exposes
it as ``farmer profile``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..errors import DataError
from .dataset import ItemizedDataset

__all__ = ["DatasetProfile", "profile_dataset", "profile_report"]


@dataclass(frozen=True)
class DatasetProfile:
    """Pre-mining diagnostics of an itemized dataset.

    Attributes mirror :func:`profile_dataset`'s docstring; see there.
    """

    name: str
    n_rows: int
    n_items: int
    n_occurring_items: int
    density: float
    max_row_length: int
    class_counts: dict[Hashable, int]
    max_item_support: int
    item_support_quartiles: tuple[int, int, int]
    recommended_direction: str
    recommended_minsup_grid: tuple[int, ...]

    @property
    def shape_ratio(self) -> float:
        """Items-to-rows ratio — >> 1 means row enumeration territory."""
        if self.n_rows == 0:
            return 0.0
        return self.n_occurring_items / self.n_rows


def profile_dataset(dataset: ItemizedDataset) -> DatasetProfile:
    """Compute a :class:`DatasetProfile` for ``dataset``."""
    if dataset.n_rows == 0:
        raise DataError("cannot profile an empty dataset")

    supports = [0] * dataset.n_items
    for row in dataset.rows:
        for item in row:
            supports[item] += 1
    occurring = sorted(s for s in supports if s > 0)
    if not occurring:
        max_support = 0
        quartiles = (0, 0, 0)
    else:
        max_support = occurring[-1]
        quartiles = (
            occurring[len(occurring) // 4],
            occurring[len(occurring) // 2],
            occurring[(3 * len(occurring)) // 4],
        )

    n_occurring = len(occurring)
    # The COBBLER shape rule: column enumeration once items are
    # decisively the smaller dimension.
    if n_occurring < 0.5 * dataset.n_rows:
        direction = "column enumeration (items << rows)"
    else:
        direction = "row enumeration (rows << items)"

    # A useful minsup sweep runs just below the support ceiling: rules
    # cannot be supported by more rows than their rarest item.
    ceiling = max_support
    grid = tuple(
        value
        for value in range(ceiling, max(1, ceiling - 4), -1)
        if value >= 1
    )

    return DatasetProfile(
        name=dataset.name,
        n_rows=dataset.n_rows,
        n_items=dataset.n_items,
        n_occurring_items=n_occurring,
        density=dataset.density(),
        max_row_length=dataset.max_row_length(),
        class_counts={
            label: dataset.class_count(label)
            for label in dataset.class_labels
        },
        max_item_support=max_support,
        item_support_quartiles=quartiles,
        recommended_direction=direction,
        recommended_minsup_grid=grid,
    )


def profile_report(profile: DatasetProfile) -> str:
    """Render a profile as aligned plain text."""
    classes = ", ".join(
        f"{label}: {count}" for label, count in profile.class_counts.items()
    )
    q1, median, q3 = profile.item_support_quartiles
    lines = [
        f"dataset profile: {profile.name}",
        f"  shape            : {profile.n_rows} rows x "
        f"{profile.n_occurring_items} occurring items "
        f"(vocabulary {profile.n_items}); "
        f"items:rows = {profile.shape_ratio:.1f}",
        f"  density          : {profile.density:.3f} "
        f"(max row length {profile.max_row_length})",
        f"  classes          : {classes}",
        f"  item support     : max {profile.max_item_support}, "
        f"quartiles {q1}/{median}/{q3} rows",
        f"  enumeration      : {profile.recommended_direction}",
        f"  minsup sweep     : {list(profile.recommended_minsup_grid)} "
        "(the max item support caps every rule's antecedent support)",
    ]
    return "\n".join(lines)
