"""Synthetic microarray generator.

The paper evaluates on five clinical microarray datasets (lung, breast,
prostate and colon cancer plus ALL/AML leukemia) whose original download
sites are long dead and whose clinical data cannot be redistributed.  This
module is the substitution documented in DESIGN.md: a generative model of
gene expression that reproduces the *structural* properties those datasets
exhibit and that the FARMER evaluation depends on:

* very few samples, very many genes (rows << columns);
* **co-regulated gene blocks** — groups of genes driven by a shared latent
  activity that correlates with the class.  After discretization the genes
  of an active block land in the same bucket across the same samples,
  creating exactly the long closed itemsets / large rule groups that blow
  up column enumeration and that FARMER's row enumeration exploits;
* per-block *penetrance* < 1, so blocks cover different, overlapping
  subsets of their class — yielding rule groups with confidences spread
  over (0.5, 1.0] rather than a single trivial pattern;
* a large majority of pure-noise genes, reproducing the heavy tail that
  entropy (MDL) discretization prunes away and equal-depth keeps.

Everything is driven by a seeded :class:`numpy.random.Generator`, so every
dataset in the registry is reproducible bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

import numpy as np

from ..errors import DataError
from .matrix import GeneExpressionMatrix

__all__ = ["BlockSpec", "default_blocks", "make_microarray"]


@dataclass(frozen=True, slots=True)
class BlockSpec:
    """A co-regulated gene block planted in the synthetic matrix.

    Attributes:
        size: number of genes in the block.
        target_class: index (0 or 1) of the class whose samples activate
            the block.
        shift: expression offset of the block (in units of the background
            standard deviation); see ``kind`` for how it is applied.
        penetrance: probability that a sample of the target class
            activates the block.
        leakage: probability that a sample of the *other* class activates
            the block (controls rule confidence below 1.0).
        kind: ``"shift"`` — active samples over-express by ``shift``
            (a linear, margin-visible signal); or ``"band"`` — active
            samples sit in a narrow mid-range while inactive samples
            scatter to ``±shift`` (a dosage-style interval signal that
            discretized rules capture but a linear separator cannot).
    """

    size: int
    target_class: int
    shift: float = 3.0
    penetrance: float = 0.8
    leakage: float = 0.05
    kind: str = "shift"

    def __post_init__(self) -> None:
        if self.size < 1:
            raise DataError(f"block size must be >= 1, got {self.size}")
        if self.target_class not in (0, 1):
            raise DataError(f"target_class must be 0 or 1, got {self.target_class}")
        if self.kind not in ("shift", "band"):
            raise DataError(f"kind must be 'shift' or 'band', got {self.kind!r}")
        for field_name in ("penetrance", "leakage"):
            value = getattr(self, field_name)
            if not 0.0 <= value <= 1.0:
                raise DataError(f"{field_name} must be in [0, 1], got {value}")


def default_blocks(
    n_blocks: int,
    block_size: int = 6,
    shift: float = 3.0,
    rng: np.random.Generator | None = None,
) -> list[BlockSpec]:
    """A balanced default block layout: blocks alternate target classes,
    with mildly varied penetrance so confidences spread out."""
    rng = rng or np.random.default_rng(0)
    blocks = []
    for index in range(n_blocks):
        penetrance = float(rng.uniform(0.6, 0.95))
        leakage = float(rng.uniform(0.0, 0.12))
        blocks.append(
            BlockSpec(
                size=block_size,
                target_class=index % 2,
                shift=shift,
                penetrance=penetrance,
                leakage=leakage,
            )
        )
    return blocks


def make_microarray(
    n_samples: int,
    n_genes: int,
    n_class1: int,
    blocks: list[BlockSpec] | int = 8,
    class_labels: tuple[Hashable, Hashable] = ("class1", "class0"),
    block_gene_noise: float = 0.35,
    n_subtypes: int = 6,
    subtype_strength: float = 0.8,
    subtype_fraction: float = 0.3,
    subtype_class_aligned: bool = False,
    seed: int = 0,
    name: str = "synthetic",
) -> GeneExpressionMatrix:
    """Generate a synthetic two-class microarray expression matrix.

    Args:
        n_samples: number of samples (rows).
        n_class1: how many samples carry ``class_labels[0]``; the rest
            carry ``class_labels[1]``.  Class-1 samples are generated
            first; callers that need shuffled order can permute.
        n_genes: total genes; genes not claimed by a block are pure noise
            plus the subtype signal.
        blocks: explicit :class:`BlockSpec` list, or an int asking for that
            many :func:`default_blocks`.
        class_labels: the two class label values, ``(class1, class0)``.
        block_gene_noise: standard deviation of per-gene noise *within* a
            block, relative to the shared activity (small values make the
            block's genes discretize into the same bucket together).
        n_subtypes: number of latent sample subtypes.  Real tumour cohorts
            have molecular subtypes that shift many genes coherently; this
            is what riddles microarray data with long shared itemsets and
            makes column enumeration explode.  ``0`` disables.
        subtype_strength: standard deviation of per-(subtype, gene)
            response, relative to the unit background noise.
        subtype_fraction: fraction of genes that respond to the subtype
            signal at all (real cohorts express subtype programs in a
            minority of genes; the rest stay class-agnostic noise, which
            is what supervised discretization then prunes away).
        subtype_class_aligned: when ``True``, subtypes are split between
            the classes (first half belongs to class 1) and carry class
            signal; when ``False`` (default), every sample draws its
            subtype from the full pool, so the subtype structure is pure
            *structured noise* — it still creates the long shared
            itemsets that break column enumeration, but only the planted
            blocks carry class signal (the harder, more realistic
            classification regime).
        seed: RNG seed; the output is a pure function of all arguments.
        name: dataset name.

    Returns:
        A :class:`GeneExpressionMatrix` with samples ordered class-1 first.

    Raises:
        DataError: if block genes exceed ``n_genes`` or counts are invalid.
    """
    if not 0 < n_class1 < n_samples:
        raise DataError(
            f"n_class1 must be in (0, n_samples), got {n_class1}/{n_samples}"
        )
    if n_subtypes < 0 or (n_subtypes == 1):
        raise DataError(
            f"n_subtypes must be 0 or >= 2 (half per class), got {n_subtypes}"
        )
    rng = np.random.default_rng(seed)
    if isinstance(blocks, int):
        blocks = default_blocks(blocks, rng=rng)
    total_block_genes = sum(block.size for block in blocks)
    if total_block_genes > n_genes:
        raise DataError(
            f"blocks claim {total_block_genes} genes but n_genes={n_genes}"
        )

    labels = [class_labels[0]] * n_class1 + [class_labels[1]] * (n_samples - n_class1)
    class_index = np.asarray([0] * n_class1 + [1] * (n_samples - n_class1))

    values = rng.standard_normal((n_samples, n_genes))

    if n_subtypes:
        if not 0.0 <= subtype_fraction <= 1.0:
            raise DataError(
                f"subtype_fraction must be in [0, 1], got {subtype_fraction}"
            )
        # Assign each sample a subtype, then add a per-(subtype, gene)
        # response shared by all samples of that subtype — but only for a
        # random fraction of the genes.
        if subtype_class_aligned:
            half = max(1, n_subtypes // 2)
            subtype = np.where(
                class_index == 0,
                rng.integers(0, half, size=n_samples),
                rng.integers(half, n_subtypes, size=n_samples),
            )
        else:
            subtype = rng.integers(0, n_subtypes, size=n_samples)
        gene_response = subtype_strength * rng.standard_normal(
            (n_subtypes, n_genes)
        )
        responsive = rng.random(n_genes) < subtype_fraction
        gene_response[:, ~responsive] = 0.0
        values += gene_response[subtype]
    gene_cursor = 0
    for block in blocks:
        gene_slice = slice(gene_cursor, gene_cursor + block.size)
        gene_cursor += block.size
        activation_probability = np.where(
            class_index == block.target_class, block.penetrance, block.leakage
        )
        active = rng.random(n_samples) < activation_probability
        per_gene_noise = block_gene_noise * rng.standard_normal((n_samples, block.size))
        if block.kind == "shift":
            # Shared latent activity: identical across the block's genes
            # for a given sample, which is what makes the genes
            # co-discretize.
            activity = np.where(
                active, block.shift + 0.5 * rng.standard_normal(n_samples), 0.0
            )
            values[:, gene_slice] += activity[:, None] + per_gene_noise
        else:  # "band": active samples hug the centre, inactive scatter out
            sign = np.where(rng.random(n_samples) < 0.5, 1.0, -1.0)
            outward = sign * (block.shift + 0.5 * rng.standard_normal(n_samples))
            activity = np.where(active, 0.0, outward)
            # The centre band replaces (not adds to) the unit background
            # so active samples really do cluster tightly.
            values[:, gene_slice] = (
                activity[:, None]
                + 0.3 * rng.standard_normal(n_samples)[:, None]
                + per_gene_noise
            )

    gene_names = tuple(f"g{j}" for j in range(n_genes))
    return GeneExpressionMatrix(
        values=values,
        labels=tuple(labels),
        gene_names=gene_names,
        name=name,
    )
