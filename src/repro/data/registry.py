"""Registry of the paper's five microarray datasets (synthetic stand-ins).

Table 1 of the paper lists five clinical datasets.  The registry generates
a synthetic counterpart for each (see :mod:`repro.data.synthetic` and the
substitution table in DESIGN.md) that preserves

* the exact row count and class split of Table 1,
* the class-label names,
* the Table 2 train/test partition sizes, and
* the rows << columns regime, with the gene count scaled down by a
  configurable factor (default 1/40 of the paper's column counts) so the
  pure-Python miners finish in benchmark-friendly time.  Pass
  ``scale=1.0`` to :func:`load` for paper-scale column counts.

Paper's Table 1::

    dataset  #row  #col    class1     class0      #row class1
    BC        97   24481   relapse    nonrelapse  46
    LC       181   12533   MPM        ADCA        31
    CT        62    2000   negative   positive    40
    PC       136   12600   tumor      normal      52
    ALL       72    7129   ALL        AML         47

Paper's Table 2 train/test sizes::

    BC 78/19,  LC 32/149,  CT 47/15,  PC 102/34,  ALL 38/34
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import DataError
from .matrix import GeneExpressionMatrix
from .synthetic import BlockSpec, make_microarray

__all__ = ["DatasetSpec", "PAPER_DATASETS", "load", "train_test_rows"]


@dataclass(frozen=True, slots=True)
class DatasetSpec:
    """Static description of one paper dataset.

    Attributes:
        name: short dataset code used throughout the paper (e.g. ``"LC"``).
        long_name: descriptive name.
        n_rows: number of samples (Table 1 ``# row``).
        paper_cols: number of genes in the real dataset (Table 1 ``# col``).
        class1: label of class 1 (the consequent used in all experiments).
        class0: label of class 0.
        n_class1: rows labelled ``class1`` (Table 1 ``# row of class 1``).
        n_train: training rows in the Table 2 protocol.
        n_test: test rows in the Table 2 protocol.
        n_blocks: co-regulated blocks planted by the generator.
        seed: generator seed, fixed per dataset for reproducibility.
    """

    name: str
    long_name: str
    n_rows: int
    paper_cols: int
    class1: str
    class0: str
    n_class1: int
    n_train: int
    n_test: int
    n_blocks: int
    seed: int

    @property
    def n_class0(self) -> int:
        """Rows labelled with class 0."""
        return self.n_rows - self.n_class1

    def scaled_cols(self, scale: float) -> int:
        """Gene count after applying ``scale`` (never below block needs)."""
        return max(int(round(self.paper_cols * scale)), self.n_blocks * 8)


PAPER_DATASETS: dict[str, DatasetSpec] = {
    "BC": DatasetSpec(
        name="BC",
        long_name="breast cancer",
        n_rows=97,
        paper_cols=24481,
        class1="relapse",
        class0="nonrelapse",
        n_class1=46,
        n_train=78,
        n_test=19,
        n_blocks=10,
        seed=101,
    ),
    "LC": DatasetSpec(
        name="LC",
        long_name="lung cancer",
        n_rows=181,
        paper_cols=12533,
        class1="MPM",
        class0="ADCA",
        n_class1=31,
        n_train=32,
        n_test=149,
        n_blocks=10,
        seed=102,
    ),
    "CT": DatasetSpec(
        name="CT",
        long_name="colon tumor",
        n_rows=62,
        paper_cols=2000,
        class1="negative",
        class0="positive",
        n_class1=40,
        n_train=47,
        n_test=15,
        n_blocks=8,
        seed=103,
    ),
    "PC": DatasetSpec(
        name="PC",
        long_name="prostate cancer",
        n_rows=136,
        paper_cols=12600,
        class1="tumor",
        class0="normal",
        n_class1=52,
        n_train=102,
        n_test=34,
        n_blocks=10,
        seed=104,
    ),
    "ALL": DatasetSpec(
        name="ALL",
        long_name="ALL-AML leukemia",
        n_rows=72,
        paper_cols=7129,
        class1="ALL",
        class0="AML",
        n_class1=47,
        n_train=38,
        n_test=34,
        n_blocks=8,
        seed=105,
    ),
}


def load(name: str, scale: float = 0.08, seed: int | None = None) -> GeneExpressionMatrix:
    """Generate the synthetic stand-in for a paper dataset.

    Args:
        name: one of ``"BC" "LC" "CT" "PC" "ALL"`` (case-insensitive).
        scale: gene-count scale factor relative to the paper's column
            count (``1.0`` reproduces paper-scale dimensionality; the
            default 0.08 keeps a full Figure 10 sweep in pure Python to
            minutes while preserving the rows << columns regime).
        seed: override the spec's fixed seed (for robustness studies).

    Raises:
        DataError: for an unknown dataset name or non-positive scale.
    """
    spec = PAPER_DATASETS.get(name.upper())
    if spec is None:
        raise DataError(
            f"unknown dataset {name!r}; choose from {sorted(PAPER_DATASETS)}"
        )
    if scale <= 0.0:
        raise DataError(f"scale must be positive, got {scale}")
    rng = np.random.default_rng(spec.seed if seed is None else seed)
    blocks = []
    for index in range(spec.n_blocks):
        blocks.append(
            BlockSpec(
                size=int(rng.integers(4, 9)),
                target_class=index % 2,
                shift=float(rng.uniform(2.5, 3.5)),
                penetrance=float(rng.uniform(0.45, 0.8)),
                leakage=float(rng.uniform(0.05, 0.25)),
                # Half the class signal is interval-shaped ("band"), the
                # dosage-style pattern rules read but a linear margin
                # cannot — the regime behind the paper's SVM failures.
                kind="band" if index % 4 >= 2 else "shift",
            )
        )
    return make_microarray(
        n_samples=spec.n_rows,
        n_genes=spec.scaled_cols(scale),
        n_class1=spec.n_class1,
        blocks=blocks,
        class_labels=(spec.class1, spec.class0),
        n_subtypes=6,
        subtype_strength=0.8,
        seed=spec.seed if seed is None else seed,
        name=spec.name,
    )


def train_test_rows(spec: DatasetSpec, seed: int = 0) -> tuple[list[int], list[int]]:
    """Deterministic stratified train/test split matching Table 2 sizes.

    The split is stratified so both classes appear in the training set in
    roughly their dataset proportion (the paper's original splits came with
    the datasets; ours are seeded and reproducible).
    """
    if spec.n_train + spec.n_test != spec.n_rows:
        raise DataError(
            f"{spec.name}: train {spec.n_train} + test {spec.n_test} "
            f"!= rows {spec.n_rows}"
        )
    rng = np.random.default_rng(seed + spec.seed)
    class1_rows = list(range(spec.n_class1))
    class0_rows = list(range(spec.n_class1, spec.n_rows))
    rng.shuffle(class1_rows)
    rng.shuffle(class0_rows)
    train_class1 = max(1, round(spec.n_train * spec.n_class1 / spec.n_rows))
    train_class1 = min(train_class1, spec.n_class1 - 1, spec.n_train - 1)
    train_class0 = spec.n_train - train_class1
    if train_class0 > len(class0_rows) - 1:
        train_class0 = len(class0_rows) - 1
        train_class1 = spec.n_train - train_class0
    train = sorted(class1_rows[:train_class1] + class0_rows[:train_class0])
    test = sorted(class1_rows[train_class1:] + class0_rows[train_class0:])
    return train, test
