"""Dataset substrate: matrices, discretization, transposition, synthesis.

The pipeline mirrors the paper's Section 4 setup::

    GeneExpressionMatrix  --discretize-->  ItemizedDataset
                                            |  TransposedTable.build
                                            v
                                       row-enumeration miners

plus the synthetic generator and the registry of the five paper datasets
(see DESIGN.md for the substitution rationale).
"""

from .dataset import ItemizedDataset
from .discretize import EntropyMDLDiscretizer, EqualDepthDiscretizer
from .io import load_expression, load_itemized, save_expression, save_itemized
from .matrix import GeneExpressionMatrix
from .profile import DatasetProfile, profile_dataset, profile_report
from .registry import PAPER_DATASETS, DatasetSpec, load, train_test_rows
from .synthetic import BlockSpec, make_microarray
from .transpose import TransposedTable, ord_permutation

__all__ = [
    "BlockSpec",
    "DatasetProfile",
    "DatasetSpec",
    "EntropyMDLDiscretizer",
    "EqualDepthDiscretizer",
    "GeneExpressionMatrix",
    "ItemizedDataset",
    "PAPER_DATASETS",
    "TransposedTable",
    "load",
    "load_expression",
    "load_itemized",
    "make_microarray",
    "ord_permutation",
    "profile_dataset",
    "profile_report",
    "save_expression",
    "save_itemized",
    "train_test_rows",
]
