"""Command-line interface: ``farmer`` (or ``python -m repro``).

Four subcommands cover the library's everyday workflows:

* ``farmer mine``       — mine interesting rule groups from a registry
  dataset or an expression TSV and print the top groups;
* ``farmer remine``     — re-mine under changed constraints through a
  warm frontier cache (byte-identical to a cold mine);
* ``farmer classify``   — run the Table 2 protocol for one classifier on
  one dataset;
* ``farmer experiment`` — regenerate a paper table/figure
  (``table1 fig10 fig11 table2 scaling ablation``);
* ``farmer generate``   — write a synthetic registry dataset to disk;
* ``farmer serve``      — run the mining-as-a-service HTTP daemon
  (submit jobs, poll status, fetch ``.irgs`` results — see
  ``docs/serve.md``);
* ``farmer lint``       — run the farmer-lint static-analysis rules
  (determinism, picklability, bitset/exception discipline) over the
  source tree.

Examples::

    farmer mine --dataset ALL --minsup 5 --minconf 0.9 --top 10
    farmer mine --dataset ALL --minsup 8 --warm-cache .farmer-cache
    farmer remine --dataset ALL --minsup 5 --warm-cache .farmer-cache
    farmer classify --dataset CT --classifier irg
    farmer experiment fig10 --datasets CT ALL --timeout 30
    farmer generate --dataset LC --out lc.tsv
    farmer serve --port 8765 --workers 2 --registry-dir .farmer-serve
    farmer lint src/repro --format json
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from .classify.cba import CBAClassifier
from .classify.evaluate import (
    evaluate_matrix_based,
    evaluate_rule_based,
    split_matrix,
)
from .classify.irg import IRGClassifier
from .classify.svm import LinearSVM
from .core.constraints import Constraints
from .core.enumeration import SearchBudget
from .core.farmer import ENGINE_ENV, ENGINES, Farmer
from .data.discretize import EntropyMDLDiscretizer, EqualDepthDiscretizer
from .data.io import load_expression, save_expression
from .data.registry import PAPER_DATASETS, load, train_test_rows
from .errors import ReproError, UsageError

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """The ``farmer`` argument parser (exposed for tests and docs)."""
    parser = argparse.ArgumentParser(
        prog="farmer",
        description="FARMER: finding interesting rule groups in microarray "
        "datasets (SIGMOD 2004 reproduction).",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    mine = sub.add_parser("mine", help="mine interesting rule groups")
    _add_dataset_arguments(mine)
    mine.add_argument("--consequent", help="class label on the rule RHS "
                      "(default: the dataset's class 1)")
    mine.add_argument("--minsup", type=int, default=5, help="minimum rule support (rows)")
    mine.add_argument("--minconf", type=float, default=0.0, help="minimum confidence [0,1]")
    mine.add_argument("--minchi", type=float, default=0.0, help="minimum chi-square value")
    mine.add_argument("--buckets", type=int, default=10, help="equal-depth buckets")
    mine.add_argument("--top", type=int, default=10, help="groups to print")
    mine.add_argument("--lower-bounds", action="store_true", help="run MineLB on results")
    mine.add_argument("--timeout", type=float, default=300.0, help="mining budget (seconds)")
    mine.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard the search across N worker processes "
        "(identical output to serial; default: serial)",
    )
    mine.add_argument("--save", help="persist the groups to this .irgs file")
    mine.add_argument(
        "--checkpoint",
        metavar="PATH",
        help="snapshot sharded-run progress to this file (crash-consistent; "
        "implies sharded execution)",
    )
    mine.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="shard completions per checkpoint write (default: 1)",
    )
    mine.add_argument(
        "--resume",
        metavar="PATH",
        help="restore progress from this checkpoint before mining "
        "(missing file = fresh start; output is byte-identical to an "
        "uninterrupted run)",
    )
    mine.add_argument(
        "--steal",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="schedule shards with the work-stealing scheduler: "
        "quantum-expired workers donate their remaining enumeration "
        "frontier and starving queues split it across idle workers; "
        "output stays byte-identical to the static schedule "
        "(default: --no-steal)",
    )
    mine.add_argument(
        "--steal-quantum",
        type=int,
        default=None,
        metavar="NODES",
        help="nodes a stealing worker expands before donating its "
        "frontier (default: 4096)",
    )
    mine.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default=None,
        metavar="NAME",
        help="enumeration engine: 'kernel' (fused int-bitset, the "
        "default), 'numpy' (vectorized packed-uint64), or 'reference' "
        "(pre-kernel cost model); all produce byte-identical output. "
        f"Default honors ${ENGINE_ENV} when set.",
    )
    mine.add_argument(
        "--profile",
        action="store_true",
        help="run the mine under cProfile and print the top-25 functions "
        "by cumulative time plus the kernel cache-hit summary",
    )
    mine.add_argument(
        "--progress",
        action="store_true",
        help="show a live progress line (nodes/sec, pruning ratio, ETA) "
        "on stderr; degrades to periodic plain lines when not a TTY",
    )
    mine.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write a structured JSONL run log (events + final metrics) "
        "to this file; see docs/observability.md for the schema",
    )
    mine.add_argument(
        "--warm-cache",
        metavar="DIR",
        help="answer through the frontier cache in this directory "
        "(captures on a miss, filters or resumes on a hit; output stays "
        "byte-identical to a cold mine — see docs/performance.md)",
    )

    remine = sub.add_parser(
        "remine",
        help="re-mine under changed constraints through a frontier cache",
        description="Warm re-mine: answer a mine from the frontier cache "
        "written by earlier 'farmer mine --warm-cache DIR' (or 'farmer "
        "remine') runs on the same dataset.  Tightened constraints are "
        "answered by filtering the cached candidate sequence with zero "
        "enumeration; loosened constraints resume enumeration only from "
        "the recorded pruned frontier.  Output is byte-identical to a "
        "cold mine.",
    )
    _add_dataset_arguments(remine)
    remine.add_argument("--consequent", help="class label on the rule RHS "
                        "(default: the dataset's class 1)")
    remine.add_argument("--minsup", type=int, default=5, help="minimum rule support (rows)")
    remine.add_argument("--minconf", type=float, default=0.0, help="minimum confidence [0,1]")
    remine.add_argument("--minchi", type=float, default=0.0, help="minimum chi-square value")
    remine.add_argument("--buckets", type=int, default=10, help="equal-depth buckets")
    remine.add_argument("--top", type=int, default=10, help="groups to print")
    remine.add_argument("--lower-bounds", action="store_true", help="run MineLB on results")
    remine.add_argument("--timeout", type=float, default=300.0, help="mining budget (seconds)")
    remine.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="shard a frontier resume across N worker processes "
        "(identical output to serial; default: serial)",
    )
    remine.add_argument(
        "--steal",
        action=argparse.BooleanOptionalAction,
        default=False,
        help="schedule resumed frontier shards with the work-stealing "
        "scheduler (default: --no-steal)",
    )
    remine.add_argument(
        "--steal-quantum",
        type=int,
        default=None,
        metavar="NODES",
        help="nodes a stealing worker expands before donating its "
        "frontier (default: 4096)",
    )
    remine.add_argument(
        "--engine",
        choices=sorted(ENGINES),
        default=None,
        metavar="NAME",
        help="enumeration engine; cache entries are engine-invariant, so "
        "any engine can resume any entry. "
        f"Default honors ${ENGINE_ENV} when set.",
    )
    remine.add_argument("--save", help="persist the groups to this .irgs file")
    remine.add_argument(
        "--progress",
        action="store_true",
        help="show a live progress line on stderr",
    )
    remine.add_argument(
        "--metrics-out",
        metavar="PATH",
        help="write a structured JSONL run log (events + final metrics) "
        "to this file; see docs/observability.md for the schema",
    )
    remine.add_argument(
        "--warm-cache",
        metavar="DIR",
        required=True,
        help="the frontier cache directory (created on first use)",
    )
    # remine is 'mine' minus the knobs a warm answer replaces: it plans
    # its own work from the cache, so shard checkpointing and cProfile
    # wiring stay mine-only.
    remine.set_defaults(
        checkpoint=None, checkpoint_every=1, resume=None, profile=False
    )

    validate = sub.add_parser(
        "validate",
        help="re-check persisted rule groups against their dataset",
    )
    _add_dataset_arguments(validate)
    validate.add_argument("--groups", required=True, help=".irgs file to check")
    validate.add_argument("--buckets", type=int, default=10, help="equal-depth buckets used when mining")

    profile = sub.add_parser(
        "profile", help="pre-mining diagnostics for a dataset"
    )
    _add_dataset_arguments(profile)
    profile.add_argument("--buckets", type=int, default=10, help="equal-depth buckets")

    classify = sub.add_parser("classify", help="run the Table 2 protocol")
    _add_dataset_arguments(classify)
    classify.add_argument(
        "--classifier",
        choices=("irg", "cba", "svm", "tree", "caep"),
        default="irg",
    )
    classify.add_argument("--seed", type=int, default=0, help="split seed")

    experiment = sub.add_parser("experiment", help="regenerate a paper artifact")
    experiment.add_argument(
        "artifact",
        choices=(
            "table1",
            "fig10",
            "fig11",
            "table2",
            "scaling",
            "ablation",
            "crossover",
        ),
    )
    experiment.add_argument(
        "--datasets", nargs="+", metavar="NAME", help="dataset subset (default: all five)"
    )
    experiment.add_argument("--scale", type=float, default=0.08, help="gene-count scale")
    experiment.add_argument("--timeout", type=float, default=60.0, help="per-point budget (s)")

    lint = sub.add_parser(
        "lint", help="run the farmer-lint static-analysis rules"
    )
    from .analysis.cli import add_lint_arguments

    add_lint_arguments(lint)

    generate = sub.add_parser("generate", help="write a synthetic dataset to disk")
    generate.add_argument("--dataset", required=True, choices=sorted(PAPER_DATASETS))
    generate.add_argument("--scale", type=float, default=0.08)
    generate.add_argument("--seed", type=int, default=None)
    generate.add_argument("--out", required=True, help="output TSV path")

    serve = sub.add_parser(
        "serve",
        help="run the mining-as-a-service HTTP daemon",
        description="Serve the FARMER HTTP API (docs/serve.md): submit "
        "mining jobs, poll their telemetry-derived status, fetch .irgs "
        "results and cancel runs.  Jobs share a dataset registry and a "
        "warm-frontier cache, so repeat queries answer without a cold "
        "mine; job output is byte-identical to the CLI miner.",
    )
    serve.add_argument(
        "--host", default="127.0.0.1", help="bind address (default: loopback)"
    )
    serve.add_argument(
        "--port",
        type=int,
        default=8765,
        help="bind port; 0 picks an ephemeral port and prints it "
        "(default: 8765)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=2,
        metavar="N",
        help="concurrent mining jobs (default: 2); each job may itself "
        "shard across processes via its own 'workers' knob",
    )
    serve.add_argument(
        "--queue-depth",
        type=int,
        default=16,
        metavar="N",
        help="queued-job cap before submissions get 429 (default: 16)",
    )
    serve.add_argument(
        "--registry-dir",
        default=".farmer-serve",
        metavar="DIR",
        help="state directory: uploaded datasets, the shared "
        "warm-frontier cache and job artifacts (default: .farmer-serve)",
    )
    serve.add_argument(
        "--job-timeout",
        type=float,
        default=300.0,
        metavar="SECONDS",
        help="default wall-clock budget per job (default: 300)",
    )
    return parser


def _add_dataset_arguments(parser: argparse.ArgumentParser) -> None:
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument(
        "--dataset", choices=sorted(PAPER_DATASETS), help="registry dataset"
    )
    source.add_argument("--tsv", help="expression TSV written by 'farmer generate'")
    parser.add_argument("--scale", type=float, default=0.08, help="gene-count scale")


def _load_matrix(args: argparse.Namespace):
    if getattr(args, "tsv", None):
        return load_expression(args.tsv)
    return load(args.dataset, scale=args.scale)


def _build_telemetry(args: argparse.Namespace):
    """The ``Telemetry`` for a ``mine`` invocation, or ``None``.

    Args:
        args: the parsed ``farmer mine`` namespace.

    Returns:
        A :class:`repro.obs.Telemetry` when ``--progress`` or
        ``--metrics-out`` was given, else ``None`` (telemetry is
        off by default).
    """
    if not (args.progress or args.metrics_out):
        return None
    from .obs import ProgressReporter, RunLog, Telemetry

    return Telemetry(
        runlog=RunLog(args.metrics_out) if args.metrics_out else None,
        progress=ProgressReporter(sys.stderr) if args.progress else None,
    )


def _validate_mine_knobs(args: argparse.Namespace) -> None:
    """Reject non-positive numeric knobs before any work starts.

    Args:
        args: a parsed ``farmer mine``/``farmer remine`` namespace.

    Raises:
        UsageError: a worker count, steal quantum or checkpoint cadence
            of zero or less — caught up front with the flag's own name
            instead of failing deep inside the coordinator.
    """
    workers = getattr(args, "workers", None)
    if workers is not None and workers <= 0:
        raise UsageError(
            f"--workers must be a positive worker count, got {workers}"
        )
    quantum = getattr(args, "steal_quantum", None)
    if quantum is not None and quantum <= 0:
        raise UsageError(
            f"--steal-quantum must be a positive node count, got {quantum}"
        )
    every = getattr(args, "checkpoint_every", None)
    if every is not None and every <= 0:
        raise UsageError(
            "--checkpoint-every must be a positive shard count, "
            f"got {every}"
        )


def _validate_serve_knobs(args: argparse.Namespace) -> None:
    """Reject bad ``farmer serve`` knobs before binding a socket.

    Args:
        args: a parsed ``farmer serve`` namespace.

    Raises:
        UsageError: a port outside ``[0, 65535]``, a non-positive
            worker count, queue depth or job timeout — caught up front
            with the flag's own name, mirroring
            :func:`_validate_mine_knobs`.
    """
    if not 0 <= args.port <= 65535:
        raise UsageError(
            f"--port must be a port number in [0, 65535], got {args.port}"
        )
    if args.workers <= 0:
        raise UsageError(
            f"--workers must be a positive worker count, got {args.workers}"
        )
    if args.queue_depth <= 0:
        raise UsageError(
            f"--queue-depth must be a positive job count, "
            f"got {args.queue_depth}"
        )
    if args.job_timeout <= 0:
        raise UsageError(
            f"--job-timeout must be a positive number of seconds, "
            f"got {args.job_timeout}"
        )


def _command_serve(args: argparse.Namespace) -> int:
    _validate_serve_knobs(args)
    from .serve import create_server

    server = create_server(
        host=args.host,
        port=args.port,
        registry_dir=args.registry_dir,
        workers=args.workers,
        queue_depth=args.queue_depth,
        job_timeout=args.job_timeout,
    )
    host, port = server.server_address[:2]
    print(f"serving on http://{host}:{port} (registry: {args.registry_dir})",
          flush=True)
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        print("shutting down", file=sys.stderr)
    finally:
        server.shutdown()
        server.app.close()  # type: ignore[attr-defined]
        server.server_close()
    return 0


def _command_mine(args: argparse.Namespace) -> int:
    _validate_mine_knobs(args)
    matrix = _load_matrix(args)
    data = EqualDepthDiscretizer(n_buckets=args.buckets).fit_transform(matrix)
    consequent = args.consequent
    if consequent is None:
        consequent = matrix.class_labels[0]
    telemetry = _build_telemetry(args)
    miner = Farmer(
        constraints=Constraints(
            minsup=args.minsup, minconf=args.minconf, minchi=args.minchi
        ),
        compute_lower_bounds=args.lower_bounds,
        budget=SearchBudget(max_seconds=args.timeout),
        n_workers=args.workers,
        checkpoint=args.checkpoint,
        checkpoint_every=args.checkpoint_every,
        resume=args.resume,
        engine=args.engine,
        steal=args.steal,
        steal_quantum=args.steal_quantum,
        telemetry=telemetry,
        warm_cache=args.warm_cache,
    )
    try:
        if args.profile:
            import cProfile
            import pstats

            profiler = cProfile.Profile()
            profiler.enable()
            try:
                result = miner.mine(data, consequent)
            finally:
                profiler.disable()
            pstats.Stats(profiler, stream=sys.stdout).sort_stats(
                pstats.SortKey.CUMULATIVE
            ).print_stats(25)
            hits = result.counters.cache_hits
            misses = result.counters.cache_misses
            lookups = hits + misses
            rate = hits / lookups if lookups else 0.0
            print(
                f"kernel caches: {hits} hits / {misses} misses "
                f"({rate:.1%} hit rate over {lookups} lookups)"
            )
        else:
            result = miner.mine(data, consequent)
    except BaseException:
        if telemetry is not None:
            telemetry.close()
        raise
    frontier_note = None
    if args.warm_cache and telemetry is not None:
        # The warm planner publishes its reuse gauge into the metrics
        # registry; without this read the fraction only reached the
        # JSONL metrics event, never the end-of-run summary.
        reuse = telemetry.registry.snapshot().gauges.get(
            "frontier.reuse_fraction"
        )
        if reuse is not None:
            frontier_note = (
                f"frontier reuse {reuse:.0%} (cache {args.warm_cache})"
            )
    if telemetry is not None:
        summary = (
            f"mined {len(result.groups)} groups in "
            f"{result.elapsed_seconds:.2f}s "
            f"({result.counters.nodes} nodes)"
        )
        if frontier_note is not None:
            summary = f"{summary}; {frontier_note}"
        telemetry.close(summary)
        if args.metrics_out:
            print(f"wrote run log to {args.metrics_out}")
    print(
        f"{len(result.groups)} interesting rule groups "
        f"(consequent={consequent!r}, minsup={args.minsup}, "
        f"minconf={args.minconf}, minchi={args.minchi}; "
        f"{result.elapsed_seconds:.2f}s, {result.counters.nodes} nodes)"
    )
    if frontier_note is not None:
        print(f"warm cache: {frontier_note}")
    if result.parallel is not None:
        print(
            f"sharded across {result.parallel.n_workers} workers "
            f"({result.parallel.n_tasks} subtree tasks)"
        )
        if result.parallel.stealing:
            print(
                f"work stealing: {result.parallel.parts} parts, "
                f"{result.parallel.donations} donations, "
                f"{result.parallel.steals} steals"
            )
        if result.parallel.resumed_tasks:
            print(
                f"resumed {result.parallel.resumed_tasks} finished shards "
                f"from checkpoint {args.resume}"
            )
        if result.parallel.checkpoints_written:
            print(
                f"wrote {result.parallel.checkpoints_written} checkpoints "
                f"to {args.checkpoint or args.resume}"
            )
    for group in result.sorted_groups()[: args.top]:
        print()
        print(group.format(data))
    if args.save:
        from .core.serialize import save_rule_groups

        save_rule_groups(
            args.save,
            result.groups,
            constraints=result.constraints,
            dataset_name=data.name,
        )
        print(f"\nsaved {len(result.groups)} groups to {args.save}")
    return 0


def _command_validate(args: argparse.Namespace) -> int:
    from .core.serialize import load_rule_groups
    from .core.validate import validate_result

    matrix = _load_matrix(args)
    data = EqualDepthDiscretizer(n_buckets=args.buckets).fit_transform(matrix)
    groups, header = load_rule_groups(args.groups)
    problems = validate_result(
        data, groups, consequent=header.get("consequent")
    )
    if problems:
        print(f"{len(problems)} problems:")
        for problem in problems[:20]:
            print(f"  - {problem}")
        return 1
    print(
        f"{len(groups)} rule groups validated against {data.name}: "
        "all invariants hold"
    )
    return 0


def _command_classify(args: argparse.Namespace) -> int:
    matrix = _load_matrix(args)
    if args.dataset:
        spec = PAPER_DATASETS[args.dataset]
        train_rows, test_rows = train_test_rows(spec, seed=args.seed)
    else:
        split_at = max(1, matrix.n_samples * 2 // 3)
        train_rows = list(range(split_at))
        test_rows = list(range(split_at, matrix.n_samples))
    train, test = split_matrix(matrix, train_rows, test_rows)
    if args.classifier == "svm":
        accuracy = evaluate_matrix_based(LinearSVM(seed=args.seed), train, test)
    elif args.classifier == "tree":
        from .classify.tree import DecisionTree

        accuracy = evaluate_matrix_based(DecisionTree(), train, test)
    else:
        if args.classifier == "irg":
            classifier = IRGClassifier()
        elif args.classifier == "cba":
            classifier = CBAClassifier()
        else:  # caep
            from .extensions.emerging import CAEPClassifier

            classifier = CAEPClassifier()
        accuracy = evaluate_rule_based(
            classifier, train, test, discretizer=EntropyMDLDiscretizer()
        )
    print(
        f"{args.classifier.upper()} on {matrix.name}: "
        f"{accuracy:.2%} test accuracy "
        f"({len(train_rows)} train / {len(test_rows)} test samples)"
    )
    return 0


def _command_experiment(args: argparse.Namespace) -> int:
    from . import experiments

    datasets = tuple(d.upper() for d in args.datasets) if args.datasets else None
    if args.artifact == "table1":
        rows = experiments.run_table1(
            datasets or experiments.workloads.DATASET_ORDER, scale=args.scale
        )
        print(experiments.table1_report(rows))
    elif args.artifact == "fig10":
        results = experiments.run_fig10(
            datasets or experiments.workloads.DATASET_ORDER,
            scale=args.scale,
            timeout=args.timeout,
        )
        print(experiments.fig10_report(results))
    elif args.artifact == "fig11":
        results = experiments.run_fig11(
            datasets or experiments.workloads.DATASET_ORDER,
            scale=args.scale,
            timeout=args.timeout,
        )
        print(experiments.fig11_report(results))
    elif args.artifact == "table2":
        rows = experiments.run_table2(
            datasets or experiments.workloads.DATASET_ORDER, scale=args.scale
        )
        print(experiments.table2_report(rows))
    elif args.artifact == "scaling":
        name = (datasets or ("CT",))[0]
        series = experiments.run_scaling(
            dataset=name, scale=args.scale, timeout=args.timeout
        )
        print(experiments.scaling_report(series, dataset=name))
    elif args.artifact == "crossover":
        name = (datasets or ("CT",))[0]
        wide = experiments.run_crossover(dataset=name, timeout=args.timeout)
        tall = experiments.run_tall_crossover(dataset=name, timeout=args.timeout)
        print(experiments.crossover_report(wide, tall, dataset=name))
    else:  # ablation
        name = (datasets or ("CT",))[0]
        rows = experiments.run_pruning_ablation(
            dataset=name, scale=min(args.scale, 0.04), timeout=args.timeout
        )
        print(experiments.pruning_ablation_report(rows))
        print()
        result = experiments.run_minelb_ablation(
            dataset=name, scale=min(args.scale, 0.04)
        )
        print(experiments.minelb_ablation_report(result))
    return 0


def _command_profile(args: argparse.Namespace) -> int:
    from .data.profile import profile_dataset, profile_report

    matrix = _load_matrix(args)
    data = EqualDepthDiscretizer(n_buckets=args.buckets).fit_transform(matrix)
    print(profile_report(profile_dataset(data)))
    return 0


def _command_generate(args: argparse.Namespace) -> int:
    matrix = load(args.dataset, scale=args.scale, seed=args.seed)
    save_expression(matrix, args.out)
    print(
        f"wrote {matrix.n_samples} samples x {matrix.n_genes} genes "
        f"({args.dataset}) to {Path(args.out)}"
    )
    return 0


def _command_lint(args: argparse.Namespace) -> int:
    from .analysis.cli import run_lint

    return run_lint(args)


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    handlers = {
        "mine": _command_mine,
        "remine": _command_mine,
        "classify": _command_classify,
        "experiment": _command_experiment,
        "generate": _command_generate,
        "validate": _command_validate,
        "profile": _command_profile,
        "serve": _command_serve,
        "lint": _command_lint,
    }
    try:
        return handlers[args.command](args)
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
