"""Classifier interfaces for the Table 2 experiments.

Two families, matching the paper's setup:

* **rule-based classifiers** (IRG classifier, CBA) consume the
  entropy-discretized :class:`~repro.data.dataset.ItemizedDataset`;
* **margin classifiers** (SVM) consume the continuous
  :class:`~repro.data.matrix.GeneExpressionMatrix` directly.

Both expose scikit-learn-ish ``fit``/``predict``; the evaluation harness
in :mod:`repro.classify.evaluate` adapts between them (fitting the
discretizer on training samples only, as the paper's protocol requires).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Hashable, Sequence

from ..data.dataset import ItemizedDataset
from ..data.matrix import GeneExpressionMatrix

__all__ = ["RuleBasedClassifier", "MatrixClassifier", "majority_label"]


class RuleBasedClassifier(ABC):
    """A classifier trained on and predicting from itemized rows."""

    @abstractmethod
    def fit(self, train: ItemizedDataset) -> "RuleBasedClassifier":
        """Train on a labelled itemized dataset; returns ``self``."""

    @abstractmethod
    def predict_row(self, items: frozenset[int]) -> Hashable:
        """Predict the class label of one itemized row."""

    def predict(self, dataset: ItemizedDataset) -> list[Hashable]:
        """Predict labels for every row of ``dataset``."""
        return [self.predict_row(row) for row in dataset.rows]

    def accuracy(self, dataset: ItemizedDataset) -> float:
        """Fraction of rows of ``dataset`` predicted correctly."""
        if dataset.n_rows == 0:
            return 0.0
        predicted = self.predict(dataset)
        hits = sum(
            1 for guess, truth in zip(predicted, dataset.labels) if guess == truth
        )
        return hits / dataset.n_rows


class MatrixClassifier(ABC):
    """A classifier trained on and predicting from expression matrices."""

    @abstractmethod
    def fit(self, train: GeneExpressionMatrix) -> "MatrixClassifier":
        """Train on a labelled expression matrix; returns ``self``."""

    @abstractmethod
    def predict(self, matrix: GeneExpressionMatrix) -> list[Hashable]:
        """Predict labels for every sample of ``matrix``."""

    def accuracy(self, matrix: GeneExpressionMatrix) -> float:
        """Fraction of samples of ``matrix`` predicted correctly."""
        if matrix.n_samples == 0:
            return 0.0
        predicted = self.predict(matrix)
        hits = sum(
            1 for guess, truth in zip(predicted, matrix.labels) if guess == truth
        )
        return hits / matrix.n_samples


def majority_label(labels: Sequence[Hashable]) -> Hashable:
    """Most frequent label, first-appearance order breaking ties."""
    counts: dict[Hashable, int] = {}
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
    best_label = None
    best_count = -1
    for label in labels:
        if counts[label] > best_count:
            best_label = label
            best_count = counts[label]
    return best_label
