"""Classifiers and evaluation for the Table 2 experiments.

* :class:`~repro.classify.irg.IRGClassifier` — the paper's rule-group
  classifier (Section 4.2).
* :class:`~repro.classify.cba.CBAClassifier` — CBA with the M1 builder.
* :class:`~repro.classify.svm.LinearSVM` — the SVM baseline.
* :class:`~repro.classify.tree.DecisionTree` — the decision-tree
  comparator from the related-work discussion [10].
* :mod:`~repro.classify.evaluate` — the train/test protocol.
"""

from .base import MatrixClassifier, RuleBasedClassifier, majority_label
from .cba import CBAClassifier
from .evaluate import (
    confusion_matrix,
    cross_validate,
    evaluate_matrix_based,
    evaluate_rule_based,
    split_matrix,
)
from .irg import IRGClassifier
from .svm import LinearSVM
from .tree import DecisionTree

__all__ = [
    "CBAClassifier",
    "DecisionTree",
    "IRGClassifier",
    "LinearSVM",
    "MatrixClassifier",
    "RuleBasedClassifier",
    "confusion_matrix",
    "cross_validate",
    "evaluate_matrix_based",
    "evaluate_rule_based",
    "majority_label",
    "split_matrix",
]
