"""The IRG classifier of Section 4.2.

The paper builds "a simple classifier" on top of the discovered
interesting rule groups, CBA-like but using IRGs instead of all class
association rules.  Following the paper and the authors' accompanying
talk ("naive classification approach"):

1. mine the IRG upper bounds *per class* (each class label in turn as
   the consequent), with CBA's thresholds — ``minsup = 0.7 * |class|``
   and ``minconf = 0.8`` by default;
2. compute lower bounds with MineLB — a test sample matches a rule group
   iff one of the group's *lower bounds* is contained in the sample
   (the cheapest member rule that fires, by Lemma 2.2);
3. rank the rule groups by (confidence desc, support desc, shorter upper
   bound first) and apply CBA-style database-coverage pruning;
4. predict with the highest-ranked matching group, falling back to the
   majority class of the uncovered training rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..core.constraints import Constraints
from ..core.enumeration import SearchBudget
from ..core.farmer import Farmer
from ..core.rulegroup import RuleGroup
from ..data.dataset import ItemizedDataset
from .base import RuleBasedClassifier, majority_label

__all__ = ["IRGClassifier"]


@dataclass(frozen=True, slots=True)
class _RankedGroup:
    """A mined rule group prepared for classification."""

    group: RuleGroup
    lower_bounds: tuple[frozenset[int], ...]

    def matches(self, items: frozenset[int]) -> bool:
        """Whether any member rule of the group fires on ``items``."""
        return any(bound <= items for bound in self.lower_bounds)

    def sort_key(self) -> tuple:
        group = self.group
        return (
            -group.confidence,
            -group.support,
            len(group.upper),
            sorted(group.upper),
            str(group.consequent),
        )


class IRGClassifier(RuleBasedClassifier):
    """Classifier built from interesting rule groups.

    Args:
        minsup_fraction: per-class minimum support as a fraction of that
            class's training rows (paper setting: 0.7).
        minconf: minimum confidence (paper setting: 0.8).
        minchi: optional chi-square threshold (paper setting: 0).
        coverage_pruning: apply CBA-style database coverage pruning; when
            off, all mined groups are kept in rank order.
        budget: mining budget per class run.  Defaults to a *non-strict*
            node cap so a pathological training set yields a (valid,
            possibly incomplete) rule set instead of hanging ``fit``;
            node caps keep training deterministic.
    """

    def __init__(
        self,
        minsup_fraction: float = 0.7,
        minconf: float = 0.8,
        minchi: float = 0.0,
        coverage_pruning: bool = True,
        budget: SearchBudget | None = None,
    ) -> None:
        self.minsup_fraction = minsup_fraction
        self.minconf = minconf
        self.minchi = minchi
        self.coverage_pruning = coverage_pruning
        self.budget = budget
        self._rules: list[_RankedGroup] = []
        self._default: Hashable = None

    # ------------------------------------------------------------------

    def fit(self, train: ItemizedDataset) -> "IRGClassifier":
        mined: list[_RankedGroup] = []
        for label in train.class_labels:
            minsup = max(1, int(self.minsup_fraction * train.class_count(label)))
            budget = (
                self.budget
                if self.budget is not None
                else SearchBudget(max_nodes=500_000, strict=False)
            )
            farmer = Farmer(
                constraints=Constraints(
                    minsup=minsup, minconf=self.minconf, minchi=self.minchi
                ),
                compute_lower_bounds=True,
                budget=budget,
            )
            result = farmer.mine(train, label)
            for group in result.groups:
                mined.append(
                    _RankedGroup(
                        group=group, lower_bounds=group.lower_bounds or ()
                    )
                )
        mined.sort(key=_RankedGroup.sort_key)

        if self.coverage_pruning:
            self._rules, self._default = self._coverage_prune(train, mined)
        else:
            self._rules = mined
            self._default = majority_label(train.labels)
        return self

    @staticmethod
    def _coverage_prune(
        train: ItemizedDataset, ranked: list[_RankedGroup]
    ) -> tuple[list[_RankedGroup], Hashable]:
        """CBA-M1 style database coverage over ranked rule groups.

        Walk the ranking; keep a group iff it matches at least one still-
        uncovered training row and classifies at least one of those rows
        correctly; covered rows are then retired.  As in CBA-CB, the
        running total error (rule errors so far + errors of the best
        default on the uncovered remainder) is tracked, and the kept list
        is cut at its minimum; the default class is the one recorded at
        the cut.
        """
        uncovered = set(range(train.n_rows))
        kept: list[_RankedGroup] = []
        defaults: list[Hashable] = []
        totals: list[int] = []
        rule_errors = 0
        for candidate in ranked:
            if not uncovered:
                break
            matched = [
                index
                for index in uncovered
                if candidate.matches(train.rows[index])
            ]
            if not matched:
                continue
            correct = sum(
                1
                for index in matched
                if train.labels[index] == candidate.group.consequent
            )
            if correct == 0:
                continue
            kept.append(candidate)
            uncovered.difference_update(matched)
            rule_errors += len(matched) - correct
            remaining = [train.labels[i] for i in sorted(uncovered)]
            default = (
                majority_label(remaining)
                if remaining
                else majority_label(train.labels)
            )
            defaults.append(default)
            totals.append(
                rule_errors + sum(1 for label in remaining if label != default)
            )
        if not kept:
            return [], majority_label(train.labels)
        best = min(range(len(totals)), key=totals.__getitem__)
        return kept[: best + 1], defaults[best]

    # ------------------------------------------------------------------

    def predict_row(self, items: frozenset[int]) -> Hashable:
        for ranked in self._rules:
            if ranked.matches(items):
                return ranked.group.consequent
        return self._default

    @property
    def rules(self) -> list[RuleGroup]:
        """The rule groups retained after coverage pruning, in rank order."""
        return [ranked.group for ranked in self._rules]

    @property
    def default_class(self) -> Hashable:
        """The fallback label used when no rule group matches."""
        return self._default
