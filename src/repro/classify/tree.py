"""Decision-tree induction baseline (related work, reference [10]).

The paper's related-work section contrasts association-rule classifiers
with "the decision tree induction algorithm" as the classic predictive
approach — and cites work showing rule-based classifiers beat trees on
exactly this kind of data.  This module supplies that comparator: a
CART-style binary tree with gini splits on the continuous expression
values, grown depth-first with the usual stopping controls.

Deterministic: splits scan genes in index order and thresholds at sorted
midpoints, so equal-gain ties resolve to the lowest gene / threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable

from ..data.matrix import GeneExpressionMatrix
from ..errors import DataError
from .base import MatrixClassifier, majority_label

__all__ = ["DecisionTree"]


@dataclass
class _Node:
    """One tree node; leaves carry a label, internal nodes a split."""

    label: Hashable = None
    gene: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None

    @property
    def is_leaf(self) -> bool:
        return self.left is None


def _gini(labels: list[Hashable]) -> float:
    total = len(labels)
    if total == 0:
        return 0.0
    counts: dict[Hashable, int] = {}
    for label in labels:
        counts[label] = counts.get(label, 0) + 1
    return 1.0 - sum((count / total) ** 2 for count in counts.values())


class DecisionTree(MatrixClassifier):
    """CART-style decision tree on expression values.

    Args:
        max_depth: maximum tree depth (root = depth 0).
        min_samples_leaf: minimum samples on each side of a split.
        min_gain: minimum gini improvement to accept a split.
    """

    def __init__(
        self,
        max_depth: int = 6,
        min_samples_leaf: int = 2,
        min_gain: float = 1e-9,
    ) -> None:
        if max_depth < 1:
            raise DataError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_leaf < 1:
            raise DataError(
                f"min_samples_leaf must be >= 1, got {min_samples_leaf}"
            )
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.min_gain = min_gain
        self._root: _Node | None = None
        self._n_genes = 0

    # ------------------------------------------------------------------

    def fit(self, train: GeneExpressionMatrix) -> "DecisionTree":
        if train.n_samples == 0:
            raise DataError("cannot fit a tree on an empty matrix")
        self._n_genes = train.n_genes
        indices = list(range(train.n_samples))
        self._root = self._grow(train, indices, depth=0)
        return self

    def _grow(
        self, train: GeneExpressionMatrix, indices: list[int], depth: int
    ) -> _Node:
        labels = [train.labels[index] for index in indices]
        if (
            depth >= self.max_depth
            or len(indices) < 2 * self.min_samples_leaf
            or _gini(labels) == 0.0
        ):
            return _Node(label=majority_label(labels))

        best = self._best_split(train, indices, labels)
        if best is None:
            return _Node(label=majority_label(labels))
        gene, threshold, left_indices, right_indices = best
        return _Node(
            gene=gene,
            threshold=threshold,
            left=self._grow(train, left_indices, depth + 1),
            right=self._grow(train, right_indices, depth + 1),
            label=majority_label(labels),  # fallback for degenerate input
        )

    def _best_split(self, train, indices, labels):
        parent_impurity = _gini(labels)
        total = len(indices)
        best_gain = self.min_gain
        best = None

        def counts_gini(counts: dict, size: int) -> float:
            if size == 0:
                return 0.0
            return 1.0 - sum((c / size) ** 2 for c in counts.values())

        total_counts: dict[Hashable, int] = {}
        for label in labels:
            total_counts[label] = total_counts.get(label, 0) + 1

        for gene in range(train.n_genes):
            values = [(train.values[index, gene], index) for index in indices]
            values.sort()
            left_counts: dict[Hashable, int] = {}
            right_counts = dict(total_counts)
            for position in range(1, total):
                moved = train.labels[values[position - 1][1]]
                left_counts[moved] = left_counts.get(moved, 0) + 1
                right_counts[moved] -= 1
                if values[position][0] == values[position - 1][0]:
                    continue  # no threshold separates equal values
                if (
                    position < self.min_samples_leaf
                    or total - position < self.min_samples_leaf
                ):
                    continue
                gain = parent_impurity - (
                    position / total * counts_gini(left_counts, position)
                    + (total - position)
                    / total
                    * counts_gini(right_counts, total - position)
                )
                if gain > best_gain:
                    threshold = (
                        values[position - 1][0] + values[position][0]
                    ) / 2.0
                    left = [index for _, index in values[:position]]
                    right = [index for _, index in values[position:]]
                    best_gain = gain
                    best = (gene, threshold, left, right)
        return best

    # ------------------------------------------------------------------

    def predict(self, matrix: GeneExpressionMatrix) -> list[Hashable]:
        if self._root is None:
            raise DataError("predict() called before fit()")
        if matrix.n_genes != self._n_genes:
            raise DataError(
                f"matrix has {matrix.n_genes} genes; tree was trained on "
                f"{self._n_genes}"
            )
        predictions = []
        for sample in range(matrix.n_samples):
            node = self._root
            while not node.is_leaf:
                if matrix.values[sample, node.gene] <= node.threshold:
                    node = node.left  # type: ignore[assignment]
                else:
                    node = node.right  # type: ignore[assignment]
            predictions.append(node.label)
        return predictions

    def depth(self) -> int:
        """Actual depth of the grown tree (0 for a single leaf)."""
        if self._root is None:
            raise DataError("fit() has not been called")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(node.left), walk(node.right))

        return walk(self._root)

    def n_leaves(self) -> int:
        """Number of leaves in the grown tree."""
        if self._root is None:
            raise DataError("fit() has not been called")

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 1
            return walk(node.left) + walk(node.right)

        return walk(self._root)
