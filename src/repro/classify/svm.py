"""Linear soft-margin SVM trained with Pegasos (Table 2's SVM baseline).

The paper uses SVM-light with default settings on the continuous
expression values.  SVM-light is a closed binary we cannot ship, so per
DESIGN.md we substitute the same model family — a linear soft-margin
SVM — trained with the Pegasos projected-subgradient solver
(Shalev-Shwartz et al., 2007), which converges to the same objective.
Features are z-scored per gene (fitted on the training samples) and a
bias term is learnt via feature augmentation.

Deterministic: the epoch-wise pass order is fixed by a seeded RNG.
"""

from __future__ import annotations

import math
from typing import Hashable

import numpy as np

from ..data.matrix import GeneExpressionMatrix
from ..errors import DataError
from .base import MatrixClassifier

__all__ = ["LinearSVM"]


class LinearSVM(MatrixClassifier):
    """Binary linear SVM: ``min  lambda/2 ||w||^2 + mean hinge loss``.

    Args:
        regularization: the Pegasos ``lambda`` (default matches SVM-light's
            default ``C = 1/(lambda * n)`` at typical dataset sizes).
        epochs: full passes over the training set.
        seed: RNG seed for the pass order.
    """

    def __init__(
        self,
        regularization: float = 0.01,
        epochs: int = 200,
        seed: int = 0,
    ) -> None:
        if regularization <= 0.0:
            raise DataError(f"regularization must be > 0, got {regularization}")
        if epochs < 1:
            raise DataError(f"epochs must be >= 1, got {epochs}")
        self.regularization = regularization
        self.epochs = epochs
        self.seed = seed
        self._weights: np.ndarray | None = None
        self._mean: np.ndarray | None = None
        self._std: np.ndarray | None = None
        self._positive: Hashable = None
        self._negative: Hashable = None

    # ------------------------------------------------------------------

    def fit(self, train: GeneExpressionMatrix) -> "LinearSVM":
        labels = train.class_labels
        if len(labels) != 2:
            raise DataError(
                f"LinearSVM is binary; dataset has classes {labels}"
            )
        self._positive, self._negative = labels
        y = np.asarray(
            [1.0 if label == self._positive else -1.0 for label in train.labels]
        )

        self._mean = train.values.mean(axis=0)
        std = train.values.std(axis=0)
        std[std == 0.0] = 1.0
        self._std = std
        features = self._featurize(train.values)

        n_samples, n_features = features.shape
        weights = np.zeros(n_features)
        rng = np.random.default_rng(self.seed)
        lam = self.regularization
        step = 0
        for _ in range(self.epochs):
            order = rng.permutation(n_samples)
            for index in order:
                step += 1
                learning_rate = 1.0 / (lam * step)
                margin = y[index] * float(features[index] @ weights)
                weights *= 1.0 - learning_rate * lam
                if margin < 1.0:
                    weights += learning_rate * y[index] * features[index]
                # Pegasos projection onto the ball of radius 1/sqrt(lam).
                norm = float(np.linalg.norm(weights))
                limit = 1.0 / math.sqrt(lam)
                if norm > limit:
                    weights *= limit / norm
        self._weights = weights
        return self

    def _featurize(self, values: np.ndarray) -> np.ndarray:
        """Z-score with the training statistics and append a bias column."""
        if self._mean is None or self._std is None:
            raise DataError("fit() has not been called")
        standardized = (values - self._mean) / self._std
        bias = np.ones((standardized.shape[0], 1))
        return np.hstack([standardized, bias])

    # ------------------------------------------------------------------

    def decision_function(self, matrix: GeneExpressionMatrix) -> np.ndarray:
        """Signed margins ``w . x`` for every sample."""
        if self._weights is None:
            raise DataError("predict() called before fit()")
        if matrix.n_genes + 1 != self._weights.shape[0]:
            raise DataError(
                f"matrix has {matrix.n_genes} genes; model was trained on "
                f"{self._weights.shape[0] - 1}"
            )
        return self._featurize(matrix.values) @ self._weights

    def predict(self, matrix: GeneExpressionMatrix) -> list[Hashable]:
        scores = self.decision_function(matrix)
        return [
            self._positive if score >= 0.0 else self._negative
            for score in scores
        ]
