"""Evaluation harness for the Table 2 classification protocol.

The paper trains each classifier on a fixed train split and reports the
percentage of correctly predicted test samples (Table 2).  This module
provides:

* :func:`split_matrix` — carve a matrix into train/test sample sets;
* :func:`evaluate_rule_based` — the full rule-classifier protocol:
  entropy-MDL discretization *fitted on the training samples only*,
  applied to the test samples, then fit/predict;
* :func:`evaluate_matrix_based` — the SVM protocol on raw values;
* :func:`confusion_matrix` and :func:`cross_validate` utilities.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Callable, Hashable

import numpy as np

from ..data.discretize import Discretizer, EntropyMDLDiscretizer
from ..data.matrix import GeneExpressionMatrix
from ..errors import DataError
from .base import MatrixClassifier, RuleBasedClassifier

__all__ = [
    "split_matrix",
    "evaluate_rule_based",
    "evaluate_matrix_based",
    "confusion_matrix",
    "cross_validate",
]


def split_matrix(
    matrix: GeneExpressionMatrix,
    train_rows: Sequence[int],
    test_rows: Sequence[int],
) -> tuple[GeneExpressionMatrix, GeneExpressionMatrix]:
    """Split ``matrix`` into (train, test) sub-matrices by sample index.

    Raises:
        DataError: if the row sets overlap.
    """
    overlap = set(train_rows) & set(test_rows)
    if overlap:
        raise DataError(f"train/test overlap on rows {sorted(overlap)}")
    train = matrix.select_samples(train_rows, name=f"{matrix.name}/train")
    test = matrix.select_samples(test_rows, name=f"{matrix.name}/test")
    return train, test


def evaluate_rule_based(
    classifier: RuleBasedClassifier,
    train: GeneExpressionMatrix,
    test: GeneExpressionMatrix,
    discretizer: Discretizer | None = None,
) -> float:
    """Table 2 protocol for IRG/CBA: discretize (train-fitted), fit, score.

    Returns test accuracy in ``[0, 1]``.
    """
    discretizer = (
        discretizer if discretizer is not None else EntropyMDLDiscretizer()
    )
    train_items = discretizer.fit_transform(train)
    test_items = discretizer.transform(test)
    classifier.fit(train_items)
    return classifier.accuracy(test_items)


def evaluate_matrix_based(
    classifier: MatrixClassifier,
    train: GeneExpressionMatrix,
    test: GeneExpressionMatrix,
) -> float:
    """Table 2 protocol for SVM: fit on raw train values, score on test."""
    classifier.fit(train)
    return classifier.accuracy(test)


def confusion_matrix(
    truths: Sequence[Hashable], predictions: Sequence[Hashable]
) -> dict[tuple[Hashable, Hashable], int]:
    """Counts keyed by ``(truth, prediction)``."""
    if len(truths) != len(predictions):
        raise DataError(
            f"{len(truths)} truths but {len(predictions)} predictions"
        )
    counts: dict[tuple[Hashable, Hashable], int] = {}
    for truth, prediction in zip(truths, predictions):
        key = (truth, prediction)
        counts[key] = counts.get(key, 0) + 1
    return counts


def cross_validate(
    matrix: GeneExpressionMatrix,
    make_classifier: Callable[[], RuleBasedClassifier | MatrixClassifier],
    n_folds: int = 5,
    seed: int = 0,
    discretizer_factory: Callable[[], Discretizer] | None = None,
) -> list[float]:
    """Stratified k-fold cross-validation; returns per-fold accuracies.

    ``make_classifier`` is called once per fold; rule-based classifiers
    get a fresh discretizer per fold (``discretizer_factory`` defaults to
    entropy-MDL).
    """
    if n_folds < 2:
        raise DataError(f"n_folds must be >= 2, got {n_folds}")
    if matrix.n_samples < n_folds:
        raise DataError(
            f"{matrix.n_samples} samples cannot fill {n_folds} folds"
        )
    rng = np.random.default_rng(seed)
    folds: list[list[int]] = [[] for _ in range(n_folds)]
    # Stratify: deal each class's shuffled samples round-robin.
    for label in matrix.class_labels:
        indices = [
            i for i, current in enumerate(matrix.labels) if current == label
        ]
        rng.shuffle(indices)
        for position, index in enumerate(indices):
            folds[position % n_folds].append(index)

    accuracies: list[float] = []
    for fold_index in range(n_folds):
        test_rows = sorted(folds[fold_index])
        train_rows = sorted(
            index
            for other in range(n_folds)
            if other != fold_index
            for index in folds[other]
        )
        train, test = split_matrix(matrix, train_rows, test_rows)
        classifier = make_classifier()
        if isinstance(classifier, RuleBasedClassifier):
            factory = discretizer_factory or EntropyMDLDiscretizer
            accuracy = evaluate_rule_based(
                classifier, train, test, discretizer=factory()
            )
        else:
            accuracy = evaluate_matrix_based(classifier, train, test)
        accuracies.append(accuracy)
    return accuracies
