"""FRM011: hot-path purity, inherited bottom-up over the call graph.

The fused enumeration kernels (`extend_and_scan`, the candidate bound
scans, `_enumerate_numpy`) are the multiplied-cost inner loops: they run
once per enumeration node times once per row.  IO, logging, wall-clock
reads, environment access, or mutation of module-level state inside
them is both a performance cliff and — for anything order-dependent — a
determinism hazard that FRM002's module scoping can miss when the
impure operation hides two helpers down.

The rule starts from a pinned catalogue of hot-path roots, walks the
project call graph bottom-up, and flags any *reachable* function that
performs an impure primitive: builtin IO (``open``/``print``/
``input``), calls into stateful stdlib modules (``os``, ``sys``,
``logging``, ``random``, ``time``, ...), ``global`` declarations, or
mutation of module-level objects (attribute/subscript assignment or
growing calls like ``CACHE.append``).  Mutating ``self`` or a
parameter is *pure* here — the kernels legitimately update caches and
counters handed to them — and unknown callees are assumed pure, so
injected callbacks (``emit``, ``tick``) do not false-positive.
Findings anchor at the hot root and carry the full call chain down to
the impure operation.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from ..base import Finding, Rule
from ..project import (
    MODULE_BODY,
    FunctionInfo,
    ModuleInfo,
    PackageIndex,
    ProjectIndex,
    dotted_parts,
)

__all__ = ["HotPathPurityRule"]

#: Builtin calls that are IO by definition.
_IO_BUILTINS = frozenset({"open", "print", "input", "breakpoint", "exec", "eval"})

#: Stdlib module heads whose calls are stateful/impure in a hot loop.
_IMPURE_HEADS = frozenset(
    {
        "os",
        "sys",
        "subprocess",
        "shutil",
        "socket",
        "tempfile",
        "logging",
        "glob",
        "random",
        "time",
        "uuid",
        "datetime",
    }
)

#: Attribute calls that grow/mutate their receiver.
_MUTATING_ATTRS = frozenset(
    {
        "append",
        "extend",
        "add",
        "update",
        "insert",
        "remove",
        "pop",
        "popitem",
        "clear",
        "setdefault",
        "write",
        "writelines",
    }
)


class HotPathPurityRule(Rule):
    """FRM011: nothing reachable from a fused kernel may be impure."""

    rule_id: ClassVar[str] = "FRM011"
    name: ClassVar[str] = "hot-path-purity"
    description: ClassVar[str] = (
        "fused enumeration kernels and bound scans must stay free of IO, "
        "stateful stdlib calls, and module-level mutation, transitively "
        "over the call graph"
    )
    needs_project: ClassVar[bool] = True

    #: ``(module package path, qualname)`` of the hot-path roots.
    hot_roots: ClassVar[tuple[tuple[str, str], ...]] = (
        ("core/kernel.py", "extend_and_scan"),
        ("core/kernel.py", "max_candidate_overlap"),
        ("core/kernel.py", "CondTable.extend"),
        ("core/kernel.py", "CondTable.max_overlap"),
        ("core/kernel.py", "CondTable.observed_max_overlap"),
        ("core/farmer.py", "_enumerate_numpy"),
        ("core/farmer.py", "_walk_numpy"),
        ("core/npbitset.py", "NumpyCondTable.extend"),
        ("core/npbitset.py", "NumpyCondTable.max_overlap"),
        ("core/npbitset.py", "NumpyCondTable.observed_max_overlap"),
    )

    def finish_project(self, project: ProjectIndex) -> Iterator[Finding]:
        for package in project.sorted_packages():
            roots = [
                package.functions[f"{key}::{qualname}"]
                for key, qualname in self.hot_roots
                if f"{key}::{qualname}" in package.functions
            ]
            if not roots:
                continue
            impurities: dict[str, list[tuple[int, str]]] = {}
            module_names: dict[str, frozenset[str]] = {}
            for root in roots:
                yield from self._check_root(
                    package, root, impurities, module_names
                )

    # ------------------------------------------------------------------

    def _check_root(
        self,
        package: PackageIndex,
        root: FunctionInfo,
        impurities: dict[str, list[tuple[int, str]]],
        module_names: dict[str, frozenset[str]],
    ) -> Iterator[Finding]:
        """BFS the call graph from ``root``; flag impure reachables."""
        parents: dict[str, tuple[str, int] | None] = {root.display: None}
        queue = [root]
        reported: set[tuple[str, int]] = set()
        while queue:
            fn = queue.pop(0)
            for line, reason in self._impurities_of(
                fn, impurities, module_names
            ):
                if (fn.display, line) in reported:
                    continue
                reported.add((fn.display, line))
                chain = self._chain(parents, fn.display)
                yield Finding(
                    rule_id=self.rule_id,
                    rule_name=self.name,
                    path=root.module.context.rel_path,
                    line=root.line,
                    col=0,
                    message=(
                        f"hot path {root.display} reaches impure operation "
                        f"({reason}) at {fn.module.key}:{line}; call chain: "
                        f"{' -> '.join(chain)}"
                    ),
                )
            for site, callee in package.callees(fn):
                if callee.qualname == MODULE_BODY:
                    continue
                if callee.display not in parents:
                    parents[callee.display] = (fn.display, site.line)
                    queue.append(callee)

    @staticmethod
    def _chain(
        parents: dict[str, tuple[str, int] | None], display: str
    ) -> list[str]:
        chain = [display]
        cursor = parents.get(display)
        while cursor is not None:
            caller, line = cursor
            chain.append(f"{caller}:{line}")
            cursor = parents.get(caller)
        return chain[::-1]

    # ------------------------------------------------------------------

    def _impurities_of(
        self,
        fn: FunctionInfo,
        cache: dict[str, list[tuple[int, str]]],
        module_names: dict[str, frozenset[str]],
    ) -> list[tuple[int, str]]:
        found = cache.get(fn.display)
        if found is not None:
            return found
        found = []
        if not isinstance(fn.node, ast.Module):
            globals_here = module_names.setdefault(
                fn.module.key, _module_level_names(fn.module)
            )
            for node in ast.walk(fn.node):
                verdict = _impurity_of(node, globals_here)
                if verdict is not None:
                    found.append((getattr(node, "lineno", fn.line), verdict))
            found.sort()
        cache[fn.display] = found
        return found


def _module_level_names(module: ModuleInfo) -> frozenset[str]:
    """Names bound at module level (mutation targets = global state)."""
    names: set[str] = set(module.functions) | set(module.classes)
    names |= set(module.imports)
    for stmt in module.context.tree.body:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    names.add(target.id)
        elif isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            names.add(stmt.target.id)
    return frozenset(names)


def _impurity_of(node: ast.AST, module_names: frozenset[str]) -> str | None:
    """The impurity label of one AST node, or ``None`` when pure."""
    if isinstance(node, ast.Global):
        return f"global {', '.join(node.names)}"
    if isinstance(node, ast.Call):
        func = node.func
        if isinstance(func, ast.Name) and func.id in _IO_BUILTINS:
            return f"{func.id}()"
        parts = dotted_parts(func)
        if len(parts) >= 2 and parts[0] in _IMPURE_HEADS:
            return f"{'.'.join(parts)}()"
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _MUTATING_ATTRS
            and isinstance(func.value, ast.Name)
            and func.value.id in module_names
        ):
            return f"mutates module-level {func.value.id}.{func.attr}()"
        return None
    if isinstance(node, (ast.Assign, ast.AugAssign)):
        targets = node.targets if isinstance(node, ast.Assign) else [node.target]
        for target in targets:
            base = target
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
            if (
                base is not target
                and isinstance(base, ast.Name)
                and base.id in module_names
            ):
                return f"mutates module-level {base.id}"
    return None
