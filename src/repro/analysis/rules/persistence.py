"""FRM007/FRM012: core/ persistence must go through :mod:`repro.core.serialize`.

Checkpoint/resume (:mod:`repro.core.checkpoint`) and the frontier cache
(:mod:`repro.core.frontier`) are only crash-consistent because every byte
that reaches disk goes through the serialize module's envelope: canonical
JSON, a checksum header, and the temp-file + fsync + rename dance.  A raw
``pickle.dump`` or ``json.dump`` anywhere else in ``core/`` silently
bypasses all three — the file has no checksum to detect truncation, no
format version to gate incompatible readers, and a crash mid-write leaves
a corrupt partial file that a later resume happily reads.

Two rules keep the envelope the single write path:

* **FRM007** flags raw stdlib *serialization* calls (pickle/json/
  marshal/shelve dump-load surface) in ``core/`` modules.
* **FRM012** flags raw *write* surfaces — write-mode ``open``/``.open``,
  ``.write_text``/``.write_bytes``, ``os.replace``/``os.rename`` — which
  would let hand-rolled bytes reach disk without ever touching a
  serializer.  Together they close both halves of the bypass: FRM007
  catches "formatted but not enveloped", FRM012 catches "not even
  formatted".
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from ..base import Finding, ModuleContext, Rule

__all__ = ["PersistenceDisciplineRule", "RawWriteSurfaceRule"]

#: The one module allowed to speak raw json/pickle: it implements the
#: envelope everything else must route through.
_ENVELOPE_MODULE = "core/serialize.py"

#: Serialization modules whose load/dump surface is banned in core/.
_PERSISTENCE_MODULES = frozenset({"pickle", "json", "marshal", "shelve"})

#: The banned attribute surface per module.
_BANNED_ATTRS = {
    "pickle": frozenset({"dump", "dumps", "load", "loads"}),
    "json": frozenset({"dump", "dumps", "load", "loads"}),
    "marshal": frozenset({"dump", "dumps", "load", "loads"}),
    "shelve": frozenset({"open"}),
}


class PersistenceDisciplineRule(Rule):
    """FRM007: no raw pickle/json/marshal/shelve persistence in core/."""

    rule_id: ClassVar[str] = "FRM007"
    name: ClassVar[str] = "raw-persistence"
    description: ClassVar[str] = (
        "core/ modules must persist state through core/serialize.py, not "
        "raw pickle/json/marshal/shelve calls"
    )
    node_types: ClassVar[tuple[type[ast.AST], ...]] = (ast.Call,)
    module_prefixes: ClassVar[tuple[str, ...] | None] = ("core/",)

    def applies_to(self, module: ModuleContext) -> bool:
        if module.package_path == _ENVELOPE_MODULE:
            return False
        return super().applies_to(module)

    def start_module(self, module: ModuleContext) -> None:
        # Names bound by ``from json import dumps`` (or aliased) resolve
        # to the same banned surface as ``json.dumps``; map the local
        # binding back to its dotted origin.
        self._from_imports: dict[str, str] = {}
        for statement in ast.walk(module.tree):
            if not isinstance(statement, ast.ImportFrom):
                continue
            origin = statement.module or ""
            if origin not in _PERSISTENCE_MODULES:
                continue
            banned = _BANNED_ATTRS[origin]
            for alias in statement.names:
                if alias.name in banned:
                    bound = alias.asname or alias.name
                    self._from_imports[bound] = f"{origin}.{alias.name}"

    def visit(self, node: ast.AST, module: ModuleContext) -> Iterator[Finding]:
        func = node.func  # type: ignore[attr-defined]
        dotted: str | None = None
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in _PERSISTENCE_MODULES
            and func.attr in _BANNED_ATTRS[func.value.id]
        ):
            dotted = f"{func.value.id}.{func.attr}"
        elif isinstance(func, ast.Name):
            dotted = self._from_imports.get(func.id)
        if dotted is None:
            return
        yield self.finding(
            module,
            node,
            f"{dotted}() bypasses the checksummed, versioned, "
            "crash-consistent envelope; route persistence through "
            "core/serialize.py",
        )


#: Attribute calls that write bytes to disk directly.
_WRITE_ATTRS = frozenset({"write_text", "write_bytes"})

#: ``os`` functions that publish a file at its final path.
_OS_MOVE_ATTRS = frozenset({"replace", "rename"})

#: Mode-string characters that make an ``open()`` call a write.
_WRITE_MODE_CHARS = frozenset("wax+")


def _write_mode_literal(node: ast.Call, mode_position: int) -> str | None:
    """The call's mode argument when it is a write-mode string literal.

    Checks the positional argument at ``mode_position`` (1 for builtin
    ``open(path, mode)``, 0 for ``Path.open(mode)``) and the ``mode=``
    keyword; returns ``None`` for read modes, absent modes, or
    non-literal modes (a computed mode cannot be judged statically, and
    flagging it would punish read-only helpers).
    """
    mode: ast.expr | None = None
    if len(node.args) > mode_position:
        mode = node.args[mode_position]
    for keyword in node.keywords:
        if keyword.arg == "mode":
            mode = keyword.value
    if not isinstance(mode, ast.Constant) or not isinstance(mode.value, str):
        return None
    if any(char in _WRITE_MODE_CHARS for char in mode.value):
        return mode.value
    return None


class RawWriteSurfaceRule(Rule):
    """FRM012: no raw on-disk write surfaces in core/ outside serialize.py."""

    rule_id: ClassVar[str] = "FRM012"
    name: ClassVar[str] = "raw-write-surface"
    description: ClassVar[str] = (
        "core/ modules must write files through the core/serialize.py "
        "envelope, not write-mode open/.write_text/.write_bytes/"
        "os.replace/os.rename"
    )
    node_types: ClassVar[tuple[type[ast.AST], ...]] = (ast.Call,)
    module_prefixes: ClassVar[tuple[str, ...] | None] = ("core/",)

    def applies_to(self, module: ModuleContext) -> bool:
        if module.package_path == _ENVELOPE_MODULE:
            return False
        return super().applies_to(module)

    def visit(self, node: ast.AST, module: ModuleContext) -> Iterator[Finding]:
        func = node.func  # type: ignore[attr-defined]
        surface: str | None = None
        if isinstance(func, ast.Name) and func.id == "open":
            mode = _write_mode_literal(node, 1)  # type: ignore[arg-type]
            if mode is not None:
                surface = f"open(..., {mode!r})"
        elif isinstance(func, ast.Attribute):
            if func.attr in _WRITE_ATTRS:
                surface = f".{func.attr}()"
            elif func.attr == "open":
                mode = _write_mode_literal(node, 0)  # type: ignore[arg-type]
                if mode is not None:
                    surface = f".open(..., {mode!r})"
            elif (
                func.attr in _OS_MOVE_ATTRS
                and isinstance(func.value, ast.Name)
                and func.value.id == "os"
            ):
                surface = f"os.{func.attr}()"
        if surface is None:
            return
        yield self.finding(
            module,
            node,
            f"{surface} writes to disk without the checksummed, "
            "crash-consistent envelope; route on-disk persistence "
            "through core/serialize.py",
        )
