"""FRM007: checkpointed state must persist through :mod:`repro.core.serialize`.

Checkpoint/resume (:mod:`repro.core.checkpoint`) is only crash-consistent
because every byte that reaches disk goes through the serialize module's
envelope: canonical JSON, a checksum header, and the
temp-file + fsync + rename dance.  A raw ``pickle.dump`` or ``json.dump``
anywhere else in ``core/`` silently bypasses all three — the file has no
checksum to detect truncation, no format version to gate incompatible
readers, and a crash mid-write leaves a corrupt partial file that a later
resume happily reads.  This rule flags raw stdlib persistence calls in
``core/`` modules so the envelope stays the single write path.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from ..base import Finding, ModuleContext, Rule

__all__ = ["PersistenceDisciplineRule"]

#: The one module allowed to speak raw json/pickle: it implements the
#: envelope everything else must route through.
_ENVELOPE_MODULE = "core/serialize.py"

#: Serialization modules whose load/dump surface is banned in core/.
_PERSISTENCE_MODULES = frozenset({"pickle", "json", "marshal", "shelve"})

#: The banned attribute surface per module.
_BANNED_ATTRS = {
    "pickle": frozenset({"dump", "dumps", "load", "loads"}),
    "json": frozenset({"dump", "dumps", "load", "loads"}),
    "marshal": frozenset({"dump", "dumps", "load", "loads"}),
    "shelve": frozenset({"open"}),
}


class PersistenceDisciplineRule(Rule):
    """FRM007: no raw pickle/json/marshal/shelve persistence in core/."""

    rule_id: ClassVar[str] = "FRM007"
    name: ClassVar[str] = "raw-persistence"
    description: ClassVar[str] = (
        "core/ modules must persist state through core/serialize.py, not "
        "raw pickle/json/marshal/shelve calls"
    )
    node_types: ClassVar[tuple[type[ast.AST], ...]] = (ast.Call,)
    module_prefixes: ClassVar[tuple[str, ...] | None] = ("core/",)

    def applies_to(self, module: ModuleContext) -> bool:
        if module.package_path == _ENVELOPE_MODULE:
            return False
        return super().applies_to(module)

    def start_module(self, module: ModuleContext) -> None:
        # Names bound by ``from json import dumps`` (or aliased) resolve
        # to the same banned surface as ``json.dumps``; map the local
        # binding back to its dotted origin.
        self._from_imports: dict[str, str] = {}
        for statement in ast.walk(module.tree):
            if not isinstance(statement, ast.ImportFrom):
                continue
            origin = statement.module or ""
            if origin not in _PERSISTENCE_MODULES:
                continue
            banned = _BANNED_ATTRS[origin]
            for alias in statement.names:
                if alias.name in banned:
                    bound = alias.asname or alias.name
                    self._from_imports[bound] = f"{origin}.{alias.name}"

    def visit(self, node: ast.AST, module: ModuleContext) -> Iterator[Finding]:
        func = node.func  # type: ignore[attr-defined]
        dotted: str | None = None
        if (
            isinstance(func, ast.Attribute)
            and isinstance(func.value, ast.Name)
            and func.value.id in _PERSISTENCE_MODULES
            and func.attr in _BANNED_ATTRS[func.value.id]
        ):
            dotted = f"{func.value.id}.{func.attr}"
        elif isinstance(func, ast.Name):
            dotted = self._from_imports.get(func.id)
        if dotted is None:
            return
        yield self.finding(
            module,
            node,
            f"{dotted}() bypasses the checksummed, versioned, "
            "crash-consistent envelope; route persistence through "
            "core/serialize.py",
        )
