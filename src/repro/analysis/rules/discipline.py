"""FRM004: bitset and float-measure discipline.

Two habits corrupt the miners quietly: reimplementing popcount through a
binary *string* — ``bin(x).count("1")``, ``format(x, "b").count("1")``
or ``f"{x:b}".count("1")`` (an order of magnitude slower than the
``int.bit_count`` path wrapped by :func:`repro.core.bitset.bit_count`,
and a second source of truth for the bitset representation), and
comparing floating-point measure values with ``==``/``!=`` (chi-square
and confidence arrive through different algebraic routes in the serial
and sharded miners, so exact equality is a latent flake).

One construction is sanctioned: a string popcount inside a
comprehension that feeds a NumPy array constructor (``np.array(...)``,
``np.fromiter(...)``), the idiom that builds a vectorized popcount
lookup table *once* at import (see ``POPCOUNT8`` in
:mod:`repro.core.npbitset`).  There the per-call cost argument does not
apply — the table is the fast path's foundation, not a hot-loop
popcount — so the rule recognizes the shape and stays quiet.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from ..base import Finding, ModuleContext, Rule

__all__ = ["BitsetDisciplineRule"]


class BitsetDisciplineRule(Rule):
    """FRM004: use the bitset helpers; never ``==`` floats in measures."""

    rule_id: ClassVar[str] = "FRM004"
    name: ClassVar[str] = "bitset-discipline"
    description: ClassVar[str] = (
        "popcounts go through repro.core.bitset.bit_count; no float "
        "equality in measure modules"
    )
    node_types: ClassVar[tuple[type[ast.AST], ...]] = (ast.Call, ast.Compare)

    #: Modules where ``==``/``!=`` against a float expression is banned.
    float_eq_modules: ClassVar[tuple[str, ...]] = (
        "core/measures.py",
        "extensions/measures.py",
    )

    #: NumPy constructors whose comprehension arguments may legitimately
    #: build a popcount lookup table with the string idiom.
    table_constructors: ClassVar[frozenset[str]] = frozenset(
        {"array", "asarray", "fromiter"}
    )

    #: Positions of string popcounts inside sanctioned LUT constructions
    #: for the module currently being walked (``visit`` has no parent
    #: links, so :meth:`start_module` collects them in a pre-pass).
    _lut_popcounts: frozenset[tuple[int, int]] = frozenset()

    def start_module(self, module: ModuleContext) -> None:
        """Pre-pass: locate popcounts feeding NumPy lookup tables.

        A ``bin(x).count("1")``-style call inside a comprehension that is
        an argument to ``np.array`` / ``np.asarray`` / ``np.fromiter``
        builds a vectorized popcount table once at import — the
        sanctioned idiom — so its position is exempted before the node
        walk dispatches it to :meth:`visit`.
        """
        exempt: set[tuple[int, int]] = set()
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not (
                isinstance(func, ast.Attribute)
                and func.attr in self.table_constructors
                and isinstance(func.value, ast.Name)
                and func.value.id in ("np", "numpy")
            ):
                continue
            for arg in node.args:
                if not isinstance(arg, (ast.ListComp, ast.GeneratorExp)):
                    continue
                for inner in ast.walk(arg):
                    if isinstance(inner, ast.Call):
                        exempt.add((inner.lineno, inner.col_offset))
        self._lut_popcounts = frozenset(exempt)

    def visit(self, node: ast.AST, module: ModuleContext) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            yield from self._check_popcount(node, module)
        elif isinstance(node, ast.Compare):
            if module.in_package(*self.float_eq_modules):
                yield from self._check_float_equality(node, module)

    def _check_popcount(
        self, node: ast.Call, module: ModuleContext
    ) -> Iterator[Finding]:
        func = node.func
        if not (isinstance(func, ast.Attribute) and func.attr == "count"):
            return
        if (node.lineno, node.col_offset) in self._lut_popcounts:
            return
        receiver = func.value
        if (
            isinstance(receiver, ast.Call)
            and isinstance(receiver.func, ast.Name)
            and receiver.func.id == "bin"
        ):
            yield self.finding(
                module,
                node,
                'bin(x).count("1") reimplements popcount; use '
                "repro.core.bitset.bit_count(x)",
            )
        elif self._is_binary_format_call(receiver):
            yield self.finding(
                module,
                node,
                'format(x, "b").count("1") reimplements popcount; use '
                "repro.core.bitset.bit_count(x)",
            )
        elif self._is_binary_fstring(receiver):
            yield self.finding(
                module,
                node,
                'f"{x:b}".count("1") reimplements popcount; use '
                "repro.core.bitset.bit_count(x)",
            )

    @staticmethod
    def _is_binary_format_call(node: ast.expr) -> bool:
        """``format(x, "b")`` (or any spec ending in ``b``, e.g. ``08b``)."""
        return (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "format"
            and len(node.args) == 2
            and isinstance(node.args[1], ast.Constant)
            and isinstance(node.args[1].value, str)
            and node.args[1].value.endswith("b")
        )

    @staticmethod
    def _is_binary_fstring(node: ast.expr) -> bool:
        """An f-string with some ``{...:b}``-style binary format spec."""
        if not isinstance(node, ast.JoinedStr):
            return False
        for value in node.values:
            if not isinstance(value, ast.FormattedValue):
                continue
            spec = value.format_spec
            if spec is None or not isinstance(spec, ast.JoinedStr):
                continue
            parts = [
                part.value
                for part in spec.values
                if isinstance(part, ast.Constant) and isinstance(part.value, str)
            ]
            if "".join(parts).endswith("b"):
                return True
        return False

    def _check_float_equality(
        self, node: ast.Compare, module: ModuleContext
    ) -> Iterator[Finding]:
        if not any(isinstance(op, (ast.Eq, ast.NotEq)) for op in node.ops):
            return
        operands = [node.left, *node.comparators]
        if any(
            isinstance(operand, ast.Constant)
            and isinstance(operand.value, float)
            for operand in operands
        ):
            yield self.finding(
                module,
                node,
                "exact ==/!= against a float is fragile for measure "
                "values; compare with math.isclose or an explicit epsilon",
            )
