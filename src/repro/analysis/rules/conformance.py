"""FRM010: static engine-protocol conformance.

The engine seam is structural: ``root_state`` binds a name annotated
``CondTableProtocol`` and assigns it whichever backend the run selects
(``CondTable.reference(...)``, ``CondTable.build(...)``,
``NumpyCondTable.build(...)``).  Python checks none of that until the
call actually happens, and the runtime conformance suite only runs on
backends it can import — a protocol drift in an optional engine
(renamed keyword, dropped method, narrowed arity) ships silently on
machines without its dependency.

This rule closes the gap statically: every class that is *registered*
as an engine — assigned to a name annotated with the protocol — is
checked member-by-member against the protocol class itself (method
presence, positional parameter names in order, required-argument
counts, keyword-only names), using only the AST index.  A drift fails
lint before any test imports anything.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from ..base import Finding, Rule
from ..project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    PackageIndex,
    ProjectIndex,
)

__all__ = ["EngineConformanceRule"]

#: Members every class has; never required of an implementation.
_IMPLICIT = frozenset({"__init__", "__init_subclass__", "__subclasshook__"})


class EngineConformanceRule(Rule):
    """FRM010: registered engines must structurally satisfy the protocol."""

    rule_id: ClassVar[str] = "FRM010"
    name: ClassVar[str] = "engine-protocol-conformance"
    description: ClassVar[str] = (
        "every class assigned to a CondTableProtocol-annotated name must "
        "provide the protocol's methods, attributes, arities and keyword "
        "names"
    )
    needs_project: ClassVar[bool] = True

    #: The protocol seam this rule guards.
    protocol_name: ClassVar[str] = "CondTableProtocol"

    def finish_project(self, project: ProjectIndex) -> Iterator[Finding]:
        for package in project.sorted_packages():
            protocol = self._find_protocol(package)
            if protocol is None:
                continue
            for engine, line in self._registered_engines(package, protocol):
                for problem in self._check(package, protocol, engine):
                    yield Finding(
                        rule_id=self.rule_id,
                        rule_name=self.name,
                        path=engine.module.context.rel_path,
                        line=engine.line,
                        col=engine.node.col_offset,
                        message=(
                            f"engine {engine.name} (registered at "
                            f"{line}) does not satisfy "
                            f"{protocol.name}: {problem}"
                        ),
                    )

    # ------------------------------------------------------------------
    # Discovery
    # ------------------------------------------------------------------

    def _find_protocol(self, package: PackageIndex) -> ClassInfo | None:
        candidates = [
            cls
            for cls in package.class_names.get(self.protocol_name, ())
            if cls.is_protocol
        ]
        if len(candidates) == 1:
            return candidates[0]
        return None

    def _registered_engines(
        self, package: PackageIndex, protocol: ClassInfo
    ) -> list[tuple[ClassInfo, str]]:
        """Classes assigned to a protocol-annotated name, with site."""
        engines: dict[str, tuple[ClassInfo, str]] = {}
        for fn in package.sorted_functions():
            for engine, line in self._engines_in(package, fn, protocol):
                engines.setdefault(engine.display, (engine, line))
        return [engines[key] for key in sorted(engines)]

    def _engines_in(
        self, package: PackageIndex, fn: FunctionInfo, protocol: ClassInfo
    ) -> Iterator[tuple[ClassInfo, str]]:
        annotated: set[str] = set()
        callmap = {id(site.node): site for site in fn.calls}
        for stmt in self._statements(fn):
            if isinstance(stmt, ast.AnnAssign) and isinstance(
                stmt.target, ast.Name
            ):
                parts = self._annotation_tail(stmt.annotation)
                if parts == self.protocol_name:
                    annotated.add(stmt.target.id)
                    if isinstance(stmt.value, ast.Call):
                        engine = self._engine_of(package, callmap, stmt.value)
                        if engine is not None:
                            yield engine, f"{fn.display}:{stmt.lineno}"
            elif isinstance(stmt, ast.Assign) and isinstance(
                stmt.value, ast.Call
            ):
                names = {
                    t.id for t in stmt.targets if isinstance(t, ast.Name)
                }
                if not (names & annotated):
                    continue
                engine = self._engine_of(package, callmap, stmt.value)
                if engine is not None:
                    yield engine, f"{fn.display}:{stmt.lineno}"

    @staticmethod
    def _statements(fn: FunctionInfo) -> Iterator[ast.stmt]:
        node = fn.node
        if isinstance(node, ast.Module):
            for stmt in node.body:
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                ):
                    yield from ast.walk(stmt)  # type: ignore[misc]
            return
        for stmt in node.body:  # type: ignore[attr-defined]
            for inner in ast.walk(stmt):
                if isinstance(inner, ast.stmt):
                    yield inner

    @staticmethod
    def _annotation_tail(node: ast.expr) -> str | None:
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return node.value.split(".")[-1].strip()
        if isinstance(node, ast.Attribute):
            return node.attr
        if isinstance(node, ast.Name):
            return node.id
        return None

    @staticmethod
    def _engine_of(
        package: PackageIndex,
        callmap: dict[int, object],
        call: ast.Call,
    ) -> ClassInfo | None:
        site = callmap.get(id(call))
        target = getattr(site, "target", None)
        if isinstance(target, ClassInfo):
            return target if not target.is_protocol else None
        if isinstance(target, FunctionInfo) and target.class_name is not None:
            owner = target.module.classes.get(target.class_name)
            if owner is not None and not owner.is_protocol:
                return owner
        return None

    # ------------------------------------------------------------------
    # Structural check
    # ------------------------------------------------------------------

    def _check(
        self, package: PackageIndex, protocol: ClassInfo, engine: ClassInfo
    ) -> Iterator[str]:
        methods, properties, attrs = package.class_members(engine)
        available = set(methods) | set(properties) | set(attrs)
        for name in sorted(protocol.methods):
            if name in _IMPLICIT or name in protocol.properties:
                continue
            spec = protocol.methods[name]
            impl = methods.get(name)
            if impl is None:
                if name in available:
                    # Satisfied by a data member (callable attribute);
                    # signatures cannot be checked statically.
                    continue
                yield (
                    f"missing method {name}"
                    f"({', '.join(spec.params + spec.kwonly)})"
                )
                continue
            yield from self._check_signature(name, spec, impl)
        for name in sorted(
            (set(protocol.properties) | set(protocol.class_attrs))
            - set(protocol.methods)
            - {"__slots__"}
        ):
            if name not in available:
                yield f"missing attribute or property {name}"

    @staticmethod
    def _check_signature(
        name: str, spec: FunctionInfo, impl: FunctionInfo
    ) -> Iterator[str]:
        if impl.has_vararg and impl.has_kwarg:
            return
        shared = min(len(spec.params), len(impl.params))
        if impl.params[:shared] != spec.params[:shared]:
            yield (
                f"method {name} positional parameters "
                f"({', '.join(impl.params)}) do not match the protocol's "
                f"({', '.join(spec.params)})"
            )
            return
        if len(impl.params) < len(spec.params) and not impl.has_vararg:
            missing = spec.params[len(impl.params) :]
            yield (
                f"method {name} is missing positional parameter(s) "
                f"{', '.join(missing)}"
            )
        n_required = len(impl.params) - impl.n_defaults
        if n_required > len(spec.params):
            extra = impl.params[len(spec.params) : n_required]
            yield (
                f"method {name} requires extra positional argument(s) "
                f"{', '.join(extra)} the protocol does not pass"
            )
        if not impl.has_kwarg:
            accepted = set(impl.params) | set(impl.kwonly)
            for kw in spec.kwonly:
                if kw not in accepted:
                    yield (
                        f"method {name} does not accept keyword "
                        f"argument {kw}"
                    )
        required_kwonly = set(impl.kwonly) - set(impl.kwonly_defaults)
        unsatisfied = required_kwonly - set(spec.kwonly) - set(spec.params)
        if unsatisfied:
            yield (
                f"method {name} requires keyword-only argument(s) "
                f"{', '.join(sorted(unsatisfied))} the protocol does not "
                f"pass"
            )
