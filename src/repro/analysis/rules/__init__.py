"""The farmer-lint rule catalogue (FRM001..FRM012).

Adding a rule: subclass :class:`repro.analysis.base.Rule` in a module
here, give it a fresh ``FRM0xx`` id, and append the class to
:data:`ALL_RULES`; the engine, CLI, baseline and reporters pick it up
with no further wiring.  ``docs/static-analysis.md`` documents each
rule with bad/good examples.
"""

from __future__ import annotations

from ..base import Rule
from .conformance import EngineConformanceRule
from .determinism import NondeterministicIterationRule, NondeterminismSourceRule
from .discipline import BitsetDisciplineRule
from .docstrings import DocstringSectionsRule
from .exceptions import ExceptionDisciplineRule
from .hygiene import PublicApiRule
from .persistence import PersistenceDisciplineRule, RawWriteSurfaceRule
from .picklability import WorkerPicklabilityRule
from .purity import HotPathPurityRule
from .taint import NondeterminismTaintRule

__all__ = ["ALL_RULES", "RULES_BY_ID", "default_rules"]

#: Every shipped rule class, in id order.
ALL_RULES: tuple[type[Rule], ...] = (
    NondeterministicIterationRule,
    NondeterminismSourceRule,
    WorkerPicklabilityRule,
    BitsetDisciplineRule,
    PublicApiRule,
    ExceptionDisciplineRule,
    PersistenceDisciplineRule,
    DocstringSectionsRule,
    NondeterminismTaintRule,
    EngineConformanceRule,
    HotPathPurityRule,
    RawWriteSurfaceRule,
)

#: Rule classes keyed by their ``FRM00x`` id.
RULES_BY_ID: dict[str, type[Rule]] = {rule.rule_id: rule for rule in ALL_RULES}


def default_rules() -> list[Rule]:
    """Fresh instances of every shipped rule (engine default)."""
    return [rule_class() for rule_class in ALL_RULES]
