"""FRM008: docstring sections — ``Args:``/``Returns:`` on public APIs.

FRM005 guarantees that public definitions *have* docstrings; this rule
keeps the substantial ones structured.  In the packages that define the
library's long-lived surface (``core/``, ``obs/``):

* a public function taking two or more real parameters whose docstring
  spans multiple lines must document them in an ``Args:`` section — a
  one-line summary on a self-explanatory signature stays legal (Google
  style's one-liner escape hatch), but once the author elaborates, the
  parameters must not be the part left implicit;
* a function with a non-``None`` return annotation whose docstring has
  an ``Args:`` section must also carry ``Returns:`` (or ``Yields:``) —
  a half-structured docstring reads as if the return value were an
  afterthought.

Only docstring-bearing definitions are checked (missing docstrings are
FRM005's finding, not ours), and properties, dunders and private names
are exempt.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterable, Iterator

from ..base import Finding, ModuleContext, Rule

__all__ = ["DocstringSectionsRule"]

#: Decorator names that turn a method into an attribute-like accessor —
#: their "parameters" are the property protocol, not an API to document.
_ACCESSOR_DECORATORS = frozenset(
    {"property", "cached_property", "setter", "getter", "deleter", "overload"}
)

_FUNC_NODES = (ast.FunctionDef, ast.AsyncFunctionDef)


def _decorator_name(node: ast.expr) -> str:
    """The trailing identifier of a decorator expression, or ``""``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    if isinstance(node, ast.Call):
        return _decorator_name(node.func)
    return ""


def _returns_none(annotation: ast.expr | None) -> bool:
    """Whether a return annotation is absent or spells ``None``."""
    if annotation is None:
        return True
    if isinstance(annotation, ast.Constant) and annotation.value is None:
        return True
    return isinstance(annotation, ast.Name) and annotation.id == "None"


class DocstringSectionsRule(Rule):
    """FRM008: public docstrings document their Args and Returns."""

    rule_id: ClassVar[str] = "FRM008"
    name: ClassVar[str] = "docstring-sections"
    description: ClassVar[str] = (
        "multi-line docstrings of public functions in core/, obs/ and "
        "serve/ document >=2 parameters under Args: and, once "
        "structured, annotated returns under Returns:"
    )
    module_prefixes: ClassVar[tuple[str, ...] | None] = (
        "core/",
        "obs/",
        "serve/",
    )

    def finish_module(self, module: ModuleContext) -> Iterable[Finding]:
        for function, owner in self._public_functions(module.tree):
            docstring = ast.get_docstring(function)
            if docstring is None:
                continue  # missing docstrings are FRM005's finding
            label = (
                f"{owner}.{function.name}" if owner else function.name
            )
            multi_line = "\n" in docstring
            parameter_count = self._documented_params(function)
            if multi_line and parameter_count >= 2 and (
                "Args:" not in docstring
            ):
                yield self.finding(
                    module,
                    function,
                    f"public function {label!r} takes "
                    f"{parameter_count} parameters but its multi-line "
                    "docstring has no 'Args:' section",
                )
            if (
                not _returns_none(function.returns)
                and "Args:" in docstring
                and "Returns:" not in docstring
                and "Yields:" not in docstring
            ):
                yield self.finding(
                    module,
                    function,
                    f"public function {label!r} returns a value but its "
                    "structured docstring has no 'Returns:' section",
                )

    def _public_functions(
        self, tree: ast.Module
    ) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str | None]]:
        """Yield (function, owning class name) pairs worth checking.

        Covers module-level functions and the methods of module-level
        public classes; nested functions and private scopes are the
        implementation's business.
        """
        for statement in tree.body:
            if isinstance(statement, _FUNC_NODES):
                if self._checkable(statement):
                    yield statement, None
            elif isinstance(statement, ast.ClassDef) and not (
                statement.name.startswith("_")
            ):
                for member in statement.body:
                    if isinstance(member, _FUNC_NODES) and self._checkable(
                        member
                    ):
                        yield member, statement.name

    @staticmethod
    def _checkable(function: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        """Whether a function is a public, non-accessor API."""
        name = function.name
        if name.startswith("_"):
            return False
        decorators = {
            _decorator_name(decorator)
            for decorator in function.decorator_list
        }
        return not (decorators & _ACCESSOR_DECORATORS)

    @staticmethod
    def _documented_params(
        function: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> int:
        """Number of parameters an ``Args:`` section should cover."""
        arguments = function.args
        names = [
            argument.arg
            for argument in (
                *arguments.posonlyargs,
                *arguments.args,
                *arguments.kwonlyargs,
            )
        ]
        if names and names[0] in ("self", "cls"):
            names = names[1:]
        if arguments.vararg is not None:
            names.append(arguments.vararg.arg)
        if arguments.kwarg is not None:
            names.append(arguments.kwarg.arg)
        return len(names)
