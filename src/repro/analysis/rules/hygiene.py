"""FRM005: public-API hygiene — ``__all__`` consistency and docstrings.

The library promises a stable import surface (``tests/test_public_api``
asserts parts of it); this rule keeps every module honest about what it
exports: ``__all__`` must exist once a module defines public names, must
only name things that exist, must cover every public definition, and
public definitions carry docstrings.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterable

from ..base import Finding, ModuleContext, Rule

__all__ = ["PublicApiRule"]

_DEF_NODES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


class PublicApiRule(Rule):
    """FRM005: ``__all__`` consistent with module exports, docstrings."""

    rule_id: ClassVar[str] = "FRM005"
    name: ClassVar[str] = "public-api-hygiene"
    description: ClassVar[str] = (
        "__all__ present/consistent with exports; public definitions "
        "have docstrings"
    )

    def finish_module(self, module: ModuleContext) -> Iterable[Finding]:
        if module.package_path.endswith("__main__.py"):
            return
        tree = module.tree
        defined: dict[str, ast.stmt] = {}
        importable: set[str] = set()
        dunder_all: ast.Assign | None = None
        exported: list[str] | None = None
        for statement in tree.body:
            if isinstance(statement, _DEF_NODES):
                defined[statement.name] = statement
            elif isinstance(statement, ast.Assign):
                for target in statement.targets:
                    if isinstance(target, ast.Name):
                        if target.id == "__all__":
                            dunder_all = statement
                        else:
                            defined[target.id] = statement
            elif isinstance(statement, ast.AnnAssign):
                if isinstance(statement.target, ast.Name):
                    defined[statement.target.id] = statement
            elif isinstance(statement, (ast.Import, ast.ImportFrom)):
                for alias in statement.names:
                    importable.add((alias.asname or alias.name).split(".")[0])

        if dunder_all is not None:
            exported = self._literal_names(dunder_all.value)

        public_defs = {
            name: node
            for name, node in defined.items()
            if not name.startswith("_") and isinstance(node, _DEF_NODES)
        }

        if tree.body and ast.get_docstring(tree) is None:
            yield self.finding(
                module, tree.body[0], "module has no docstring"
            )

        if exported is None:
            if public_defs:
                anchor = next(iter(public_defs.values()))
                yield self.finding(
                    module,
                    anchor,
                    "module defines public names but no __all__; declare "
                    "the export list",
                )
        else:
            known = set(defined) | importable
            for name in exported:
                if name not in known:
                    yield self.finding(
                        module,
                        dunder_all,
                        f"__all__ names {name!r} which is not defined or "
                        "imported in the module",
                    )
            for name, node in sorted(public_defs.items()):
                if name not in exported:
                    yield self.finding(
                        module,
                        node,
                        f"public name {name!r} is missing from __all__ "
                        "(export it or rename it with a leading underscore)",
                    )

        for name, node in sorted(public_defs.items()):
            if ast.get_docstring(node) is None:  # type: ignore[arg-type]
                kind = "class" if isinstance(node, ast.ClassDef) else "function"
                yield self.finding(
                    module,
                    node,
                    f"public {kind} {name!r} has no docstring",
                )

    @staticmethod
    def _literal_names(value: ast.expr | None) -> list[str]:
        names: list[str] = []
        if isinstance(value, (ast.List, ast.Tuple)):
            for element in value.elts:
                if isinstance(element, ast.Constant) and isinstance(
                    element.value, str
                ):
                    names.append(element.value)
        return names
