"""Determinism rules: FRM001 (iteration order) and FRM002 (entropy sources).

The differential guarantee of :mod:`repro.core.parallel` — sharded output
byte-identical to the serial miner — only holds while nothing in the core
enumeration (or the baseline miners it is compared against) depends on
``set`` iteration order, wall-clock time, process ids or unseeded RNGs.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from ..base import Finding, ModuleContext, Rule

__all__ = ["NondeterministicIterationRule", "NondeterminismSourceRule"]


def _dotted_parts(node: ast.expr) -> list[str]:
    """``a.b.c`` as ``["a", "b", "c"]``; empty when not a plain chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return []


class NondeterministicIterationRule(Rule):
    """FRM001: iterating an unordered container where order can leak.

    In the scoped modules every loop feeds, directly or through a few
    calls, the mined output or the parallel replay sequence, so iterating
    a ``set`` expression (or ``dict.keys()``, whose order is insertion
    order and thus code-path dependent) is flagged unless the iterable is
    sorted first.
    """

    rule_id: ClassVar[str] = "FRM001"
    name: ClassVar[str] = "nondeterministic-iteration"
    description: ClassVar[str] = (
        "no iteration over set/dict.keys() expressions in order-sensitive "
        "modules; wrap in sorted()"
    )
    node_types: ClassVar[tuple[type[ast.AST], ...]] = (
        ast.For,
        ast.comprehension,
        ast.Call,
    )
    module_prefixes: ClassVar[tuple[str, ...] | None] = ("core/", "baselines/")

    #: Wrappers that preserve the order of their (first) argument, so the
    #: argument itself is inspected.
    _TRANSPARENT = frozenset({"enumerate", "reversed", "iter"})

    #: Calls that freeze their argument's iteration order into a sequence.
    _MATERIALIZING = frozenset({"list", "tuple"})

    def _unordered_reason(self, expr: ast.expr) -> str | None:
        if isinstance(expr, ast.Set):
            return "a set literal"
        if isinstance(expr, ast.SetComp):
            return "a set comprehension"
        if isinstance(expr, ast.Call):
            func = expr.func
            if isinstance(func, ast.Name):
                if func.id in {"set", "frozenset"}:
                    return f"{func.id}(...)"
                if func.id in self._TRANSPARENT and expr.args:
                    return self._unordered_reason(expr.args[0])
            if isinstance(func, ast.Attribute) and func.attr == "keys":
                return ".keys()"
        return None

    def visit(self, node: ast.AST, module: ModuleContext) -> Iterator[Finding]:
        if isinstance(node, ast.Call):
            # list(set(...)) / tuple({...}) freezes set order into a
            # sequence — the same leak as looping over the set directly.
            func = node.func
            if (
                isinstance(func, ast.Name)
                and func.id in self._MATERIALIZING
                and node.args
            ):
                reason = self._unordered_reason(node.args[0])
                if reason is not None:
                    yield self.finding(
                        module,
                        node,
                        f"{func.id}() over {reason} freezes a "
                        "nondeterministic order into a sequence; sort first",
                    )
            return
        iterable = node.iter
        reason = self._unordered_reason(iterable)
        if reason is not None:
            yield self.finding(
                module,
                iterable,
                f"iteration over {reason} has no deterministic order; "
                "wrap it in sorted() or iterate an ordered container",
            )


class NondeterminismSourceRule(Rule):
    """FRM002: run-to-run entropy in deterministic mining code.

    Flags unseeded RNG use (module-level ``random.*``, ``random.Random()``
    and ``numpy`` ``default_rng()`` without a seed, legacy ``np.random.*``
    globals), wall-clock reads (``time.time``/``time_ns``,
    ``datetime.now``/``utcnow``/``today``), process identity
    (``os.getpid``/``getppid``), entropy (``os.urandom``, ``uuid.uuid1``,
    ``uuid.uuid4``) and ``id()`` (allocator-dependent, so unusable as a
    key or tiebreak).  Monotonic clocks (``time.monotonic``,
    ``time.perf_counter``) are allowed: budgets and timings are
    legitimate, only absolute wall time is not.
    """

    rule_id: ClassVar[str] = "FRM002"
    name: ClassVar[str] = "nondeterminism-source"
    description: ClassVar[str] = (
        "no unseeded RNGs, wall-clock time, pids, or id() in core/baseline "
        "mining code or the deterministic chaos harness"
    )
    node_types: ClassVar[tuple[type[ast.AST], ...]] = (ast.Call,)
    module_prefixes: ClassVar[tuple[str, ...] | None] = (
        "core/",
        "baselines/",
        "testing/",
    )

    _WALL_CLOCK = frozenset({"time", "time_ns"})
    _DATETIME = frozenset({"now", "utcnow", "today"})
    _OS = frozenset({"getpid", "getppid", "urandom"})
    _UUID = frozenset({"uuid1", "uuid4"})

    def visit(self, node: ast.AST, module: ModuleContext) -> Iterator[Finding]:
        func = node.func  # type: ignore[attr-defined]
        if isinstance(func, ast.Name) and func.id == "id":
            yield self.finding(
                module,
                node,
                "id() depends on the allocator and varies between runs and "
                "processes; key on stable data instead",
            )
            return
        parts = _dotted_parts(func)
        if len(parts) < 2:
            return
        head, tail = parts[0], parts[-1]
        has_args = bool(node.args or node.keywords)
        if head == "random":
            if tail in {"Random", "seed"} and has_args:
                return
            yield self.finding(
                module,
                node,
                f"random.{tail}() draws from process-global, unseeded "
                "state; use an explicitly seeded random.Random(seed)",
            )
        elif head == "time" and tail in self._WALL_CLOCK:
            yield self.finding(
                module,
                node,
                f"time.{tail}() reads the wall clock (non-monotonic, "
                "machine-dependent); use time.monotonic() or "
                "time.perf_counter() for budgets and timings",
            )
        elif tail in self._DATETIME and parts[-2] in {"datetime", "date"}:
            yield self.finding(
                module,
                node,
                f"{'.'.join(parts[-2:])}() reads the wall clock; pass "
                "timestamps in explicitly",
            )
        elif head == "os" and tail in self._OS:
            yield self.finding(
                module,
                node,
                f"os.{tail}() varies per process/run and must not reach "
                "mined output",
            )
        elif head == "uuid" and tail in self._UUID:
            yield self.finding(
                module,
                node,
                f"uuid.{tail}() is entropy; derive identifiers from the "
                "input data",
            )
        elif len(parts) >= 3 and parts[-2] == "random" and head in {"np", "numpy"}:
            if tail == "default_rng" and has_args:
                return
            yield self.finding(
                module,
                node,
                f"numpy.random.{tail}() without an explicit seed is "
                "unseeded; use numpy.random.default_rng(seed)",
            )
