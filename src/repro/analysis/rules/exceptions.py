"""FRM006: exception discipline — ``repro.errors`` types, no asserts.

Callers embed the miner behind ``except ReproError`` (the CLI, the
experiment harness, the classifier stack all do); a builtin exception
raised from core code escapes that net.  ``assert`` in library code is
worse: it vanishes under ``python -O``, silently disabling the check.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from ..base import Finding, ModuleContext, Rule

__all__ = ["ExceptionDisciplineRule"]

#: Builtin exception types core code must not raise directly.  The
#: repro.errors hierarchy subclasses ValueError/RuntimeError, so callers
#: keep generic compatibility while gaining the ReproError base.
_BANNED_RAISES = frozenset(
    {
        "Exception",
        "BaseException",
        "ValueError",
        "TypeError",
        "RuntimeError",
        "KeyError",
        "IndexError",
        "ArithmeticError",
        "ZeroDivisionError",
        "AssertionError",
        "OSError",
        "IOError",
    }
)


class ExceptionDisciplineRule(Rule):
    """FRM006: core raises ``repro.errors`` types; no bare asserts."""

    rule_id: ClassVar[str] = "FRM006"
    name: ClassVar[str] = "exception-discipline"
    description: ClassVar[str] = (
        "core code raises repro.errors types; assert is banned outside "
        "tests"
    )
    node_types: ClassVar[tuple[type[ast.AST], ...]] = (ast.Raise, ast.Assert)

    #: Packages where raising a builtin exception type is banned.
    raise_prefixes: ClassVar[tuple[str, ...]] = ("core/",)

    def visit(self, node: ast.AST, module: ModuleContext) -> Iterator[Finding]:
        if isinstance(node, ast.Assert):
            yield self.finding(
                module,
                node,
                "assert is stripped under python -O; raise a repro.errors "
                "type (or restructure) so the check always runs",
            )
            return
        if not module.in_package(*self.raise_prefixes):
            return
        exc = node.exc  # type: ignore[attr-defined]
        name: str | None = None
        if isinstance(exc, ast.Call) and isinstance(exc.func, ast.Name):
            name = exc.func.id
        elif isinstance(exc, ast.Name):
            name = exc.id
        if name in _BANNED_RAISES:
            yield self.finding(
                module,
                node,
                f"core code raises {name}; use a repro.errors type "
                "(DataError, ConstraintError, UsageError, BudgetExceeded) "
                "so callers can catch ReproError",
            )
