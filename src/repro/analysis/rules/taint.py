"""FRM009: interprocedural nondeterminism taint.

The determinism guarantee — serial, sharded, checkpoint-resumed and
every engine produce byte-identical ``.irgs`` output — fails through
*paths*, not single statements: a wall-clock read is harmless in a log
line but fatal once its value travels, possibly through several
helpers, into a checkpoint record, the serialize envelope, the reduce,
or an advisory-bound broadcast.  FRM002 catches the read when it sits
in a scoped module; this rule catches the *journey*, across module
boundaries, and names every hop in the finding message so the witness
path can be audited by eye.

The heavy lifting lives in :mod:`repro.analysis.dataflow`; this rule
adapts its :class:`~repro.analysis.dataflow.TaintFlow` records into
findings anchored at the **source** line — the place a fix (or a
``# farmer-lint: disable=FRM009`` suppression) belongs.
"""

from __future__ import annotations

from typing import ClassVar, Iterator

from ..base import Finding, Rule
from ..dataflow import SINKS, TaintAnalysis
from ..project import ProjectIndex

__all__ = ["NondeterminismTaintRule"]


class NondeterminismTaintRule(Rule):
    """FRM009: no entropy source may reach a determinism-critical sink."""

    rule_id: ClassVar[str] = "FRM009"
    name: ClassVar[str] = "nondeterminism-taint"
    description: ClassVar[str] = (
        "no wall-clock/random/listing-order value may flow, across any "
        "number of calls, into serialized output, checkpoint records, "
        "the reduce, or advisory-bound broadcasts"
    )
    needs_project: ClassVar[bool] = True

    def finish_project(self, project: ProjectIndex) -> Iterator[Finding]:
        for package in project.sorted_packages():
            if not any(key in package.modules for key, _ in SINKS):
                # No determinism-critical surface defined here, so no
                # resolvable sink call can exist either.
                continue
            for flow in TaintAnalysis(package).run():
                module = package.modules.get(flow.source.module_key)
                path = (
                    module.context.rel_path
                    if module is not None
                    else flow.source.path
                )
                yield Finding(
                    rule_id=self.rule_id,
                    rule_name=self.name,
                    path=path,
                    line=flow.source.line,
                    col=0,
                    message=(
                        f"nondeterminism source {flow.source.label} reaches "
                        f"{flow.sink.label}; witness: {flow.witness()}"
                    ),
                )
