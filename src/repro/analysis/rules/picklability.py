"""FRM003: worker state shipped across processes must stay picklable.

:mod:`repro.core.parallel` submits :class:`~repro.core.farmer.NodeState`,
:class:`~repro.core.farmer.SearchContext` and candidate buffers to a
``ProcessPoolExecutor``; a lambda, closure, generator or open file handle
smuggled onto one of those objects only explodes at dispatch time, deep
inside a pool worker.  This rule rejects such attributes statically for
every class defined in a module that imports ``multiprocessing`` or
``concurrent.futures``, plus the explicitly named worker-state classes
wherever they are defined.
"""

from __future__ import annotations

import ast
from typing import ClassVar, Iterator

from ..base import Finding, ModuleContext, Rule

__all__ = ["WorkerPicklabilityRule"]

#: Classes known to cross the process boundary regardless of where they
#: are defined (the miner's task payload types).
WORKER_STATE_CLASSES = frozenset(
    {"NodeState", "Candidate", "SearchContext", "AdvisoryBounds"}
)

_WORKER_IMPORTS = ("multiprocessing", "concurrent.futures", "concurrent")


class WorkerPicklabilityRule(Rule):
    """FRM003: no lambdas, closures, generators or handles on worker state."""

    rule_id: ClassVar[str] = "FRM003"
    name: ClassVar[str] = "unpicklable-worker-state"
    description: ClassVar[str] = (
        "classes handed to multiprocessing must not carry lambdas, "
        "closures, generators, or open handles"
    )
    node_types: ClassVar[tuple[type[ast.AST], ...]] = (ast.ClassDef,)

    def start_module(self, module: ModuleContext) -> None:
        self._module_is_worker = False
        for statement in module.tree.body:
            if isinstance(statement, ast.Import):
                names = [alias.name for alias in statement.names]
            elif isinstance(statement, ast.ImportFrom):
                names = [statement.module or ""]
            else:
                continue
            if any(
                name == prefix or name.startswith(prefix + ".")
                for name in names
                for prefix in _WORKER_IMPORTS
            ):
                self._module_is_worker = True
                return

    def visit(self, node: ast.AST, module: ModuleContext) -> Iterator[Finding]:
        classdef = node
        if not (
            self._module_is_worker or classdef.name in WORKER_STATE_CLASSES  # type: ignore[attr-defined]
        ):
            return
        for statement in classdef.body:  # type: ignore[attr-defined]
            if isinstance(statement, (ast.Assign, ast.AnnAssign)):
                value = statement.value
                if isinstance(value, ast.Lambda):
                    yield self.finding(
                        module,
                        value,
                        f"class {classdef.name} stores a lambda as a class "  # type: ignore[attr-defined]
                        "attribute; lambdas cannot be pickled — use a "
                        "module-level function",
                    )
            elif isinstance(statement, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield from self._check_method(classdef, statement, module)

    def _check_method(
        self,
        classdef: ast.ClassDef,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
        module: ModuleContext,
    ) -> Iterator[Finding]:
        nested_defs = {
            stmt.name
            for stmt in ast.walk(method)
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
            and stmt is not method
        }
        for node in ast.walk(method):
            if not isinstance(node, ast.Assign):
                continue
            targets = [
                t
                for t in node.targets
                if isinstance(t, ast.Attribute)
                and isinstance(t.value, ast.Name)
                and t.value.id == "self"
            ]
            if not targets:
                continue
            attribute = targets[0].attr
            value = node.value
            what: str | None = None
            if isinstance(value, ast.Lambda):
                what = "a lambda"
            elif isinstance(value, ast.GeneratorExp):
                what = "a generator expression"
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id == "open"
            ):
                what = "an open file handle"
            elif isinstance(value, ast.Name) and value.id in nested_defs:
                what = f"the nested function {value.id}() (a closure)"
            if what is not None:
                yield self.finding(
                    module,
                    node,
                    f"{classdef.name}.{attribute} is assigned {what}; it "
                    "cannot cross the process boundary when the instance "
                    "is pickled for a worker",
                )
