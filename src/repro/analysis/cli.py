"""The ``farmer lint`` subcommand.

Mirrors the ``mine`` UX: argparse-validated flags, a one-line error on
bad arguments, and plain-text output by default::

    farmer lint src/repro
    farmer lint src/repro --format json
    farmer lint src/repro --format sarif
    farmer lint src/repro --baseline .farmer-lint-baseline.json
    farmer lint src/repro --update-baseline
    farmer lint src/repro --no-cache
    farmer lint --list-rules

Exit codes: ``0`` clean (or everything baselined), ``1`` new findings,
``2`` bad arguments (missing path, unreadable baseline).

Re-runs are accelerated by an mtime-keyed cache of parsed ASTs and
per-module findings (``.farmer-lint-cache``, gitignored); ``--no-cache``
disables both reading and writing it.
"""

from __future__ import annotations

import argparse
from pathlib import Path

from ..errors import ReproError
from .baseline import (
    DEFAULT_BASELINE_NAME,
    load_baseline,
    partition,
    save_baseline,
)
from .cache import DEFAULT_CACHE_NAME, LintCache
from .engine import Engine
from .reporters import render_json, render_sarif, render_text
from .rules import ALL_RULES

__all__ = ["add_lint_arguments", "run_lint"]

#: Linted when no paths are given: the installed package tree.
_PACKAGE_ROOT = Path(__file__).resolve().parent.parent


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint flags to the ``lint`` subparser."""
    parser.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json", "sarif"),
        default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help=f"ignore and do not write the {DEFAULT_CACHE_NAME} cache",
    )
    parser.add_argument(
        "--cache-file",
        metavar="FILE",
        default=DEFAULT_CACHE_NAME,
        help=f"cache file location (default: {DEFAULT_CACHE_NAME})",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline file of grandfathered findings "
        f"(default: {DEFAULT_BASELINE_NAME} when it exists)",
    )
    parser.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline with the current findings and exit 0",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the rule catalogue and exit",
    )


def run_lint(args: argparse.Namespace) -> int:
    """Execute ``farmer lint``; returns the process exit code."""
    if args.list_rules:
        for rule in ALL_RULES:
            print(f"{rule.rule_id} [{rule.name}] {rule.description}")
        return 0

    paths = args.paths or [_PACKAGE_ROOT]
    engine = Engine()
    cache = None
    if not args.no_cache:
        cache = LintCache(Path(args.cache_file), engine.cache_signature())
    try:
        result = engine.lint_paths(paths, cache=cache)
    except ReproError as error:
        print(f"error: {error}")
        return 2
    if cache is not None:
        cache.save()

    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE_NAME).is_file():
        baseline_path = DEFAULT_BASELINE_NAME

    if args.update_baseline:
        target = baseline_path or DEFAULT_BASELINE_NAME
        save_baseline(target, result.findings)
        print(
            f"wrote {len(result.findings)} finding"
            f"{'' if len(result.findings) == 1 else 's'} to {target}"
        )
        return 0

    if baseline_path is not None:
        try:
            baseline = load_baseline(baseline_path)
        except ReproError as error:
            print(f"error: {error}")
            return 2
        result.findings, result.baselined = partition(result.findings, baseline)

    renderers = {"text": render_text, "json": render_json, "sarif": render_sarif}
    print(renderers[args.format](result))
    return 1 if result.findings else 0
