"""mtime-keyed lint cache: parsed ASTs plus per-module findings.

Parsing is not the expensive part of a lint run — walking every module
through eight rule visitors is.  The cache therefore stores, per file
and keyed by ``(mtime_ns, size)``, the raw source, the pickled AST
*and* the per-module lint outcome (findings + suppression count), so a
warm run re-parses nothing and re-walks nothing: it only re-runs the
whole-program phase, which by construction depends on every module at
once.

Invalidation is conservative: the cache file carries a signature of
the rule catalogue, the interpreter version, the cache format version
and the report-path root; any mismatch discards the whole cache.  A
corrupt or unreadable cache file is treated as empty, never as an
error — the cache is an accelerator, not a source of truth.  The
default cache lives in ``.farmer-lint-cache`` (gitignored) and is
written atomically.
"""

from __future__ import annotations

import ast
import os
import pickle
from dataclasses import dataclass
from pathlib import Path

from .base import Finding

__all__ = ["CACHE_VERSION", "DEFAULT_CACHE_NAME", "CachedModule", "LintCache"]

#: Bump when the on-disk layout changes.
CACHE_VERSION = 1

#: Default cache filename, resolved against the working directory.
DEFAULT_CACHE_NAME = ".farmer-lint-cache"


@dataclass(slots=True)
class CachedModule:
    """One file's cached parse + lint outcome.

    Attributes:
        mtime_ns: stat mtime at cache time.
        size: stat size at cache time.
        rel_path: report path the findings were computed under.
        source: raw file contents.
        tree: the parsed module (pickled with the entry).
        findings: non-suppressed findings of the per-module rules.
        n_suppressed: findings silenced by suppression comments.
    """

    mtime_ns: int
    size: int
    rel_path: str
    source: str
    tree: ast.Module
    findings: tuple[Finding, ...]
    n_suppressed: int


class LintCache:
    """Load/lookup/store interface over the cache file.

    Args:
        path: cache file location.
        signature: invalidation token; entries written under a
            different signature are discarded wholesale on load.
    """

    def __init__(self, path: Path, signature: str) -> None:
        self.path = path
        self.signature = signature
        self.entries: dict[str, CachedModule] = {}
        self.hits = 0
        self.misses = 0
        self._dirty = False
        self._load()

    def _load(self) -> None:
        try:
            with self.path.open("rb") as handle:
                payload = pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError, ValueError):
            return
        if not isinstance(payload, dict):
            return
        if payload.get("version") != CACHE_VERSION:
            return
        if payload.get("signature") != self.signature:
            return
        entries = payload.get("entries")
        if isinstance(entries, dict):
            self.entries = entries

    def lookup(self, path: Path) -> CachedModule | None:
        """The fresh cache entry for ``path``, or ``None`` on miss."""
        entry = self.entries.get(str(path))
        if entry is None:
            self.misses += 1
            return None
        try:
            stat = os.stat(path)
        except OSError:
            self.misses += 1
            return None
        if stat.st_mtime_ns != entry.mtime_ns or stat.st_size != entry.size:
            self.misses += 1
            return None
        self.hits += 1
        return entry

    def store(
        self,
        path: Path,
        rel_path: str,
        source: str,
        tree: ast.Module,
        findings: tuple[Finding, ...],
        n_suppressed: int,
    ) -> None:
        """Record one freshly linted module."""
        try:
            stat = os.stat(path)
        except OSError:
            return
        self.entries[str(path)] = CachedModule(
            mtime_ns=stat.st_mtime_ns,
            size=stat.st_size,
            rel_path=rel_path,
            source=source,
            tree=tree,
            findings=findings,
            n_suppressed=n_suppressed,
        )
        self._dirty = True

    def save(self) -> None:
        """Atomically persist the cache when anything changed."""
        if not self._dirty:
            return
        payload = {
            "version": CACHE_VERSION,
            "signature": self.signature,
            "entries": self.entries,
        }
        tmp = self.path.with_name(self.path.name + ".tmp")
        try:
            with tmp.open("wb") as handle:
                pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
            tmp.replace(self.path)
        except OSError:
            try:
                tmp.unlink()
            except OSError:
                pass
