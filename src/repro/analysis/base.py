"""Core datatypes of farmer-lint: findings, modules, rules, suppressions.

A :class:`Rule` sees one :class:`ModuleContext` at a time and emits
:class:`Finding` values.  Rules never read files or handle suppression
comments themselves — the engine owns discovery and filtering — so a rule
is just "which AST nodes do I care about" plus "what is wrong with this
one".
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, ClassVar, Iterable, Iterator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .project import ProjectIndex

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "parse_suppressions",
    "SUPPRESS_ALL",
]

#: Sentinel stored in the suppression map when a ``disable`` comment names
#: no rule ids, meaning "every rule on this line".
SUPPRESS_ALL = "*"

_SUPPRESS_RE = re.compile(
    r"#\s*farmer-lint:\s*disable(?:=(?P<ids>[A-Z]{3}\d{3}(?:\s*,\s*[A-Z]{3}\d{3})*))?"
)


@dataclass(frozen=True, slots=True)
class Finding:
    """One rule violation at a source location.

    Attributes:
        rule_id: the ``FRM00x`` identifier.
        rule_name: the rule's short kebab-case name.
        path: report path of the module (posix, relative where possible).
        line: 1-based source line.
        col: 0-based source column.
        message: human-readable description of the violation.
    """

    rule_id: str
    rule_name: str
    path: str
    line: int
    col: int
    message: str

    @property
    def fingerprint(self) -> str:
        """Line-insensitive identity used for baseline matching."""
        return f"{self.path}::{self.rule_id}::{self.message}"

    def format(self) -> str:
        """The one-line text rendering used by the text reporter."""
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule_id} [{self.rule_name}] {self.message}"
        )

    @property
    def sort_key(self) -> tuple[str, int, int, str]:
        return (self.path, self.line, self.col, self.rule_id)


def parse_suppressions(lines: list[str]) -> dict[int, frozenset[str]]:
    """Map 1-based line numbers to the rule ids suppressed on that line.

    Recognises ``# farmer-lint: disable=FRM001`` (one rule),
    ``# farmer-lint: disable=FRM001,FRM004`` (several) and a bare
    ``# farmer-lint: disable`` (every rule, stored as
    :data:`SUPPRESS_ALL`).
    """
    suppressions: dict[int, frozenset[str]] = {}
    for line_number, text in enumerate(lines, start=1):
        if "farmer-lint" not in text:
            continue
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        ids = match.group("ids")
        if ids is None:
            suppressions[line_number] = frozenset({SUPPRESS_ALL})
        else:
            suppressions[line_number] = frozenset(
                part.strip() for part in ids.split(",")
            )
    return suppressions


class ModuleContext:
    """One parsed module, shared by every rule that inspects it.

    Attributes:
        path: absolute filesystem path.
        rel_path: posix path used in reports and baselines (relative to
            the lint root when the module lives under it).
        source: raw file contents.
        tree: the parsed :class:`ast.Module`.
        lines: ``source`` split into lines.
        suppressions: per-line suppressed rule ids (see
            :func:`parse_suppressions`).
        package_path: path relative to the ``repro`` package when the
            module lives inside one (``core/farmer.py``), otherwise
            ``rel_path``.  Rules scope themselves with this, so fixture
            trees like ``tmp/repro/core/bad.py`` scope exactly like the
            real package.
    """

    def __init__(self, path: Path, rel_path: str, source: str, tree: ast.Module):
        self.path = path
        self.rel_path = rel_path
        self.source = source
        self.tree = tree
        self.lines = source.splitlines()
        self.suppressions = parse_suppressions(self.lines)
        parts = Path(rel_path).parts
        if "repro" in parts:
            anchor = len(parts) - 1 - parts[::-1].index("repro")
            self.package_path = "/".join(parts[anchor + 1 :])
        else:
            self.package_path = rel_path

    def is_test(self) -> bool:
        """Whether the module is test code (relaxed rules apply).

        Benchmarks count: they are pytest-collected modules (see
        ``python_files`` in ``pyproject.toml``) and carry the same
        relaxed documentation/assert conventions as tests.
        """
        name = Path(self.rel_path).name
        parts = Path(self.rel_path).parts
        return (
            name.startswith("test_")
            or name.startswith("bench_")
            or name == "conftest.py"
            or "tests" in parts
            or "benchmarks" in parts
        )

    def in_package(self, *prefixes: str) -> bool:
        """Whether the module's package path starts with any prefix."""
        return any(self.package_path.startswith(prefix) for prefix in prefixes)

    def is_suppressed(self, rule_id: str, line: int) -> bool:
        """Whether ``rule_id`` is disabled on ``line`` by a comment."""
        ids = self.suppressions.get(line)
        if ids is None:
            return False
        return SUPPRESS_ALL in ids or rule_id in ids


class Rule:
    """Base class for farmer-lint rules.

    Subclasses set the class attributes and implement :meth:`visit`
    and/or :meth:`finish_module`.  The engine walks each module's AST
    once and dispatches every node whose type appears in
    :attr:`node_types`; rules that need whole-module structure (e.g.
    ``__all__`` consistency) leave ``node_types`` empty and work in
    :meth:`finish_module`.

    Class attributes:
        rule_id: stable ``FRM00x`` identifier.
        name: short kebab-case name shown in reports.
        description: one-line summary shown by ``farmer lint --list-rules``.
        node_types: AST node classes dispatched to :meth:`visit`.
        module_prefixes: package-path prefixes the rule applies to, or
            ``None`` for every module.
        check_tests: whether the rule also applies to test modules.
        needs_project: whether the rule participates in the whole-program
            phase (:meth:`start_project` / :meth:`finish_project`).
    """

    rule_id: ClassVar[str] = "FRM000"
    name: ClassVar[str] = "abstract"
    description: ClassVar[str] = ""
    node_types: ClassVar[tuple[type[ast.AST], ...]] = ()
    module_prefixes: ClassVar[tuple[str, ...] | None] = None
    check_tests: ClassVar[bool] = False
    needs_project: ClassVar[bool] = False

    def applies_to(self, module: ModuleContext) -> bool:
        """Whether this rule runs on ``module`` at all."""
        if module.is_test() and not self.check_tests:
            return False
        if self.module_prefixes is None:
            return True
        return module.in_package(*self.module_prefixes)

    def start_module(self, module: ModuleContext) -> None:
        """Hook called once before any node of ``module`` is dispatched."""

    def visit(self, node: ast.AST, module: ModuleContext) -> Iterator[Finding]:
        """Inspect one dispatched node; yield findings."""
        return iter(())

    def finish_module(self, module: ModuleContext) -> Iterable[Finding]:
        """Hook called after the walk; yield module-level findings."""
        return ()

    def start_project(self, project: "ProjectIndex") -> None:
        """Hook called once with the whole-program index, before
        :meth:`finish_project`.  Only runs when :attr:`needs_project`."""

    def finish_project(self, project: "ProjectIndex") -> Iterable[Finding]:
        """Yield whole-program findings.  The engine filters them through
        the owning module's suppressions and test policy afterwards."""
        return ()

    def finding(
        self, module: ModuleContext, node: ast.AST, message: str
    ) -> Finding:
        """Build a :class:`Finding` anchored at ``node``."""
        return Finding(
            rule_id=self.rule_id,
            rule_name=self.name,
            path=module.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            message=message,
        )
