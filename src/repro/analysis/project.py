"""Whole-program index: symbol tables and an over-approximate call graph.

The per-module rules (FRM001-FRM008) see one file at a time, which is
exactly the blind spot a real nondeterminism bug exploits: a wall-clock
read three helpers away from the checkpoint record it eventually
reaches.  This module parses every linted file **once** into:

* a *symbol table* per package instance — modules keyed by their
  ``repro``-anchored package path, with their functions, classes,
  methods, imports and attribute inventories;
* a *call graph* — for every function (and every module body, as the
  pseudo-function ``<module>``), the calls it makes with each call site
  resolved to a known function or class where module-level name
  resolution, ``self.``/``cls.`` dispatch, parameter annotations, or
  local ``x = SomeClass(...)`` typing allow it, plus *reference* edges
  for functions passed as values (worker targets handed to
  ``executor.submit`` / ``Process(target=...)``).

Resolution is deliberately **over-approximate and sound-ish, not
complete**: an unresolved call simply produces no edge, and downstream
passes (taint, purity) treat unknown callees conservatively for their
own direction of error.  Everything is deterministic — modules, symbols
and edges are built and iterated in sorted order, so findings derived
from the graph are stable across runs and machines.

Fixture trees group exactly like the real package: modules are bundled
into a :class:`PackageIndex` per ``repro`` anchor directory
(``src/repro`` and ``tests/lint_fixtures/x/repro`` form independent
packages), and unanchored modules (``tests/``, ``benchmarks/``) resolve
their absolute ``repro.*`` imports against the largest anchored package.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePosixPath
from typing import Iterator, Sequence, Union

from .base import ModuleContext

__all__ = [
    "MODULE_BODY",
    "CallSite",
    "ClassInfo",
    "FunctionInfo",
    "ModuleInfo",
    "PackageIndex",
    "ProjectIndex",
    "dotted_parts",
]

#: Pseudo-qualname under which module-level (import-time) statements are
#: indexed as a callable of their own.
MODULE_BODY = "<module>"

_FunctionNode = Union[ast.FunctionDef, ast.AsyncFunctionDef]

#: Symbols a call can resolve to.
Symbol = Union["FunctionInfo", "ClassInfo"]


def dotted_parts(node: ast.expr) -> tuple[str, ...]:
    """``a.b.c`` as ``("a", "b", "c")``; empty when not a plain chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return tuple(parts[::-1])
    return ()


@dataclass(slots=True)
class CallSite:
    """One ``ast.Call`` inside a function, with its resolution.

    Attributes:
        node: the call expression.
        target: the function or class the call resolves to, or ``None``
            for builtins/externals/unresolvable dispatch.
        ref_args: known functions passed *as values* among the call's
            arguments (worker targets, map callbacks); each entry is
            ``(positional_index_or_None, function)``.
    """

    node: ast.Call
    target: Symbol | None
    ref_args: tuple[tuple[int | None, "FunctionInfo"], ...] = ()

    @property
    def line(self) -> int:
        """Source line of the call expression."""
        return self.node.lineno


@dataclass(slots=True)
class FunctionInfo:
    """One indexed function, method, or module body.

    Attributes:
        name: bare name (``extend``); ``<module>`` for module bodies.
        qualname: module-local qualified name (``CondTable.extend``).
        module: owning :class:`ModuleInfo`.
        node: the defining AST node (the ``ast.Module`` for bodies).
        class_name: enclosing class name for methods, else ``None``.
        params: positional parameter names, ``self``/``cls`` excluded.
        kwonly: keyword-only parameter names.
        n_defaults: how many trailing ``params`` have defaults.
        kwonly_defaults: kwonly names that carry defaults.
        has_vararg: ``*args`` present.
        has_kwarg: ``**kwargs`` present.
        decorators: dotted decorator names (``("property",)``).
        annotations: parameter name -> dotted annotation parts.
        calls: every call site in the body, nested defs included.
    """

    name: str
    qualname: str
    module: "ModuleInfo" = field(repr=False)
    node: ast.AST = field(repr=False)
    class_name: str | None = None
    params: tuple[str, ...] = ()
    kwonly: tuple[str, ...] = ()
    n_defaults: int = 0
    kwonly_defaults: tuple[str, ...] = ()
    has_vararg: bool = False
    has_kwarg: bool = False
    decorators: tuple[str, ...] = ()
    annotations: dict[str, tuple[str, ...]] = field(default_factory=dict)
    calls: list[CallSite] = field(default_factory=list, repr=False)

    @property
    def display(self) -> str:
        """Human-readable symbol id used in witness paths."""
        return f"{self.module.key}::{self.qualname}"

    @property
    def line(self) -> int:
        """Line of the ``def`` (1 for module bodies)."""
        return getattr(self.node, "lineno", 1)


@dataclass(slots=True)
class ClassInfo:
    """One indexed class with its member inventory.

    Attributes:
        name: class name.
        module: owning :class:`ModuleInfo`.
        node: the ``ast.ClassDef``.
        bases: dotted base-class names as written.
        methods: bare method name -> :class:`FunctionInfo`.
        properties: names defined with ``@property`` (or setters).
        slots: names declared in ``__slots__`` (when a literal).
        class_attrs: names assigned or annotated in the class body.
        instance_attrs: names assigned as ``self.X`` in any method.
        is_protocol: whether a base is (typing.)``Protocol``.
    """

    name: str
    module: "ModuleInfo" = field(repr=False)
    node: ast.ClassDef = field(repr=False)
    bases: tuple[tuple[str, ...], ...] = ()
    methods: dict[str, FunctionInfo] = field(default_factory=dict)
    properties: frozenset[str] = frozenset()
    slots: frozenset[str] = frozenset()
    class_attrs: frozenset[str] = frozenset()
    instance_attrs: frozenset[str] = frozenset()
    is_protocol: bool = False

    @property
    def display(self) -> str:
        """Human-readable symbol id used in findings."""
        return f"{self.module.key}::{self.name}"

    @property
    def line(self) -> int:
        """Line of the ``class`` statement."""
        return self.node.lineno


@dataclass(slots=True)
class ModuleInfo:
    """One module of a package instance.

    Attributes:
        context: the parsed :class:`~repro.analysis.base.ModuleContext`.
        key: the module's package path (``core/kernel.py``) — unique
            within a :class:`PackageIndex` and used in symbol displays.
        dotted: importable dotted name (``repro.core.kernel``).
        imports: local alias -> absolute dotted target parts.
        functions: module-level function name -> info.
        classes: class name -> info.
        body: the ``<module>`` pseudo-function for import-time code.
    """

    context: ModuleContext = field(repr=False)
    key: str
    dotted: str
    imports: dict[str, tuple[str, ...]] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    body: FunctionInfo | None = field(default=None, repr=False)


class PackageIndex:
    """Symbol table + call graph of one package instance.

    Args:
        anchor: path prefix of the package's ``repro`` directory (e.g.
            ``src/repro``), or ``""`` for the unanchored module group.
    """

    def __init__(self, anchor: str) -> None:
        self.anchor = anchor
        #: module key (package path) -> ModuleInfo, insertion-sorted.
        self.modules: dict[str, ModuleInfo] = {}
        #: dotted module name -> ModuleInfo.
        self.by_dotted: dict[str, ModuleInfo] = {}
        #: every indexed function keyed by display id.
        self.functions: dict[str, FunctionInfo] = {}
        #: every indexed class keyed by display id.
        self.classes: dict[str, ClassInfo] = {}
        #: bare class name -> infos (for last-resort name resolution).
        self.class_names: dict[str, list[ClassInfo]] = {}
        #: absolute-import fallback for unanchored groups (set by
        #: :class:`ProjectIndex` to the main anchored package).
        self.fallback: "PackageIndex | None" = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    def add_module(self, module: ModuleContext) -> None:
        """Index one parsed module into the package."""
        key = module.package_path
        dotted = _dotted_module_name(key, anchored=bool(self.anchor))
        info = ModuleInfo(context=module, key=key, dotted=dotted)
        self.modules[key] = info
        self.by_dotted[dotted] = info
        is_package = PurePosixPath(key).name == "__init__.py"
        _collect_imports(module.tree, dotted, is_package, info.imports)
        for node in module.tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = _function_info(node, info, class_name=None)
                info.functions[fn.name] = fn
                self.functions[fn.display] = fn
            elif isinstance(node, ast.ClassDef):
                cls = _class_info(node, info)
                info.classes[cls.name] = cls
                self.classes[cls.display] = cls
                self.class_names.setdefault(cls.name, []).append(cls)
                for method in cls.methods.values():
                    self.functions[method.display] = method
        body = FunctionInfo(
            name=MODULE_BODY, qualname=MODULE_BODY, module=info, node=module.tree
        )
        info.body = body
        self.functions[body.display] = body

    def link(self) -> None:
        """Second pass: resolve every call site (needs all modules in)."""
        for fn in self.functions.values():
            _link_function(self, fn)

    # ------------------------------------------------------------------
    # Resolution
    # ------------------------------------------------------------------

    def resolve_module(self, dotted: tuple[str, ...]) -> tuple[ModuleInfo | None, tuple[str, ...]]:
        """Longest-prefix match of ``dotted`` against known modules.

        Returns ``(module, remainder)``; falls back to the main anchored
        package for ``repro.*`` prefixes this group cannot satisfy.
        """
        for cut in range(len(dotted), 0, -1):
            name = ".".join(dotted[:cut])
            mod = self.by_dotted.get(name)
            if mod is not None:
                return mod, dotted[cut:]
        if self.fallback is not None and dotted and dotted[0] == "repro":
            return self.fallback.resolve_module(dotted)
        return None, dotted

    def resolve_in_module(
        self, module: ModuleInfo, parts: tuple[str, ...]
    ) -> Symbol | None:
        """Resolve a dotted name as seen from inside ``module``."""
        if not parts:
            return None
        head = parts[0]
        fn = module.functions.get(head)
        if fn is not None:
            return fn if len(parts) == 1 else None
        cls = module.classes.get(head)
        if cls is not None:
            if len(parts) == 1:
                return cls
            if len(parts) == 2:
                return self.lookup_method(cls, parts[1])
            return None
        target = module.imports.get(head)
        if target is not None:
            return self.resolve_absolute(target + parts[1:])
        return None

    def resolve_absolute(self, dotted: tuple[str, ...]) -> Symbol | None:
        """Resolve an absolute dotted path (``repro.core.kernel.CondTable``)."""
        mod, rest = self.resolve_module(dotted)
        if mod is None or not rest:
            return None
        owner = self if mod.key in self.modules else self.fallback
        if owner is None:
            return None
        return owner.resolve_in_module_symbols(mod, rest)

    def resolve_in_module_symbols(
        self, module: ModuleInfo, parts: tuple[str, ...]
    ) -> Symbol | None:
        """Like :meth:`resolve_in_module` but without import chasing."""
        head = parts[0]
        fn = module.functions.get(head)
        if fn is not None and len(parts) == 1:
            return fn
        cls = module.classes.get(head)
        if cls is not None:
            if len(parts) == 1:
                return cls
            if len(parts) == 2:
                return self.lookup_method(cls, parts[1])
        target = module.imports.get(head)
        if target is not None:
            return self.resolve_absolute(target + parts[1:])
        return None

    def lookup_method(self, cls: ClassInfo, name: str) -> FunctionInfo | None:
        """Find ``name`` on ``cls`` or (recursively) its known bases."""
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.display in seen:
                continue
            seen.add(current.display)
            method = current.methods.get(name)
            if method is not None:
                return method
            for base_parts in current.bases:
                base = self.resolve_in_module(current.module, base_parts)
                if isinstance(base, ClassInfo):
                    stack.append(base)
        return None

    def class_members(self, cls: ClassInfo) -> tuple[dict[str, FunctionInfo], frozenset[str], frozenset[str]]:
        """``(methods, properties, attributes)`` of a class incl. bases."""
        methods: dict[str, FunctionInfo] = {}
        properties: set[str] = set()
        attrs: set[str] = set()
        seen: set[str] = set()
        stack = [cls]
        while stack:
            current = stack.pop(0)
            if current.display in seen:
                continue
            seen.add(current.display)
            for name, fn in current.methods.items():
                methods.setdefault(name, fn)
            properties |= current.properties
            attrs |= current.slots | current.class_attrs | current.instance_attrs
            for base_parts in current.bases:
                base = self.resolve_in_module(current.module, base_parts)
                if isinstance(base, ClassInfo):
                    stack.append(base)
        return methods, frozenset(properties), frozenset(attrs)

    def resolve_class_name(self, name: str) -> ClassInfo | None:
        """A class by bare name, when exactly one module defines it."""
        candidates = self.class_names.get(name, [])
        if len(candidates) == 1:
            return candidates[0]
        return None

    # ------------------------------------------------------------------
    # Graph views
    # ------------------------------------------------------------------

    def sorted_functions(self) -> list[FunctionInfo]:
        """Every function, in deterministic display order."""
        return [self.functions[key] for key in sorted(self.functions)]

    def callees(self, fn: FunctionInfo) -> Iterator[tuple[CallSite, FunctionInfo]]:
        """Resolved *function* targets of ``fn``'s call sites.

        Constructor calls yield the class ``__init__`` when indexed;
        reference arguments (worker targets) are yielded like calls —
        the coordinator will invoke them eventually.
        """
        for site in fn.calls:
            target = site.target
            if isinstance(target, FunctionInfo):
                yield site, target
            elif isinstance(target, ClassInfo):
                init = self.lookup_method(target, "__init__")
                if init is not None:
                    yield site, init
            for _, ref in site.ref_args:
                yield site, ref


class ProjectIndex:
    """Every package instance found among the linted modules.

    Build with :meth:`build`; rules iterate :attr:`packages` (sorted by
    anchor) and treat each independently, so a fixture tree carrying a
    deliberate violation can never contaminate the real package's
    analysis (or vice versa).
    """

    def __init__(self, packages: dict[str, PackageIndex]) -> None:
        self.packages = packages
        #: rel_path -> ModuleInfo for suppression/ownership lookups.
        self.by_rel_path: dict[str, ModuleInfo] = {}
        for package in packages.values():
            for module in package.modules.values():
                self.by_rel_path[module.context.rel_path] = module

    @classmethod
    def build(cls, modules: Sequence[ModuleContext]) -> "ProjectIndex":
        """Index ``modules``, grouped by their ``repro`` anchor."""
        groups: dict[str, list[ModuleContext]] = {}
        for module in modules:
            groups.setdefault(_anchor_of(module), []).append(module)
        packages: dict[str, PackageIndex] = {}
        for anchor in sorted(groups):
            package = PackageIndex(anchor)
            for module in sorted(groups[anchor], key=lambda m: m.package_path):
                package.add_module(module)
            packages[anchor] = package
        anchored = [p for a, p in sorted(packages.items()) if a]
        if anchored:
            main = max(anchored, key=lambda p: (len(p.modules), p.anchor))
            for package in packages.values():
                if package is not main:
                    package.fallback = main
        for package in packages.values():
            package.link()
        return cls(packages)

    def sorted_packages(self) -> list[PackageIndex]:
        """Packages in deterministic anchor order."""
        return [self.packages[a] for a in sorted(self.packages)]


# ----------------------------------------------------------------------
# Builders
# ----------------------------------------------------------------------


def _anchor_of(module: ModuleContext) -> str:
    """The path prefix up to the ``repro`` package dir, or ``""``."""
    parts = list(PurePosixPath(module.rel_path).parts)
    if "repro" in parts:
        cut = len(parts) - 1 - parts[::-1].index("repro")
        return "/".join(parts[: cut + 1])
    return ""


def _dotted_module_name(package_path: str, anchored: bool) -> str:
    """``core/kernel.py`` -> ``repro.core.kernel`` (anchored modules)."""
    parts = package_path.split("/")
    leaf = parts[-1]
    if leaf.endswith(".py"):
        leaf = leaf[:-3]
    parts = parts[:-1] + ([] if leaf == "__init__" else [leaf])
    if anchored:
        return ".".join(["repro", *parts])
    return ".".join(parts) or leaf


def _collect_imports(
    tree: ast.Module,
    dotted: str,
    is_package: bool,
    out: dict[str, tuple[str, ...]],
) -> None:
    """Record every import binding of a module as alias -> target parts."""
    own = tuple(dotted.split("."))
    package_parts = own if is_package else own[:-1]
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                target = tuple(alias.name.split("."))
                out[alias.asname or target[0]] = (
                    target if alias.asname else target[:1]
                )
        elif isinstance(node, ast.ImportFrom):
            if node.level:
                base = package_parts
                # level=1 is the current package; each extra level pops.
                for _ in range(node.level - 1):
                    base = base[:-1]
                prefix = base + (
                    tuple(node.module.split(".")) if node.module else ()
                )
            else:
                prefix = tuple(node.module.split(".")) if node.module else ()
            for alias in node.names:
                if alias.name == "*":
                    continue
                out[alias.asname or alias.name] = prefix + (alias.name,)


def _function_info(
    node: _FunctionNode, module: ModuleInfo, class_name: str | None
) -> FunctionInfo:
    """Build the signature record of one function or method."""
    args = node.args
    names = [a.arg for a in args.posonlyargs + args.args]
    annotations: dict[str, tuple[str, ...]] = {}
    for arg in args.posonlyargs + args.args + args.kwonlyargs:
        if arg.annotation is not None:
            parts = _annotation_parts(arg.annotation)
            if parts:
                annotations[arg.arg] = parts
    decorators = tuple(
        ".".join(parts)
        for dec in node.decorator_list
        if (parts := dotted_parts(dec if not isinstance(dec, ast.Call) else dec.func))
    )
    is_static = "staticmethod" in decorators
    if class_name is not None and not is_static and names:
        names = names[1:]
    qualname = f"{class_name}.{node.name}" if class_name else node.name
    return FunctionInfo(
        name=node.name,
        qualname=qualname,
        module=module,
        node=node,
        class_name=class_name,
        params=tuple(names),
        kwonly=tuple(a.arg for a in args.kwonlyargs),
        n_defaults=len(args.defaults),
        kwonly_defaults=tuple(
            a.arg
            for a, d in zip(args.kwonlyargs, args.kw_defaults)
            if d is not None
        ),
        has_vararg=args.vararg is not None,
        has_kwarg=args.kwarg is not None,
        decorators=decorators,
        annotations=annotations,
    )


def _annotation_parts(node: ast.expr) -> tuple[str, ...]:
    """Dotted parts of a simple annotation; strings and quoted names too."""
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip().strip("\"'")
        if text.replace(".", "").replace("_", "").isalnum():
            return tuple(text.split("."))
        return ()
    if isinstance(node, ast.Subscript):
        return ()
    return dotted_parts(node)


def _class_info(node: ast.ClassDef, module: ModuleInfo) -> ClassInfo:
    """Build the member inventory of one class."""
    methods: dict[str, FunctionInfo] = {}
    properties: set[str] = set()
    slots: set[str] = set()
    class_attrs: set[str] = set()
    instance_attrs: set[str] = set()
    for item in node.body:
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
            fn = _function_info(item, module, class_name=node.name)
            methods[item.name] = fn
            names = {d.rsplit(".", 1)[-1] for d in fn.decorators}
            if "property" in names or "cached_property" in names or "setter" in names:
                properties.add(item.name)
            for inner in ast.walk(item):
                if (
                    isinstance(inner, (ast.Assign, ast.AnnAssign, ast.AugAssign))
                ):
                    targets = (
                        inner.targets
                        if isinstance(inner, ast.Assign)
                        else [inner.target]
                    )
                    for target in targets:
                        if (
                            isinstance(target, ast.Attribute)
                            and isinstance(target.value, ast.Name)
                            and target.value.id == "self"
                        ):
                            instance_attrs.add(target.attr)
        elif isinstance(item, ast.AnnAssign) and isinstance(item.target, ast.Name):
            class_attrs.add(item.target.id)
        elif isinstance(item, ast.Assign):
            for target in item.targets:
                if isinstance(target, ast.Name):
                    class_attrs.add(target.id)
                    if target.id == "__slots__":
                        slots |= _literal_strings(item.value)
    bases = tuple(p for b in node.bases if (p := dotted_parts(b)))
    is_protocol = any(p[-1] == "Protocol" for p in bases)
    return ClassInfo(
        name=node.name,
        module=module,
        node=node,
        bases=bases,
        methods=methods,
        properties=frozenset(properties),
        slots=frozenset(slots),
        class_attrs=frozenset(class_attrs),
        instance_attrs=frozenset(instance_attrs),
        is_protocol=is_protocol,
    )


def _literal_strings(node: ast.expr) -> set[str]:
    """String elements of a literal tuple/list/set, else empty."""
    if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
        return {
            e.value
            for e in node.elts
            if isinstance(e, ast.Constant) and isinstance(e.value, str)
        }
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return {node.value}
    return set()


# ----------------------------------------------------------------------
# Call-site linking
# ----------------------------------------------------------------------


def _link_function(package: PackageIndex, fn: FunctionInfo) -> None:
    """Populate ``fn.calls`` with resolved call sites."""
    module = fn.module
    enclosing = (
        module.classes.get(fn.class_name) if fn.class_name is not None else None
    )
    local_types = _local_types(package, fn, enclosing)
    body: Sequence[ast.stmt]
    if isinstance(fn.node, ast.Module):
        # Module body: skip statements owned by indexed defs, but keep
        # class bodies (default expressions run at import time).
        body = [
            stmt
            for stmt in fn.node.body
            if not isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
    else:
        body = fn.node.body  # type: ignore[attr-defined]
    calls: list[CallSite] = []
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.ClassDef):
                continue
            if not isinstance(node, ast.Call):
                continue
            target = _resolve_call(package, module, enclosing, local_types, node)
            refs: list[tuple[int | None, FunctionInfo]] = []
            for position, arg in enumerate(node.args):
                ref = _resolve_value_ref(package, module, enclosing, arg)
                if ref is not None:
                    refs.append((position, ref))
            for keyword in node.keywords:
                ref = _resolve_value_ref(package, module, enclosing, keyword.value)
                if ref is not None:
                    refs.append((None, ref))
            calls.append(CallSite(node=node, target=target, ref_args=tuple(refs)))
    fn.calls = calls


def _local_types(
    package: PackageIndex, fn: FunctionInfo, enclosing: ClassInfo | None
) -> dict[str, ClassInfo]:
    """Map local names to known classes (annotations + constructor assigns)."""
    types: dict[str, ClassInfo] = {}
    module = fn.module
    if enclosing is not None:
        types["self"] = enclosing
        types["cls"] = enclosing
    for name, parts in fn.annotations.items():
        resolved = package.resolve_in_module(module, parts)
        if isinstance(resolved, ClassInfo):
            types[name] = resolved
    if isinstance(fn.node, ast.Module):
        return types
    for node in ast.walk(fn.node):
        if isinstance(node, ast.AnnAssign) and isinstance(node.target, ast.Name):
            parts = _annotation_parts(node.annotation)
            resolved = package.resolve_in_module(module, parts) if parts else None
            if isinstance(resolved, ClassInfo):
                types[node.target.id] = resolved
        elif isinstance(node, ast.Assign) and isinstance(node.value, ast.Call):
            parts = dotted_parts(node.value.func)
            if not parts:
                continue
            resolved = package.resolve_in_module(module, parts[:1])
            cls: ClassInfo | None = None
            if isinstance(resolved, ClassInfo):
                # ``x = C(...)`` or ``x = C.build(...)`` (classmethods
                # conventionally return their own class here).
                cls = resolved if len(parts) <= 2 else None
            if cls is not None:
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        types[target.id] = cls
    return types


def _resolve_call(
    package: PackageIndex,
    module: ModuleInfo,
    enclosing: ClassInfo | None,
    local_types: dict[str, ClassInfo],
    node: ast.Call,
) -> Symbol | None:
    """Resolve one call expression to a known function or class."""
    func = node.func
    parts = dotted_parts(func)
    if parts:
        head = parts[0]
        if head in local_types and len(parts) == 2:
            method = package.lookup_method(local_types[head], parts[1])
            if method is not None:
                return method
        resolved = package.resolve_in_module(module, parts)
        if resolved is not None:
            return resolved
        return None
    if isinstance(func, ast.Attribute):
        # Non-plain chain (``factory().Class.method(...)``): fall back to
        # a unique bare class name directly under the attribute.
        inner = func.value
        if isinstance(inner, ast.Attribute):
            cls = package.resolve_class_name(inner.attr)
            if cls is not None:
                return package.lookup_method(cls, func.attr)
    return None


def _resolve_value_ref(
    package: PackageIndex,
    module: ModuleInfo,
    enclosing: ClassInfo | None,
    node: ast.expr,
) -> FunctionInfo | None:
    """A function passed *as a value* (worker target), when resolvable."""
    if not isinstance(node, (ast.Name, ast.Attribute)):
        return None
    parts = dotted_parts(node)
    if not parts:
        return None
    if parts[0] in ("self", "cls") and enclosing is not None and len(parts) == 2:
        return package.lookup_method(enclosing, parts[1])
    resolved = package.resolve_in_module(module, parts)
    if isinstance(resolved, FunctionInfo):
        return resolved
    return None
