"""Interprocedural nondeterminism-taint analysis over the project index.

The determinism guarantee is interprocedural: a ``time.time()`` read is
harmless until its value — three helpers later — lands in a checkpoint
record, the serialize envelope, the ``.irgs`` writer, the reduce, or an
advisory-bound broadcast.  This pass tracks exactly that journey:

* **Sources** are calls that yield run-to-run entropy (wall clocks,
  ``random``, filesystem listing order, process identity, ``id()``)
  and iteration over unordered ``set`` expressions, seeded only inside
  the determinism-critical module prefixes (:data:`SEEDED_PREFIXES`).
* **Propagation** is a flow-insensitive, summary-based abstract
  interpretation: every function gets a summary (which parameters flow
  to which sinks, what its return value carries), computed to a
  fixpoint over the call graph.  Unresolved calls conservatively pass
  taint through (``round(time.time(), 3)`` stays tainted); resolved
  calls map arguments onto parameter summaries, so taint crosses
  module boundaries with a per-edge witness.
* **Sinks** are the determinism-critical surfaces named in
  :data:`SINKS`.  A source token that reaches one becomes a
  :class:`TaintFlow` carrying the full witness path — every function
  boundary the value crossed, with file and line — which FRM009
  renders into the finding message.

Witness trails are capped (:data:`MAX_TRAIL`) and cycle-guarded, which
also bounds the abstract domain and guarantees the fixpoint terminates.
Everything is iterated in sorted order so findings are deterministic.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Union

from .project import (
    MODULE_BODY,
    CallSite,
    ClassInfo,
    FunctionInfo,
    PackageIndex,
    dotted_parts,
)

__all__ = [
    "MAX_TRAIL",
    "SEEDED_PREFIXES",
    "SINKS",
    "SourceTaint",
    "SinkHit",
    "TaintFlow",
    "TaintAnalysis",
    "source_label",
    "unordered_iter_reason",
]

#: Package-path prefixes where nondeterminism sources are seeded.  A
#: wall-clock read in an experiment script is fine; the same call in the
#: mining core, a baseline, an extension, the observability layer or the
#: chaos harness starts a taint.
SEEDED_PREFIXES: tuple[str, ...] = (
    "core/",
    "baselines/",
    "extensions/",
    "data/",
    "obs/",
    "testing/",
)

#: Determinism-critical sinks: ``(module package path, qualname)`` ->
#: human label.  Classes match their constructor calls.  Note that
#: ``canonical_json`` is deliberately *not* a sink: it is a generic
#: serialization helper shared with the run log, which timestamps its
#: records by design — the critical surfaces are the writers and
#: records built on top of it.
SINKS: dict[tuple[str, str], str] = {
    ("core/serialize.py", "save_rule_groups"): ".irgs writer save_rule_groups()",
    ("core/serialize.py", "save_checkpoint"): "checkpoint envelope save_checkpoint()",
    ("core/serialize.py", "save_checkpoint_body"): (
        "checkpoint envelope save_checkpoint_body()"
    ),
    ("core/checkpoint.py", "TaskRecord"): "checkpoint record TaskRecord",
    ("core/checkpoint.py", "CheckpointState"): "checkpoint record CheckpointState",
    ("core/checkpoint.py", "run_fingerprint"): "checkpoint run_fingerprint()",
    ("core/checkpoint.py", "Checkpointer.record"): (
        "checkpoint writer Checkpointer.record()"
    ),
    ("core/enumeration.py", "merge_counters"): (
        "deterministic reduce merge_counters()"
    ),
    ("core/parallel.py", "AdvisoryBounds"): "advisory-bound broadcast AdvisoryBounds",
    ("core/parallel.py", "AdvisoryBounds.extend"): (
        "advisory-bound broadcast AdvisoryBounds.extend()"
    ),
}

#: Maximum witness-trail length; also bounds the abstract domain.
MAX_TRAIL = 12

#: Maximum source tokens tracked per abstract value (smallest kept, so
#: truncation is deterministic).
MAX_TOKENS = 8


@dataclass(frozen=True, slots=True, order=True)
class SourceTaint:
    """A nondeterminism source observed at a location, with its trail.

    Attributes:
        label: what the source is (``time.time()``).
        path: report path of the module holding the source.
        module_key: package path of that module.
        line: source line of the entropy read.
        trail: function-boundary waypoints (``display:line``) crossed
            since the source, oldest first.
    """

    label: str
    path: str
    module_key: str
    line: int
    trail: tuple[str, ...] = ()


@dataclass(frozen=True, slots=True, order=True)
class _ParamTaint:
    """Symbolic taint of the enclosing function's ``index``-th parameter."""

    index: int


@dataclass(frozen=True, slots=True, order=True)
class _FieldTaint:
    """Taint confined to one named field of a constructed object.

    Produced when a resolved constructor call receives a tainted
    *keyword* argument: the object as a whole carries the taint, but an
    attribute read of a different field projects it away.  This is the
    field-sensitivity that keeps ``result.groups`` clean when only
    ``result.elapsed_seconds`` holds a clock value.  Passing the whole
    object into a sink conservatively unwraps every field.
    """

    attr: str
    inner: SourceTaint


Token = Union[SourceTaint, _ParamTaint, _FieldTaint]


@dataclass(frozen=True, slots=True, order=True)
class SinkHit:
    """A sink reachable from a parameter, with the trail to get there."""

    label: str
    module_key: str
    line: int
    trail: tuple[str, ...] = ()


@dataclass(frozen=True, slots=True, order=True)
class TaintFlow:
    """One complete source-to-sink witness (the FRM009 payload)."""

    source: SourceTaint
    sink: SinkHit

    def witness(self) -> str:
        """The rendered witness path for the finding message."""
        hops = [f"{self.source.label} at {self.source.module_key}:{self.source.line}"]
        hops.extend(self.source.trail)
        hops.extend(self.sink.trail)
        hops.append(
            f"{self.sink.label} at {self.sink.module_key}:{self.sink.line}"
        )
        return " -> ".join(hops)


@dataclass(slots=True)
class _Summary:
    """Fixpoint state of one function."""

    ret: frozenset[Token] = frozenset()
    param_sinks: tuple[frozenset[SinkHit], ...] = ()


_EMPTY: frozenset[Token] = frozenset()


def unordered_iter_reason(expr: ast.expr) -> str | None:
    """Why iterating ``expr`` has no deterministic order, or ``None``."""
    if isinstance(expr, ast.Set):
        return "iteration over a set literal"
    if isinstance(expr, ast.SetComp):
        return "iteration over a set comprehension"
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return f"iteration over {func.id}(...)"
    return None


#: Clock reads.  Unlike FRM002, the *monotonic* clocks are sources too:
#: reading one for a budget is fine, but the moment the value itself
#: lands in a determinism-critical sink it is run-to-run entropy like
#: any other.
_WALL_CLOCK = frozenset(
    {"time", "time_ns", "monotonic", "monotonic_ns", "perf_counter", "perf_counter_ns"}
)
_DATETIME = frozenset({"now", "utcnow", "today"})
_OS = frozenset({"getpid", "getppid", "urandom", "listdir"})
_UUID = frozenset({"uuid1", "uuid4"})
_LISTING_ATTRS = frozenset({"iterdir", "rglob"})


def source_label(node: ast.Call) -> str | None:
    """The entropy-source label of a call, or ``None`` if deterministic."""
    func = node.func
    if isinstance(func, ast.Name) and func.id == "id":
        return "id()"
    parts = dotted_parts(func)
    if isinstance(func, ast.Attribute) and func.attr in _LISTING_ATTRS:
        return f".{func.attr}() filesystem listing order"
    if len(parts) < 2:
        return None
    head, tail = parts[0], parts[-1]
    has_args = bool(node.args or node.keywords)
    if head == "random":
        if tail in ("Random", "seed") and has_args:
            return None
        return f"random.{tail}()"
    if head == "time" and tail in _WALL_CLOCK:
        return f"time.{tail}()"
    if tail in _DATETIME and parts[-2] in ("datetime", "date"):
        return f"{'.'.join(parts[-2:])}()"
    if head == "os" and tail in _OS:
        return f"os.{tail}()"
    if head == "glob" and tail in ("glob", "iglob"):
        return f"glob.{tail}() listing order"
    if head == "uuid" and tail in _UUID:
        return f"uuid.{tail}()"
    return None


class TaintAnalysis:
    """Run the interprocedural taint pass over one package.

    Args:
        package: the indexed package instance.
        seeded_prefixes: package-path prefixes where sources seed.
        sinks: the sink catalogue (defaults to :data:`SINKS`).
    """

    def __init__(
        self,
        package: PackageIndex,
        seeded_prefixes: tuple[str, ...] = SEEDED_PREFIXES,
        sinks: dict[tuple[str, str], str] | None = None,
    ) -> None:
        self.package = package
        self.seeded_prefixes = seeded_prefixes
        self.sinks = SINKS if sinks is None else sinks
        self.summaries: dict[str, _Summary] = {}
        self.flows: set[TaintFlow] = set()

    # ------------------------------------------------------------------

    def run(self) -> list[TaintFlow]:
        """Fixpoint the summaries, then collect source-to-sink flows."""
        functions = self.package.sorted_functions()
        for _ in range(20):
            changed = False
            for fn in functions:
                summary = self._interpret(fn, emit=False)
                if summary != self.summaries.get(fn.display):
                    self.summaries[fn.display] = summary
                    changed = True
            if not changed:
                break
        for fn in functions:
            self._interpret(fn, emit=True)
        return sorted(self.flows)

    # ------------------------------------------------------------------

    def _seeded(self, fn: FunctionInfo) -> bool:
        key = fn.module.key
        return any(key.startswith(prefix) for prefix in self.seeded_prefixes)

    def _sink_label(self, target: FunctionInfo | ClassInfo | None) -> str | None:
        if target is None:
            return None
        qualname = target.qualname if isinstance(target, FunctionInfo) else target.name
        return self.sinks.get((target.module.key, qualname))

    # ------------------------------------------------------------------
    # Abstract interpretation of one function
    # ------------------------------------------------------------------

    def _interpret(self, fn: FunctionInfo, emit: bool) -> _Summary:
        state = _FunctionState(self, fn, emit)
        state.run()
        return _Summary(
            ret=state.cap(state.ret),
            param_sinks=tuple(
                frozenset(hits) for hits in state.param_sinks
            ),
        )


class _FunctionState:
    """Mutable interpretation state for one function body."""

    def __init__(self, analysis: TaintAnalysis, fn: FunctionInfo, emit: bool):
        self.analysis = analysis
        self.fn = fn
        self.emit = emit
        self.seeded = analysis._seeded(fn)
        self.env: dict[str, set[Token]] = {}
        self.ret: set[Token] = set()
        n_params = len(fn.params) + len(fn.kwonly)
        self.param_sinks: list[set[SinkHit]] = [set() for _ in range(n_params)]
        for index, name in enumerate((*fn.params, *fn.kwonly)):
            self.env[name] = {_ParamTaint(index)}
        self.callmap: dict[int, CallSite] = {
            id(site.node): site for site in fn.calls
        }

    # -- helpers --------------------------------------------------------

    def cap(self, tokens: set[Token]) -> frozenset[Token]:
        """Deterministically bound a token set to :data:`MAX_TOKENS`."""
        if len(tokens) <= MAX_TOKENS:
            return frozenset(tokens)
        params = sorted(t for t in tokens if isinstance(t, _ParamTaint))
        sources = sorted(t for t in tokens if isinstance(t, SourceTaint))
        fields = sorted(t for t in tokens if isinstance(t, _FieldTaint))
        kept: list[Token] = [*params[:MAX_TOKENS], *sources, *fields]
        return frozenset(kept[:MAX_TOKENS])

    def _hop(self, waypoint: str, trail: tuple[str, ...]) -> tuple[str, ...]:
        if waypoint in trail or len(trail) >= MAX_TRAIL:
            return trail
        return trail + (waypoint,)

    def _extend(self, token: SourceTaint, waypoint: str) -> SourceTaint:
        trail = self._hop(waypoint, token.trail)
        if trail is token.trail:
            return token
        return SourceTaint(token.label, token.path, token.module_key, token.line, trail)

    def _extend_any(self, token: Token, waypoint: str) -> Token:
        if isinstance(token, SourceTaint):
            return self._extend(token, waypoint)
        if isinstance(token, _FieldTaint):
            return _FieldTaint(token.attr, self._extend(token.inner, waypoint))
        return token

    # -- statement walk -------------------------------------------------

    def run(self) -> None:
        """Interpret the body twice (loop-carried flows need pass two)."""
        node = self.fn.node
        if isinstance(node, ast.Module):
            body = [
                stmt
                for stmt in node.body
                if not isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)
                )
            ]
        else:
            body = node.body  # type: ignore[attr-defined]
        for _ in range(2):
            for stmt in body:
                self._stmt(stmt)

    def _stmt(self, stmt: ast.stmt) -> None:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            return
        if isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.ret |= self._eval(stmt.value)
            return
        if isinstance(stmt, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
            value = stmt.value
            tokens = self._eval(value) if value is not None else set()
            targets = (
                stmt.targets if isinstance(stmt, ast.Assign) else [stmt.target]
            )
            for target in targets:
                self._assign(target, tokens)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            tokens = self._eval(stmt.iter)
            reason = unordered_iter_reason(stmt.iter)
            if reason is not None and self.seeded:
                tokens = tokens | {
                    SourceTaint(
                        reason,
                        self.fn.module.context.rel_path,
                        self.fn.module.key,
                        stmt.iter.lineno,
                    )
                }
            self._assign(stmt.target, tokens)
            for inner in stmt.body + stmt.orelse:
                self._stmt(inner)
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                tokens = self._eval(item.context_expr)
                if item.optional_vars is not None:
                    self._assign(item.optional_vars, tokens)
            for inner in stmt.body:
                self._stmt(inner)
            return
        if isinstance(stmt, ast.Expr):
            self._eval(stmt.value)
            return
        if isinstance(stmt, (ast.If, ast.While)):
            self._eval(stmt.test)
            for inner in stmt.body + stmt.orelse:
                self._stmt(inner)
            return
        if isinstance(stmt, ast.Try):
            for inner in (
                stmt.body + stmt.orelse + stmt.finalbody
            ):
                self._stmt(inner)
            for handler in stmt.handlers:
                for inner in handler.body:
                    self._stmt(inner)
            return
        if isinstance(stmt, (ast.Raise, ast.Assert)):
            # Error paths do not reach the serialized output.
            return
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.stmt):
                self._stmt(child)
            elif isinstance(child, ast.expr):
                self._eval(child)

    def _assign(self, target: ast.expr, tokens: set[Token]) -> None:
        if isinstance(target, ast.Name):
            self.env.setdefault(target.id, set()).update(tokens)
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._assign(element, tokens)
        elif isinstance(target, ast.Starred):
            self._assign(target.value, tokens)
        elif isinstance(target, (ast.Attribute, ast.Subscript)):
            # ``a.b = tainted`` / ``a[k] = tainted`` taints the carrier.
            base = target.value
            while isinstance(base, (ast.Attribute, ast.Subscript)):
                base = base.value
            if isinstance(base, ast.Name):
                self.env.setdefault(base.id, set()).update(tokens)

    # -- expression evaluation ------------------------------------------

    def _eval(self, node: ast.expr) -> set[Token]:
        if isinstance(node, ast.Name):
            return set(self.env.get(node.id, ()))
        if isinstance(node, ast.Call):
            return self._eval_call(node)
        if isinstance(node, ast.Attribute):
            # Field projection: reading ``.groups`` off an object whose
            # taint is confined to ``.elapsed_seconds`` stays clean.
            tokens = self._eval(node.value)
            projected: set[Token] = set()
            for token in tokens:
                if isinstance(token, _FieldTaint):
                    if token.attr == node.attr:
                        projected.add(token.inner)
                else:
                    projected.add(token)
            return projected
        if isinstance(node, ast.Subscript):
            return self._eval(node.value) | self._eval_slice(node.slice)
        if isinstance(node, (ast.BinOp,)):
            return self._eval(node.left) | self._eval(node.right)
        if isinstance(node, ast.BoolOp):
            out: set[Token] = set()
            for value in node.values:
                out |= self._eval(value)
            return out
        if isinstance(node, ast.UnaryOp):
            return self._eval(node.operand)
        if isinstance(node, ast.Compare):
            out = self._eval(node.left)
            for comparator in node.comparators:
                out |= self._eval(comparator)
            return out
        if isinstance(node, ast.IfExp):
            return self._eval(node.body) | self._eval(node.orelse)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            out = set()
            for element in node.elts:
                out |= self._eval(element)
            return out
        if isinstance(node, ast.Dict):
            out = set()
            for key in node.keys:
                if key is not None:
                    out |= self._eval(key)
            for value in node.values:
                out |= self._eval(value)
            return out
        if isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp)):
            return self._eval_comp(node.elt, node.generators)
        if isinstance(node, ast.DictComp):
            return self._eval_comp(node.key, node.generators) | self._eval_comp(
                node.value, node.generators
            )
        if isinstance(node, ast.JoinedStr):
            out = set()
            for value in node.values:
                if isinstance(value, ast.FormattedValue):
                    out |= self._eval(value.value)
            return out
        if isinstance(node, ast.Starred):
            return self._eval(node.value)
        if isinstance(node, (ast.Await, ast.YieldFrom)):
            inner = node.value
            return self._eval(inner) if inner is not None else set()
        if isinstance(node, ast.Yield):
            if node.value is not None:
                self.ret |= self._eval(node.value)
            return set()
        if isinstance(node, ast.NamedExpr):
            tokens = self._eval(node.value)
            self._assign(node.target, tokens)
            return tokens
        return set()

    def _eval_slice(self, node: ast.expr) -> set[Token]:
        if isinstance(node, ast.Slice):
            out: set[Token] = set()
            for part in (node.lower, node.upper, node.step):
                if part is not None:
                    out |= self._eval(part)
            return out
        return self._eval(node)

    def _eval_comp(
        self, elt: ast.expr, generators: list[ast.comprehension]
    ) -> set[Token]:
        out: set[Token] = set()
        for gen in generators:
            tokens = self._eval(gen.iter)
            reason = unordered_iter_reason(gen.iter)
            if reason is not None and self.seeded:
                tokens = tokens | {
                    SourceTaint(
                        reason,
                        self.fn.module.context.rel_path,
                        self.fn.module.key,
                        gen.iter.lineno,
                    )
                }
            self._assign(gen.target, tokens)
            for cond in gen.ifs:
                self._eval(cond)
        out |= self._eval(elt)
        return out

    # -- calls -----------------------------------------------------------

    def _eval_call(self, node: ast.Call) -> set[Token]:
        analysis = self.analysis
        site = self.callmap.get(id(node))
        arg_tokens = [self._eval(arg) for arg in node.args]
        kw_tokens = {
            kw.arg: self._eval(kw.value) for kw in node.keywords
        }
        receiver: set[Token] = set()
        if isinstance(node.func, ast.Attribute):
            receiver = self._eval(node.func.value)
        result: set[Token] = set()

        label = source_label(node)
        if label is not None and self.seeded:
            result.add(
                SourceTaint(
                    label,
                    self.fn.module.context.rel_path,
                    self.fn.module.key,
                    node.lineno,
                )
            )

        target = site.target if site is not None else None
        sink = analysis._sink_label(target)
        if sink is not None:
            hit = SinkHit(sink, self.fn.module.key, node.lineno)
            all_args: set[Token] = set().union(*arg_tokens, *kw_tokens.values()) if (
                arg_tokens or kw_tokens
            ) else set()
            self._record_sink(all_args, hit)

        if isinstance(target, FunctionInfo):
            result |= self._apply_summary(target, node, arg_tokens, kw_tokens)
            result |= receiver
        elif isinstance(target, ClassInfo):
            init = analysis.package.lookup_method(target, "__init__")
            if init is not None:
                self._apply_summary(init, node, arg_tokens, kw_tokens)
            for tokens in arg_tokens:
                result |= tokens
            for name, tokens in kw_tokens.items():
                # Keyword constructor arguments taint only their field.
                for token in tokens:
                    if name is not None and isinstance(token, SourceTaint):
                        result.add(_FieldTaint(name, token))
                    else:
                        result.add(token)
        else:
            # Worker-target shape: unresolved dispatcher invoked with a
            # known function first (``executor.submit(fn, *args)``).
            dispatched = False
            if site is not None:
                for position, ref in site.ref_args:
                    if position == 0:
                        result |= self._apply_summary(
                            ref, node, arg_tokens[1:], kw_tokens
                        )
                        dispatched = True
            if not dispatched:
                for tokens in arg_tokens:
                    result |= tokens
                for tokens in kw_tokens.values():
                    result |= tokens
                result |= receiver
        return result

    def _record_sink(self, tokens: set[Token], hit: SinkHit) -> None:
        # A whole object reaching a sink conservatively unwraps every
        # field-confined taint it carries.
        unwrapped = {
            t.inner if isinstance(t, _FieldTaint) else t for t in tokens
        }
        ordered = sorted(
            unwrapped, key=lambda t: (isinstance(t, SourceTaint), t)
        )
        for token in ordered:
            if isinstance(token, SourceTaint):
                if self.emit:
                    self.analysis.flows.add(TaintFlow(source=token, sink=hit))
            elif isinstance(token, _ParamTaint):
                if token.index < len(self.param_sinks):
                    self.param_sinks[token.index].add(hit)

    def _apply_summary(
        self,
        callee: FunctionInfo,
        node: ast.Call,
        arg_tokens: list[set[Token]],
        kw_tokens: dict[str | None, set[Token]],
    ) -> set[Token]:
        """Map actuals through ``callee``'s summary; returns result taint."""
        summary = self.analysis.summaries.get(callee.display)
        if summary is None:
            return set()
        waypoint = f"{self.fn.display}:{node.lineno}"
        # Actual tokens by callee parameter index.
        names = (*callee.params, *callee.kwonly)
        actuals: dict[int, set[Token]] = {}
        for position, tokens in enumerate(arg_tokens):
            if position < len(callee.params):
                actuals[position] = tokens
        for name, tokens in kw_tokens.items():
            if name is None:
                continue
            if name in names:
                actuals[names.index(name)] = (
                    actuals.get(names.index(name), set()) | tokens
                )
        result: set[Token] = set()
        for token in summary.ret:
            if isinstance(token, (SourceTaint, _FieldTaint)):
                result.add(self._extend_any(token, waypoint))
            elif token.index in actuals:
                for actual in actuals[token.index]:
                    result.add(self._extend_any(actual, waypoint))
        for index, hits in enumerate(summary.param_sinks):
            if not hits or index not in actuals:
                continue
            for hit in sorted(hits):
                shifted = SinkHit(
                    hit.label,
                    hit.module_key,
                    hit.line,
                    self._hop(f"{callee.display}", hit.trail),
                )
                self._record_sink(actuals[index], shifted)
        return result
