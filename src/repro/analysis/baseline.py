"""Baseline files: grandfathered findings that do not fail the build.

A baseline is a committed JSON file listing findings by *fingerprint*
(path + rule + message, no line numbers, so unrelated edits do not
invalidate it).  ``farmer lint --update-baseline`` rewrites it; a lint
run then reports only findings beyond the baselined multiset.  The goal
state is an empty baseline — the shipped one is empty for the whole
tree — but the mechanism lets a new rule land before every legacy
violation is fixed.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import Sequence

from ..errors import DataError
from .base import Finding

__all__ = [
    "BASELINE_VERSION",
    "DEFAULT_BASELINE_NAME",
    "load_baseline",
    "save_baseline",
    "partition",
]

#: Schema version written to and required from baseline files.
BASELINE_VERSION = 1

#: File name probed in the working directory when ``--baseline`` is not
#: given.
DEFAULT_BASELINE_NAME = ".farmer-lint-baseline.json"


def _fingerprint(path: str, rule: str, message: str) -> str:
    return f"{path}::{rule}::{message}"


def load_baseline(path: Path | str) -> Counter[str]:
    """Load a baseline file into a fingerprint multiset.

    Raises:
        DataError: when the file is missing, malformed JSON, or has an
            unknown schema version.
    """
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except FileNotFoundError as exc:
        raise DataError(f"baseline file not found: {path}") from exc
    except json.JSONDecodeError as exc:
        raise DataError(f"{path}: not valid JSON ({exc})") from exc
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise DataError(
            f"{path}: expected a farmer-lint baseline with "
            f"version={BASELINE_VERSION}"
        )
    counter: Counter[str] = Counter()
    for entry in payload.get("findings", []):
        try:
            counter[
                _fingerprint(entry["path"], entry["rule"], entry["message"])
            ] += 1
        except (TypeError, KeyError) as exc:
            raise DataError(
                f"{path}: baseline entry missing path/rule/message: {entry!r}"
            ) from exc
    return counter


def save_baseline(path: Path | str, findings: Sequence[Finding]) -> None:
    """Write ``findings`` as the new baseline (sorted, stable output)."""
    entries = [
        {"path": f.path, "rule": f.rule_id, "message": f.message}
        for f in sorted(findings, key=lambda f: f.sort_key)
    ]
    payload = {"version": BASELINE_VERSION, "findings": entries}
    Path(path).write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )


def partition(
    findings: Sequence[Finding], baseline: Counter[str]
) -> tuple[list[Finding], list[Finding]]:
    """Split findings into ``(new, baselined)`` against a baseline.

    Matching consumes baseline entries with multiplicity, so two
    identical violations with one baselined occurrence report one new
    finding.
    """
    remaining = Counter(baseline)
    new: list[Finding] = []
    grandfathered: list[Finding] = []
    for finding in findings:
        if remaining[finding.fingerprint] > 0:
            remaining[finding.fingerprint] -= 1
            grandfathered.append(finding)
        else:
            new.append(finding)
    return new, grandfathered
