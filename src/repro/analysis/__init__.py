"""farmer-lint: AST-based invariant checks for the FARMER reproduction.

The sharded miner (:mod:`repro.core.parallel`) is bit-identical to the
serial run only while the core enumeration code honours contracts that
ordinary tests cannot see until they break at runtime: iteration order
must never leak from unordered containers into mined output, worker
state must stay picklable, popcounts must go through
:mod:`repro.core.bitset`, failures must surface as
:mod:`repro.errors` types, and checkpointed state must persist through
:mod:`repro.core.serialize`.  This package enforces those contracts
statically, as a CI gate and a ``farmer lint`` subcommand.

Layout:

Per-module walks catch local violations; the whole-program phase
(:mod:`~repro.analysis.project` + :mod:`~repro.analysis.dataflow`)
builds a symbol table and over-approximate call graph over every linted
module, then tracks nondeterminism taint across call boundaries
(FRM009), checks registered engines structurally against the
``CondTableProtocol`` seam (FRM010), and inherits hot-path purity
bottom-up over the call graph (FRM011).

Layout:

* :mod:`~repro.analysis.base` — :class:`Finding`, :class:`Rule`,
  :class:`ModuleContext` and suppression parsing;
* :mod:`~repro.analysis.engine` — file discovery, AST dispatch, the
  whole-program phase, and the :class:`LintResult` aggregation;
* :mod:`~repro.analysis.project` — symbol table + call graph index;
* :mod:`~repro.analysis.dataflow` — interprocedural taint machinery;
* :mod:`~repro.analysis.cache` — the mtime-keyed AST/findings cache;
* :mod:`~repro.analysis.baseline` — the committed grandfather file;
* :mod:`~repro.analysis.reporters` — text, JSON and SARIF output;
* :mod:`~repro.analysis.rules` — the FRM001..FRM012 rule set;
* :mod:`~repro.analysis.cli` — the ``farmer lint`` entry point.

See ``docs/static-analysis.md`` for the rule catalogue, the per-line
suppression syntax (``# farmer-lint: disable=FRM00x``) and the baseline
workflow.
"""

from __future__ import annotations

from .base import Finding, ModuleContext, Rule
from .baseline import load_baseline, save_baseline
from .cache import LintCache
from .engine import Engine, LintResult
from .project import PackageIndex, ProjectIndex
from .reporters import render_json, render_sarif, render_text
from .rules import ALL_RULES, RULES_BY_ID, default_rules

__all__ = [
    "Finding",
    "ModuleContext",
    "Rule",
    "Engine",
    "LintResult",
    "LintCache",
    "PackageIndex",
    "ProjectIndex",
    "ALL_RULES",
    "RULES_BY_ID",
    "default_rules",
    "load_baseline",
    "save_baseline",
    "render_text",
    "render_json",
    "render_sarif",
]
