"""The farmer-lint engine: file discovery, AST dispatch, aggregation.

One walk per module: every AST node is offered to the rules that
registered interest in its type, findings are filtered through per-line
suppressions, and the caller subtracts the baseline afterwards
(:func:`repro.analysis.baseline.partition`).  After the per-module
walks, rules that declared ``needs_project`` get a whole-program phase:
the engine builds a :class:`~repro.analysis.project.ProjectIndex` over
every parsed module and lets those rules emit cross-module findings,
which are filtered through the owning module's suppression comments and
test policy exactly like per-module findings.  Discovery order,
dispatch order and the final finding order are all deterministic — the
linter holds itself to the invariants it checks.
"""

from __future__ import annotations

import ast
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from ..errors import DataError
from .base import Finding, ModuleContext, Rule
from .cache import CACHE_VERSION, LintCache

__all__ = ["Engine", "LintResult", "iter_python_files"]


@dataclass
class LintResult:
    """Outcome of one lint run.

    Attributes:
        findings: non-suppressed findings, sorted by location; the
            baseline partition happens downstream.
        n_files: python files parsed.
        n_suppressed: findings silenced by ``# farmer-lint: disable``
            comments.
        baselined: findings matched against the baseline (populated by
            the CLI after :func:`~repro.analysis.baseline.partition`).
    """

    findings: list[Finding] = field(default_factory=list)
    n_files: int = 0
    n_suppressed: int = 0
    baselined: list[Finding] = field(default_factory=list)


def iter_python_files(paths: Sequence[Path]) -> Iterator[Path]:
    """Yield the python files under ``paths`` in deterministic order.

    Directories are walked recursively; hidden directories and
    ``__pycache__`` are skipped.  A path that does not exist raises
    :class:`~repro.errors.DataError` (the CLI turns this into a one-line
    error).
    """
    for path in paths:
        if not path.exists():
            raise DataError(f"no such file or directory: {path}")
        if path.is_file():
            yield path
            continue
        for candidate in sorted(path.rglob("*.py")):
            parts = candidate.relative_to(path).parts
            if any(p == "__pycache__" or p.startswith(".") for p in parts):
                continue
            yield candidate


class Engine:
    """Runs a rule set over a file tree.

    Args:
        rules: rule instances to apply (default: the full FRM set).
        root: directory report paths are made relative to (default:
            the current working directory).
    """

    def __init__(
        self, rules: Sequence[Rule] | None = None, root: Path | None = None
    ) -> None:
        if rules is None:
            from .rules import default_rules

            rules = default_rules()
        self.rules = list(rules)
        self.root = (root or Path.cwd()).resolve()

    # ------------------------------------------------------------------
    # Module-level API
    # ------------------------------------------------------------------

    def parse_module(self, path: Path) -> ModuleContext:
        """Read and parse one file into a :class:`ModuleContext`.

        Raises:
            DataError: when the file is not valid python (the engine
                reports this as a parse failure, not a crash).
        """
        resolved = path.resolve()
        try:
            rel_path = resolved.relative_to(self.root).as_posix()
        except ValueError:
            rel_path = resolved.as_posix()
        source = resolved.read_text(encoding="utf-8")
        try:
            tree = ast.parse(source, filename=str(resolved))
        except SyntaxError as exc:
            raise DataError(
                f"{rel_path}:{exc.lineno or 1}: syntax error: {exc.msg}"
            ) from exc
        return ModuleContext(resolved, rel_path, source, tree)

    def lint_module(self, module: ModuleContext) -> tuple[list[Finding], int]:
        """Apply every applicable rule to one module.

        Returns ``(findings, n_suppressed)`` with findings in source
        order.
        """
        active = [rule for rule in self.rules if rule.applies_to(module)]
        if not active:
            return [], 0
        for rule in active:
            rule.start_module(module)
        raw: list[Finding] = []
        dispatch = [rule for rule in active if rule.node_types]
        if dispatch:
            for node in ast.walk(module.tree):
                for rule in dispatch:
                    if isinstance(node, rule.node_types):
                        raw.extend(rule.visit(node, module))
        for rule in active:
            raw.extend(rule.finish_module(module))
        findings: list[Finding] = []
        n_suppressed = 0
        for finding in raw:
            if module.is_suppressed(finding.rule_id, finding.line):
                n_suppressed += 1
            else:
                findings.append(finding)
        findings.sort(key=lambda f: f.sort_key)
        return findings, n_suppressed

    # ------------------------------------------------------------------
    # Tree-level API
    # ------------------------------------------------------------------

    def cache_signature(self) -> str:
        """Invalidation token for :class:`~repro.analysis.cache.LintCache`.

        Any change to the rule catalogue, interpreter minor version,
        cache format, or report-path root must discard cached findings.
        """
        rules = ",".join(
            f"{rule.rule_id}:{type(rule).__module__}.{type(rule).__qualname__}"
            for rule in self.rules
        )
        version = ".".join(str(part) for part in sys.version_info[:2])
        return f"v{CACHE_VERSION}|py{version}|root={self.root}|{rules}"

    def lint_paths(
        self, paths: Iterable[Path | str], cache: LintCache | None = None
    ) -> LintResult:
        """Lint every python file under ``paths``.

        With a ``cache``, files whose ``(mtime, size)`` match a cached
        entry skip both the parse and the per-module rule walks; the
        whole-program phase always runs (it depends on every module at
        once).  The caller owns :meth:`~repro.analysis.cache.LintCache.save`.
        """
        result = LintResult()
        contexts: list[ModuleContext] = []
        for path in iter_python_files([Path(p) for p in paths]):
            cached = cache.lookup(path.resolve()) if cache is not None else None
            if cached is not None:
                module = ModuleContext(
                    path.resolve(), cached.rel_path, cached.source, cached.tree
                )
                findings = list(cached.findings)
                n_suppressed = cached.n_suppressed
            else:
                module = self.parse_module(path)
                findings, n_suppressed = self.lint_module(module)
                if cache is not None:
                    cache.store(
                        module.path,
                        module.rel_path,
                        module.source,
                        module.tree,
                        tuple(findings),
                        n_suppressed,
                    )
            contexts.append(module)
            result.findings.extend(findings)
            result.n_suppressed += n_suppressed
            result.n_files += 1
        project_findings, n_suppressed = self.lint_project(contexts)
        result.findings.extend(project_findings)
        result.n_suppressed += n_suppressed
        result.findings.sort(key=lambda f: f.sort_key)
        return result

    def lint_project(
        self, contexts: Sequence[ModuleContext]
    ) -> tuple[list[Finding], int]:
        """Run the whole-program phase over the parsed modules.

        Returns ``(findings, n_suppressed)``; findings are filtered
        through the owning module's suppressions and the emitting
        rule's test policy, exactly like per-module findings.
        """
        project_rules = [rule for rule in self.rules if rule.needs_project]
        if not project_rules or not contexts:
            return [], 0
        from .project import ProjectIndex

        project = ProjectIndex.build(contexts)
        by_rel_path = {module.rel_path: module for module in contexts}
        findings: list[Finding] = []
        n_suppressed = 0
        for rule in project_rules:
            rule.start_project(project)
        for rule in project_rules:
            for finding in rule.finish_project(project):
                owner = by_rel_path.get(finding.path)
                if owner is not None:
                    if owner.is_test() and not rule.check_tests:
                        continue
                    if owner.is_suppressed(finding.rule_id, finding.line):
                        n_suppressed += 1
                        continue
                findings.append(finding)
        findings.sort(key=lambda f: f.sort_key)
        return findings, n_suppressed
