"""Finding reporters: human text and machine JSON.

The JSON schema is versioned and covered by the test suite, so CI
tooling can depend on it::

    {
      "version": 1,
      "summary": {"files": N, "findings": N, "baselined": N,
                   "suppressed": N},
      "findings": [
        {"rule": "FRM001", "name": "nondeterministic-iteration",
         "path": "src/repro/core/x.py", "line": 10, "col": 4,
         "message": "..."},
        ...
      ]
    }
"""

from __future__ import annotations

import json

from .engine import LintResult

__all__ = ["JSON_REPORT_VERSION", "render_text", "render_json"]

#: Schema version of the ``--format json`` payload.
JSON_REPORT_VERSION = 1


def render_text(result: LintResult) -> str:
    """One line per finding plus a summary line (pyflakes-style)."""
    lines = [finding.format() for finding in result.findings]
    summary = (
        f"{len(result.findings)} finding"
        f"{'' if len(result.findings) == 1 else 's'} "
        f"in {result.n_files} file{'' if result.n_files == 1 else 's'}"
    )
    extras = []
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if result.n_suppressed:
        extras.append(f"{result.n_suppressed} suppressed")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The versioned JSON report (see the module docstring for schema)."""
    payload = {
        "version": JSON_REPORT_VERSION,
        "summary": {
            "files": result.n_files,
            "findings": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": result.n_suppressed,
        },
        "findings": [
            {
                "rule": finding.rule_id,
                "name": finding.rule_name,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
            }
            for finding in result.findings
        ],
    }
    return json.dumps(payload, indent=2)
