"""Finding reporters: human text, machine JSON, and SARIF 2.1.0.

The JSON schema is versioned and covered by the test suite, so CI
tooling can depend on it::

    {
      "version": 1,
      "summary": {"files": N, "findings": N, "baselined": N,
                   "suppressed": N},
      "findings": [
        {"rule": "FRM001", "name": "nondeterministic-iteration",
         "path": "src/repro/core/x.py", "line": 10, "col": 4,
         "message": "..."},
        ...
      ]
    }
"""

from __future__ import annotations

import json

from .engine import LintResult

__all__ = [
    "JSON_REPORT_VERSION",
    "SARIF_SCHEMA_URI",
    "SARIF_VERSION",
    "render_text",
    "render_json",
    "render_sarif",
]

#: Schema version of the ``--format json`` payload.
JSON_REPORT_VERSION = 1

#: SARIF spec version emitted by :func:`render_sarif`.
SARIF_VERSION = "2.1.0"

#: Canonical schema URI for SARIF 2.1.0 logs.
SARIF_SCHEMA_URI = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: LintResult) -> str:
    """One line per finding plus a summary line (pyflakes-style)."""
    lines = [finding.format() for finding in result.findings]
    summary = (
        f"{len(result.findings)} finding"
        f"{'' if len(result.findings) == 1 else 's'} "
        f"in {result.n_files} file{'' if result.n_files == 1 else 's'}"
    )
    extras = []
    if result.baselined:
        extras.append(f"{len(result.baselined)} baselined")
    if result.n_suppressed:
        extras.append(f"{result.n_suppressed} suppressed")
    if extras:
        summary += f" ({', '.join(extras)})"
    lines.append(summary)
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """The versioned JSON report (see the module docstring for schema)."""
    payload = {
        "version": JSON_REPORT_VERSION,
        "summary": {
            "files": result.n_files,
            "findings": len(result.findings),
            "baselined": len(result.baselined),
            "suppressed": result.n_suppressed,
        },
        "findings": [
            {
                "rule": finding.rule_id,
                "name": finding.rule_name,
                "path": finding.path,
                "line": finding.line,
                "col": finding.col,
                "message": finding.message,
            }
            for finding in result.findings
        ],
    }
    return json.dumps(payload, indent=2)


def render_sarif(result: LintResult) -> str:
    """A SARIF 2.1.0 log of the findings (editor/CI integration).

    One run, one ``farmer-lint`` driver, one result per finding.  The
    rule catalogue in ``tool.driver.rules`` lists every shipped rule
    (not only the violated ones) so ``ruleIndex`` stays meaningful for
    viewers that pre-index it.  Columns are converted to SARIF's
    1-based convention.
    """
    from .. import __version__ as lint_version
    from .rules import ALL_RULES

    rule_index = {rule.rule_id: i for i, rule in enumerate(ALL_RULES)}
    payload = {
        "$schema": SARIF_SCHEMA_URI,
        "version": SARIF_VERSION,
        "runs": [
            {
                "tool": {
                    "driver": {
                        "name": "farmer-lint",
                        "version": lint_version,
                        "informationUri": (
                            "https://example.invalid/farmer-lint"
                        ),
                        "rules": [
                            {
                                "id": rule.rule_id,
                                "name": rule.name,
                                "shortDescription": {
                                    "text": rule.description
                                },
                            }
                            for rule in ALL_RULES
                        ],
                    }
                },
                "results": [
                    {
                        "ruleId": finding.rule_id,
                        "ruleIndex": rule_index.get(finding.rule_id, -1),
                        "level": "error",
                        "message": {"text": finding.message},
                        "locations": [
                            {
                                "physicalLocation": {
                                    "artifactLocation": {
                                        "uri": finding.path,
                                    },
                                    "region": {
                                        "startLine": finding.line,
                                        "startColumn": finding.col + 1,
                                    },
                                }
                            }
                        ],
                    }
                    for finding in result.findings
                ],
            }
        ],
    }
    return json.dumps(payload, indent=2)
