"""Statistical interestingness measures for class-consequent rules.

A rule ``A -> C`` over a dataset with ``n`` rows, of which ``m`` carry the
consequent class ``C``, is fully described (for every measure used in the
paper) by the pair of counts

* ``x = |R(A)|``        — rows containing the antecedent, and
* ``y = |R(A ∪ C)|``    — rows containing the antecedent *and* labelled C,

together with the dataset constants ``(n, m)``.  This module implements
support/confidence/chi-square, the convexity-based chi-square upper bound
of Lemma 3.9, and the additional measures the paper's footnote 3 says can
be "handled similarly": lift, conviction, entropy gain, gini gain and the
correlation coefficient.

The 2x2 contingency table behind the chi-square computation (the paper's
Section 3.2.3)::

                C          not C       total
    A           y          x - y       x
    not A       m - y      n-m-(x-y)   n - x
    total       m          n - m       n
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import DataError

__all__ = [
    "TwoByTwo",
    "confidence",
    "chi_square",
    "chi_square_upper_bound",
    "lift",
    "conviction",
    "entropy_gain",
    "gini_gain",
    "correlation",
    "MEASURES",
]


@dataclass(frozen=True, slots=True)
class TwoByTwo:
    """The 2x2 contingency table of a rule ``A -> C``.

    Attributes:
        x: ``|R(A)|``, rows matching the antecedent.
        y: ``|R(A ∪ C)|``, antecedent rows labelled with the consequent.
        n: total number of rows in the dataset.
        m: number of rows labelled with the consequent.
    """

    x: int
    y: int
    n: int
    m: int

    def __post_init__(self) -> None:
        if not (0 <= self.m <= self.n):
            raise DataError(f"need 0 <= m <= n, got m={self.m} n={self.n}")
        if not (0 <= self.y <= self.x <= self.n):
            raise DataError(
                f"need 0 <= y <= x <= n, got x={self.x} y={self.y} n={self.n}"
            )
        if self.y > self.m:
            raise DataError(f"y={self.y} exceeds class total m={self.m}")
        if self.x - self.y > self.n - self.m:
            raise DataError(
                f"x-y={self.x - self.y} exceeds negative total {self.n - self.m}"
            )

    @property
    def cells(self) -> tuple[int, int, int, int]:
        """Observed cell counts ``(O_AC, O_A¬C, O_¬AC, O_¬A¬C)``."""
        return (
            self.y,
            self.x - self.y,
            self.m - self.y,
            self.n - self.m - (self.x - self.y),
        )


def confidence(x: int, y: int) -> float:
    """Confidence ``y / x`` of a rule.

    Args:
        x: antecedent support ``|R(A)|``.
        y: rule support ``|R(A ∪ C)|``.

    Returns:
        ``y / x``, defined as 0 for an empty antecedent support
        (``x == 0``).
    """
    if x == 0:
        return 0.0
    return y / x


def chi_square(x: int, y: int, n: int, m: int) -> float:
    """Pearson chi-square statistic of the rule's 2x2 contingency table.

    Args:
        x: antecedent support ``|R(A)|``.
        y: rule support ``|R(A ∪ C)|``.
        n: total row count of the dataset.
        m: rows carrying the consequent class.

    Returns:
        The chi-square value.  Degenerate tables — an empty/full
        antecedent column or a single-class dataset — carry no
        association signal and return ``0.0`` (this matches the
        convention ``chi(n, m) = 0`` used in the proof of Lemma 3.9).
    """
    if x == 0 or x == n or m == 0 or m == n:
        return 0.0
    determinant = y * (n - m - x + y) - (x - y) * (m - y)
    return n * determinant * determinant / (x * m * (n - x) * (n - m))


def chi_square_upper_bound(x: int, y: int, n: int, m: int) -> float:
    """Upper bound on chi-square over every rule reachable below a node.

    Implements Lemma 3.9: for any rule ``A' -> C`` with ``A' ⊂ A`` the
    point ``(x', y')`` lies in the parallelogram with vertices
    ``(x, y)``, ``(x - y + m, m)``, ``(n, m)`` and ``(y + n - m, y)``.
    Chi-square is convex over that region and zero at ``(n, m)``, so the
    maximum over the region is attained at one of the other three vertices.

    Args:
        x: antecedent support ``|R(A)|`` at the node.
        y: rule support ``|R(A ∪ C)|`` at the node.
        n: total row count of the dataset.
        m: rows carrying the consequent class.

    Returns:
        The largest chi-square of any rule reachable below the node.
    """
    return max(
        chi_square(x - y + m, m, n, m),
        chi_square(y + n - m, y, n, m),
        chi_square(x, y, n, m),
    )


def lift(x: int, y: int, n: int, m: int) -> float:
    """Lift: confidence relative to the consequent's base rate ``m / n``."""
    if x == 0 or m == 0:
        return 0.0
    return (y / x) / (m / n)


def conviction(x: int, y: int, n: int, m: int) -> float:
    """Conviction ``(1 - m/n) / (1 - conf)``; ``inf`` for exact rules."""
    if x == 0:
        return 0.0
    conf = y / x
    if conf >= 1.0:
        return math.inf
    return (1.0 - m / n) / (1.0 - conf)


def _entropy(p: float) -> float:
    """Binary entropy of probability ``p`` in bits."""
    if p <= 0.0 or p >= 1.0:
        return 0.0
    return -(p * math.log2(p) + (1.0 - p) * math.log2(1.0 - p))


def entropy_gain(x: int, y: int, n: int, m: int) -> float:
    """Information gain of splitting the dataset on antecedent presence."""
    if n == 0:
        return 0.0
    base = _entropy(m / n)
    inside = _entropy(y / x) if x else 0.0
    rest = n - x
    outside = _entropy((m - y) / rest) if rest else 0.0
    return base - (x / n) * inside - (rest / n) * outside


def _gini(p: float) -> float:
    """Gini impurity of a binary distribution with positive rate ``p``."""
    return 2.0 * p * (1.0 - p)


def gini_gain(x: int, y: int, n: int, m: int) -> float:
    """Reduction in gini impurity from splitting on antecedent presence."""
    if n == 0:
        return 0.0
    base = _gini(m / n)
    inside = _gini(y / x) if x else 0.0
    rest = n - x
    outside = _gini((m - y) / rest) if rest else 0.0
    return base - (x / n) * inside - (rest / n) * outside


def correlation(x: int, y: int, n: int, m: int) -> float:
    """Phi (Pearson) correlation between antecedent and consequent.

    Args:
        x: antecedent support ``|R(A)|``.
        y: rule support ``|R(A ∪ C)|``.
        n: total row count of the dataset.
        m: rows carrying the consequent class.

    Returns:
        ``sqrt(chi_square / n)`` with the sign of the association.
    """
    if x == 0 or x == n or m == 0 or m == n:
        return 0.0
    determinant = y * (n - m - x + y) - (x - y) * (m - y)
    return determinant / math.sqrt(x * m * (n - x) * (n - m))


#: Registry of all ``(x, y, n, m) -> float`` measures, used by the CLI and
#: by :mod:`repro.extensions` when ranking rule groups.
MEASURES = {
    "confidence": lambda x, y, n, m: confidence(x, y),
    "chi_square": chi_square,
    "lift": lift,
    "conviction": conviction,
    "entropy_gain": entropy_gain,
    "gini_gain": gini_gain,
    "correlation": correlation,
}
