"""Packed-uint64 bitset arrays: the NumPy columnar engine backend.

:mod:`repro.core.bitset` represents a row set over ``n`` rows as one
arbitrary-precision Python int with bit ``k`` standing for row ``k``.
This module is the vectorized counterpart: the same row set packed into
``w = ceil(n / 64)`` little-endian ``uint64`` words, and a conditional
transposed table of ``k`` item masks packed columnar into one
C-contiguous ``(w + 1, k)`` array (one item per column; the loose
helpers like :func:`pack_masks` use the row-per-mask ``(k, w)``
orientation).  The two representations are exact mirrors —
``pack_mask`` / ``unpack_words`` round-trip through ``int.to_bytes`` /
``int.from_bytes`` with byte order ``"little"``, so word ``k // 64`` bit
``k % 64`` is int bit ``k`` — and the hypothesis suite in
``tests/test_npbitset.py`` pins every array op here against the int-mask
reference.

:class:`NumpyCondTable` implements the
:class:`~repro.core.kernel.CondTableProtocol` seam on this layout and is
what ``engine="numpy"`` (see :data:`repro.core.farmer.ENGINES`) puts
inside every :class:`~repro.core.farmer.NodeState`.  Scalar node state
(row combinations, candidate lists, closures) stays Python ints: only
the per-item table work — extend-and-scan, whole-table Pruning-3 bound
scans — crosses into NumPy, and scan results are converted back to ints
at the table boundary so every consumer of the protocol sees identical
values regardless of engine.

Popcounts are batched through ``np.bitwise_count`` when the installed
NumPy has it (2.0+); older NumPy falls back to a byte lookup table
(:data:`POPCOUNT8`) over the ``uint8`` view of the same words.  Both
paths are exported so the property suite can pin them against each other
and against ``int.bit_count``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "HAS_BITWISE_COUNT",
    "POPCOUNT8",
    "NumpyCondTable",
    "complement_words",
    "mask_words",
    "pack_mask",
    "pack_masks",
    "popcount_cols",
    "popcount_words",
    "popcount_words_lut",
    "popcount_words_native",
    "tail_mask",
    "unpack_words",
    "word_count",
]

_WORD_BITS = 64
_WORD_BYTES = 8

#: Whether the installed NumPy provides the hardware-popcount ufunc
#: (added in NumPy 2.0); without it the lookup-table fallback runs.
HAS_BITWISE_COUNT = hasattr(np, "bitwise_count")

#: Per-byte popcounts, the lookup table of the pre-2.0 fallback.  The
#: ``bin(i).count("1")`` spelling is the sanctioned construction idiom
#: for vectorized popcount tables (recognized by FRM004): the table is
#: built once at import, never per popcount.
POPCOUNT8 = np.array(
    [bin(value).count("1") for value in range(256)], dtype=np.uint8
)


def word_count(n_rows: int) -> int:
    """How many uint64 words a row set over ``n_rows`` rows packs into."""
    return (n_rows + _WORD_BITS - 1) // _WORD_BITS


def pack_mask(mask: int, width: int) -> np.ndarray:
    """One int row mask as a ``(width,)`` little-endian uint64 array.

    Args:
        mask: non-negative int bitset (bit ``k`` = row ``k``).
        width: word count of the packed layout (``word_count(n_rows)``).

    Returns:
        A read-only ``(width,)`` uint64 array; word ``k // 64`` holds int
        bits ``64k .. 64k+63``.
    """
    return np.frombuffer(
        mask.to_bytes(width * _WORD_BYTES, "little"), dtype=np.uint64
    )


def pack_masks(masks: Sequence[int], width: int) -> np.ndarray:
    """Many int row masks as one C-contiguous ``(len(masks), width)`` array.

    Args:
        masks: non-negative int bitsets.
        width: word count of the packed layout.

    Returns:
        A writable ``(len(masks), width)`` uint64 array, one row per mask.
    """
    if not len(masks):
        return np.zeros((0, width), dtype=np.uint64)
    payload = b"".join(
        mask.to_bytes(width * _WORD_BYTES, "little") for mask in masks
    )
    packed = np.frombuffer(payload, dtype=np.uint64).reshape(
        len(masks), width
    )
    return packed.copy()


def unpack_words(words: np.ndarray) -> int:
    """The int row mask of one packed ``(width,)`` word vector.

    Exact inverse of :func:`pack_mask` (pinned by the property suite).
    """
    return int.from_bytes(np.ascontiguousarray(words).tobytes(), "little")


def tail_mask(n_rows: int, width: int) -> np.ndarray:
    """The packed all-rows mask: valid bits set, tail bits clear.

    The last word of a packed row set over ``n_rows`` rows has
    ``64 * width - n_rows`` bits that correspond to no row; complement
    must never set them (:func:`complement_words`).

    Args:
        n_rows: number of real rows.
        width: word count of the packed layout.

    Returns:
        ``pack_mask((1 << n_rows) - 1, width)``, computed wordwise.
    """
    return pack_mask((1 << n_rows) - 1, width)


def complement_words(words: np.ndarray, n_rows: int) -> np.ndarray:
    """Bitwise complement within the ``n_rows`` universe (tail-masked).

    Args:
        words: packed ``(..., width)`` row sets.
        n_rows: universe size; bits at or above it stay clear.

    Returns:
        ``~words`` with the tail bits of the last word forced to zero —
        the packed mirror of :func:`repro.core.bitset.complement`.
    """
    return ~words & tail_mask(n_rows, words.shape[-1])


def popcount_words_native(words: np.ndarray) -> np.ndarray:
    """Per-mask popcounts via ``np.bitwise_count`` (NumPy 2.0+).

    Args:
        words: ``(..., width)`` packed row sets.

    Returns:
        int64 array of shape ``words.shape[:-1]``: total set bits per
        packed row set.
    """
    return np.bitwise_count(words).sum(axis=-1, dtype=np.int64)


def popcount_words_lut(words: np.ndarray) -> np.ndarray:
    """Per-mask popcounts via the :data:`POPCOUNT8` byte lookup table.

    The fallback for NumPy builds without ``bitwise_count``: reinterpret
    the words as bytes, index the table, sum.  Extensionally equal to
    :func:`popcount_words_native` (pinned by the property suite).

    Args:
        words: ``(..., width)`` packed row sets.

    Returns:
        int64 array of shape ``words.shape[:-1]``.
    """
    flat = np.ascontiguousarray(words)
    # Explicit byte width, not -1: reshape(-1) is ambiguous at size 0.
    as_bytes = flat.view(np.uint8).reshape(
        *flat.shape[:-1], flat.shape[-1] * _WORD_BYTES
    )
    return POPCOUNT8[as_bytes].sum(axis=-1, dtype=np.int64)


popcount_words = (
    popcount_words_native if HAS_BITWISE_COUNT else popcount_words_lut
)
"""Batched per-mask popcount: native ufunc when available, else LUT."""


def popcount_cols(words: np.ndarray) -> np.ndarray:
    """Per-column popcounts of a ``(width, k)`` word-row array.

    The transposed-layout counterpart of :func:`popcount_words`: column
    ``i`` holds one packed row set spread down the rows, so the sum runs
    over axis 0.  Same native/LUT split, pinned extensionally equal to
    ``popcount_words(words.T)`` by the property suite.

    Args:
        words: ``(width, k)`` array, one packed row set per column.

    Returns:
        int64 array of shape ``(k,)``: total set bits per column.
    """
    if HAS_BITWISE_COUNT:
        return np.bitwise_count(words).sum(axis=0, dtype=np.int64)
    flat = np.ascontiguousarray(words)
    as_bytes = flat.view(np.uint8).reshape(
        flat.shape[0], flat.shape[1], _WORD_BYTES
    )
    return POPCOUNT8[as_bytes].sum(axis=(0, 2), dtype=np.int64)


class NumpyCondTable:
    """A conditional transposed table on the packed-uint64 layout.

    The ``engine="numpy"`` implementation of
    :class:`~repro.core.kernel.CondTableProtocol`.  All per-item state
    lives in one C-contiguous uint64 array ``data`` of shape
    ``(width + 1, k)``: item ``i`` is column ``i``, with its packed row
    mask spread down rows ``0..width-1`` and its item id in row
    ``width``.  The transposed ("columnar") orientation makes the hot
    operations walk contiguous memory: extending to a child table is one
    :func:`np.compress` along axis 1, and the AND/OR reductions for the
    child's intersection/union run along contiguous word rows.
    ``inter``/``union``/``full`` are plain Python ints (converted at the
    table boundary), which keeps every consumer of the protocol —
    witness math, memo-cache keys, candidate row masks — byte-identical
    to the kernel engine.

    Item order is support-descending with item-id ties ascending, the
    exact :meth:`~repro.core.kernel.CondTable.build` order, inherited by
    children through filtering; candidates therefore serialize
    identically across engines.  Unlike the kernel table no per-item
    popcounts are kept: the Pruning-3 bound scan
    (:meth:`max_overlap`) is one vectorized AND + popcount + max over
    the whole table, so the early-exit key is dead weight here.

    Instances ride inside :class:`~repro.core.farmer.NodeState` values
    across the worker-process boundary; ``data`` is a plain ndarray and
    the scan fields are ints, so default pickling round-trips (spelled
    out per FRM003).
    """

    __slots__ = ("data", "width", "inter", "union", "full", "_ids_mask")

    def __init__(
        self,
        data: np.ndarray,
        width: int,
        inter: int,
        union: int,
        full: int,
    ) -> None:
        self.data = data
        self.width = width
        self.inter = inter
        self.union = union
        self.full = full
        self._ids_mask: int | None = None

    def __getstate__(self) -> tuple:
        """Picklable state (crosses the worker-process boundary)."""
        return (
            self.data,
            self.width,
            self.inter,
            self.union,
            self.full,
            self._ids_mask,
        )

    def __setstate__(self, state: tuple) -> None:
        """Restore from :meth:`__getstate__`."""
        (
            self.data,
            self.width,
            self.inter,
            self.union,
            self.full,
            self._ids_mask,
        ) = state

    def __len__(self) -> int:
        return self.data.shape[1]

    @property
    def item_ids(self) -> list[int]:
        """Item ids in table order, as plain Python ints.

        Read at candidate emission and by the tracer — a small fraction
        of visited nodes — so the row-to-list conversion is paid rarely
        and never on the per-node hot path.
        """
        return self.data[self.width].tolist()

    @classmethod
    def build(cls, item_masks: Sequence[int], full_mask: int) -> "NumpyCondTable":
        """The packed root table over every item, support-sorted + scanned.

        Mirrors :meth:`repro.core.kernel.CondTable.build` exactly —
        same order (support descending, item id ascending), same
        intersection/union values — on the packed layout.

        Args:
            item_masks: per-item row bitsets in item-id order.
            full_mask: bitset of all rows (``(1 << n_rows) - 1``).

        Returns:
            The fully scanned root table.
        """
        width = word_count(full_mask.bit_count())
        words = pack_masks(item_masks, width)
        if not len(item_masks):
            data = np.zeros((width + 1, 0), dtype=np.uint64)
            return cls(data, width, full_mask, 0, full_mask)
        counts = popcount_words(words)
        ids = np.arange(len(item_masks), dtype=np.uint64)
        # Stable sort on descending count == (-count, id) lexicographic.
        order = np.argsort(-counts, kind="stable")
        data = np.empty((width + 1, len(item_masks)), dtype=np.uint64)
        data[:width] = words[order].T
        data[width] = ids[order]
        inter = unpack_words(np.bitwise_and.reduce(words, axis=0)) & full_mask
        union = unpack_words(np.bitwise_or.reduce(words, axis=0))
        return cls(data, width, inter, union, full_mask)

    def extend(self, row_bit: int) -> "NumpyCondTable":
        """The child table ``TT|X∪{r}`` — one selection, one fused scan.

        The packed mirror of :meth:`repro.core.kernel.CondTable.extend`:
        select the items whose mask contains the row (one
        :func:`np.compress` over columns; a nonzero AND result is the
        membership test), then AND/OR-reduce the survivors' contiguous
        word rows for the child's intersection and union.  Order is
        preserved by the selection.
        """
        row = row_bit.bit_length() - 1
        word_index, bit_index = divmod(row, _WORD_BITS)
        data = self.data
        # ndarray.compress, not np.compress: same op, no dispatch shim —
        # this is the hottest allocation in the engine.
        selected = data.compress(
            data[word_index] & np.uint64(1 << bit_index), axis=1
        )
        width = self.width
        if not selected.shape[1]:
            return NumpyCondTable(selected, width, self.full, 0, self.full)
        words = selected[:width]
        # Reduce outputs are fresh contiguous arrays; convert straight
        # from their bytes (the unpack_words fast path, inlined).
        inter = int.from_bytes(
            np.bitwise_and.reduce(words, axis=1).tobytes(), "little"
        )
        union = int.from_bytes(
            np.bitwise_or.reduce(words, axis=1).tobytes(), "little"
        )
        return NumpyCondTable(selected, width, inter, union, self.full)

    @property
    def ids_mask(self) -> int:
        """The item ids of this table as a bitset (computed lazily)."""
        mask = self._ids_mask
        if mask is None:
            mask = 0
            for item_id in self.item_ids:
                mask |= 1 << item_id
            self._ids_mask = mask
        return mask

    def max_overlap(self, cand_mask: int) -> int:
        """``MAX(|cand ∩ t|)`` over the tuples, as one vectorized pass.

        AND the packed candidate mask against every tuple at once, batch
        the popcounts, take the max — the whole-candidate-list
        replacement for the kernel's early-exiting scan, same value.
        """
        data = self.data
        if not data.shape[1]:
            return 0
        width = self.width
        cand = np.frombuffer(
            cand_mask.to_bytes(width * _WORD_BYTES, "little"), dtype=np.uint64
        )
        overlaps = popcount_cols(data[:width] & cand[:, None])
        return int(overlaps.max())

    def observed_max_overlap(self, cache, cand_mask: int) -> int:
        """:meth:`max_overlap` plus the cache's bound-scan accounting.

        The vectorized scan always touches every tuple, so the scan
        length equals the table length and no early exit is recorded —
        the honest shape of this engine's cost model in the
        ``kernel.bound_*`` telemetry.

        Args:
            cache: the node's :class:`~repro.core.kernel.KernelCache`,
                whose ``bound_*`` counters are advanced.
            cand_mask: candidate row bitset, as in :meth:`max_overlap`.

        Returns:
            ``MAX(|cand ∩ t|)`` over the tuples.
        """
        size = self.data.shape[1]
        cache.bound_scans += 1
        cache.bound_rows_scanned += size
        cache.bound_rows_total += size
        return self.max_overlap(cand_mask)


def mask_words(table: NumpyCondTable) -> list[int]:
    """The table's row masks as ints, in table order (test/debug helper).

    Args:
        table: a packed conditional table.

    Returns:
        One int bitset per item, matching what the kernel table's
        ``masks`` list would hold at the same node.
    """
    width = table.width
    return [
        unpack_words(table.data[:width, index])
        for index in range(table.data.shape[1])
    ]
