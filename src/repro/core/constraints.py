"""User-specified mining constraints (minsup / minconf / minchi).

FARMER prunes its row-enumeration search with three user thresholds
(Section 3.2.3 of the paper): a minimum rule support, a minimum rule
confidence and a minimum chi-square value.  :class:`Constraints` bundles
and validates them, and provides the satisfaction check used by Step 7 of
the algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConstraintError
from .measures import chi_square

__all__ = ["Constraints"]


@dataclass(frozen=True, slots=True)
class Constraints:
    """Thresholds a rule group's upper bound must meet to be reported.

    Attributes:
        minsup: minimum rule support ``|R(A ∪ C)|`` as an absolute row
            count (the paper uses absolute counts throughout; use
            :meth:`from_fraction` for a relative threshold).
        minconf: minimum confidence in ``[0, 1]``.
        minchi: minimum chi-square value (``0`` disables the check, as in
            the paper's Figure 10/11 experiments).
    """

    minsup: int = 1
    minconf: float = 0.0
    minchi: float = 0.0

    def __post_init__(self) -> None:
        if self.minsup < 0:
            raise ConstraintError(f"minsup must be >= 0, got {self.minsup}")
        if not isinstance(self.minsup, int):
            raise ConstraintError(
                f"minsup must be an absolute integer row count, got {self.minsup!r}"
            )
        if not 0.0 <= self.minconf <= 1.0:
            raise ConstraintError(f"minconf must be in [0, 1], got {self.minconf}")
        if self.minchi < 0.0:
            raise ConstraintError(f"minchi must be >= 0, got {self.minchi}")

    @classmethod
    def from_fraction(
        cls,
        n_rows: int,
        minsup_fraction: float,
        minconf: float = 0.0,
        minchi: float = 0.0,
    ) -> "Constraints":
        """Build constraints with ``minsup`` given as a fraction of rows.

        Args:
            n_rows: total row count of the target dataset.
            minsup_fraction: minimum support as a fraction in ``[0, 1]``.
            minconf: minimum confidence in ``[0, 1]``.
            minchi: minimum chi-square value.

        Returns:
            Constraints whose absolute ``minsup`` is the fraction rounded
            up, so a rule satisfying the returned threshold always
            satisfies the fractional one.
        """
        if not 0.0 <= minsup_fraction <= 1.0:
            raise ConstraintError(
                f"minsup_fraction must be in [0, 1], got {minsup_fraction}"
            )
        # Round up: a rule meeting the absolute threshold must also meet
        # the fractional one.
        exact = minsup_fraction * n_rows
        minsup = int(exact)
        if minsup < exact:
            minsup += 1
        return cls(minsup=minsup, minconf=minconf, minchi=minchi)

    def satisfied_by(self, supp: int, supn: int, n: int, m: int) -> bool:
        """Check Step 7's threshold test for a candidate upper bound.

        Args:
            supp: ``|R(A ∪ C)|`` — positive rows matching the antecedent.
            supn: ``|R(A ∪ ¬C)|`` — negative rows matching the antecedent.
            n: total rows in the dataset.
            m: rows labelled with the consequent.

        Returns:
            Whether the candidate meets every enabled threshold.
        """
        if supp < self.minsup:
            return False
        total = supp + supn
        if total == 0:
            return False
        if supp / total < self.minconf:
            return False
        if self.minchi > 0.0 and chi_square(total, supp, n, m) < self.minchi:
            return False
        return True
