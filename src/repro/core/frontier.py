"""Warm re-mining: a persistent frontier cache for constraint changes.

FARMER users explore interactively — nudge ``minsup``/``minconf``/
``minchi`` and look at the rule groups again — but a cold mine restarts
row enumeration from the root every time.  This module makes the second
mine reuse the first one while keeping the answer **byte-identical to a
cold mine**:

* After a cache-miss mine the full *evaluation sequence* — the Step-7
  candidate of every explored node, satisfying or not, in Lemma-3.4
  discovery order — is captured together with the *pruned frontier*:
  the :class:`~repro.core.farmer.NodeState` of every node cut by the
  Pruning-3 bounds, at its exact position in the traversal.  (Pruning-2
  cuts are constraint-independent, so their subtrees stay pruned under
  any constraints and are never recorded.)
* The captured entry is persisted through the checksummed
  :mod:`repro.core.serialize` envelope, keyed by a dataset fingerprint
  plus a constraint key.  Conditional tables are serialized in one
  canonical item order (support descending, item id ascending), so
  entry bytes are engine-invariant and an entry captured under one
  engine resumes under any other.
* A later mine consults the **constraint-delta planner**:

  - *no constraint loosened* — the requested thresholds prune a subtree
    of the captured tree, so the answer is the captured evaluations
    re-filtered through
    :meth:`~repro.core.constraints.Constraints.satisfied_by` and
    replayed through Step-7 admission, with **zero enumeration**;
  - *some constraint loosened* — enumeration resumes **only** from the
    recorded pruned-frontier nodes (serially in capture mode, growing
    the cache, or sharded across workers and the steal scheduler like
    any other subtree list) and the results are spliced into the cached
    sequence at the pruned nodes' recorded positions;
  - *nothing cached* — a cold serial mine runs in capture mode and
    populates the cache.

Correctness rests on two facts.  First, the enumeration tree's shape —
children, Pruning-1 compression, Pruning-2 cuts — and the Pruning-3
bound *values* are constraint-independent; constraints only decide
where bounds fire.  Tightening therefore shrinks the explored tree, so
every node explored under the tighter constraints was already captured.
Second, the bounds are sound: a node pruned under the requested
constraints has no satisfying descendant, so a resumed subtree below a
would-be-pruned ancestor contributes nothing and a cached evaluation
below one fails the filter — spliced output equals the cold traversal
even for mixed (tighten one knob, loosen another) deltas.

Warm results differ from cold ones only in the reported search
*counters* (a filter-only answer expands zero nodes; a resume expands
just the frontier subtrees); the groups, their order, and the saved
``.irgs`` bytes are identical, which the property suite and the perf
gate pin.
"""

from __future__ import annotations

import bisect
import hashlib
import sys
import time
from contextlib import nullcontext
from dataclasses import replace
from pathlib import Path
from typing import TYPE_CHECKING, Sequence

from ..data.transpose import TransposedTable
from ..errors import (
    BudgetExceeded,
    ConstraintError,
    DataError,
    ReproError,
    UsageError,
)
from . import bitset
from .constraints import Constraints
from .enumeration import NodeCounters, merge_counters, scan_items
from .farmer import (
    Candidate,
    NodeState,
    SearchContext,
    _IRGStore,
    expand_node,
)
from .kernel import CondTable, CondTableProtocol, KernelCache
from .serialize import canonical_json, load_checkpoint, save_checkpoint

if TYPE_CHECKING:
    from .farmer import Farmer
    from .parallel import ParallelReport

__all__ = [
    "FRONTIER_KIND",
    "FRONTIER_SUFFIX",
    "cache_entries",
    "entry_path",
    "frontier_fingerprint",
    "load_entry",
    "warm_mine_table",
]

#: Payload tag of one persisted frontier entry (inside the checkpoint
#: envelope of :mod:`repro.core.serialize`); bump on layout changes.
FRONTIER_KIND = "repro-frontier/1"

#: Filename suffix of persisted frontier entries.
FRONTIER_SUFFIX = ".frontier"

#: Unit tag: one explored node's Step-7 evaluation (an EVAL unit).
_EVAL = "e"

#: Unit tag: one bound-pruned node, resumable from its stored state.
_PRUNED = "p"

#: In-memory unit: ``(_EVAL, Candidate)`` or ``(_PRUNED, NodeState)``.
_Unit = "tuple[str, Candidate | NodeState]"


# ----------------------------------------------------------------------
# Keys
# ----------------------------------------------------------------------


def frontier_fingerprint(table: TransposedTable, prunings: Sequence[str]) -> str:
    """The cache key's dataset half: what pins the enumeration tree.

    Covers the dataset constants, the consequent, every item's row
    bitset, the class split and the enabled prunings (prunings change
    the tree shape, so entries are only reusable under the same set).
    The engine is deliberately *not* covered: entries are serialized in
    an engine-invariant canonical form.

    Args:
        table: the transposed table being mined.
        prunings: enabled pruning strategy names.

    Returns:
        A sha256 hex digest.
    """
    payload = [
        table.n,
        table.m,
        str(table.consequent),
        list(table.item_masks),
        table.positive_mask,
        sorted(prunings),
    ]
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def _constraints_key(constraints: Constraints) -> str:
    """The cache key's constraint half (hex digest of the thresholds)."""
    payload = [constraints.minsup, constraints.minconf, constraints.minchi]
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def entry_path(
    directory: str | Path, fingerprint: str, constraints: Constraints
) -> Path:
    """Where the entry for ``(fingerprint, constraints)`` lives on disk.

    The filename carries prefixes of both key halves so the planner can
    glob a dataset's entries cheaply; the full fingerprint is verified
    against the payload after loading.

    Args:
        directory: the warm-cache directory.
        fingerprint: :func:`frontier_fingerprint` of the run.
        constraints: the capture's thresholds.

    Returns:
        The entry's path (the file need not exist).
    """
    name = f"{fingerprint[:20]}-{_constraints_key(constraints)[:20]}"
    return Path(directory) / f"{name}{FRONTIER_SUFFIX}"


# ----------------------------------------------------------------------
# Capture
# ----------------------------------------------------------------------


def _capture(ctx, states, counters, cache, tick, units) -> None:
    """Enumerate ``states`` in capture mode, appending units in place.

    The explicit-stack twin of
    :func:`~repro.core.farmer.enumerate_frontier` (same children-first
    unit order, same per-node accounting), run under a ``record=True``
    context so *every* explored node with non-empty antecedent support
    yields an EVAL unit, and bound-pruned nodes yield PRUNED units at
    their tree position.  Appending into the caller's ``units`` keeps
    the prefix salvageable when a non-strict budget interrupts the walk.
    """
    stack: list[tuple[str, object]] = [("s", state) for state in states]
    stack.reverse()
    while stack:
        tag, payload = stack.pop()
        if tag == _EVAL:
            units.append((_EVAL, payload))
            continue
        counters.nodes += 1
        if tick is not None:
            tick()
        outcome, candidate, children = expand_node(ctx, payload, counters, cache)
        if outcome == "explored":
            if candidate is not None:
                stack.append((_EVAL, candidate))
            for child in reversed(children):
                stack.append(("s", child))
        elif outcome != "pruned:identified":
            units.append((_PRUNED, payload))


def _capture_context(miner: "Farmer", table: TransposedTable, constraints):
    """The ``record=True`` search context of one capture traversal."""
    ctx = SearchContext.for_table(
        table, constraints, miner.prunings, engine=miner.engine
    )
    return replace(ctx, record=True)


# ----------------------------------------------------------------------
# Entry serialization (engine-invariant)
# ----------------------------------------------------------------------


def _table_pairs(table: CondTableProtocol) -> list[list[int]]:
    """One conditional table as canonical ``[item_id, mask]`` pairs.

    Sorted by (support descending, item id ascending) — the kernel
    build order — so entry bytes are identical whichever engine
    captured them, and a kernel table rebuilt from the pairs keeps the
    descending-counts invariant its bound-scan early exit relies on.
    """
    masks = getattr(table, "masks", None)
    if masks is None:
        from . import npbitset

        masks = npbitset.mask_words(table)
    pairs = sorted(
        zip([int(item) for item in table.item_ids], [int(mask) for mask in masks]),
        key=lambda pair: (-pair[1].bit_count(), pair[0]),
    )
    return [[item, mask] for item, mask in pairs]


def _rebuild_table(
    pairs: Sequence[Sequence[int]], full_mask: int, engine: str
) -> CondTableProtocol:
    """One persisted table as the requested engine's conditional table."""
    item_ids = [pair[0] for pair in pairs]
    masks = [pair[1] for pair in pairs]
    if engine == "reference":
        return CondTable.reference(item_ids, masks, full_mask)
    inter, union = scan_items(masks, full_mask)
    if engine == "numpy":
        from .farmer import _load_npbitset

        npbitset = _load_npbitset()
        np = npbitset.np
        width = npbitset.word_count(full_mask.bit_count())
        data = np.empty((width + 1, len(masks)), dtype=np.uint64)
        if masks:
            data[:width] = npbitset.pack_masks(masks, width).T
            data[width] = np.asarray(item_ids, dtype=np.uint64)
        return npbitset.NumpyCondTable(data, width, inter, union, full_mask)
    counts = [mask.bit_count() for mask in masks]
    return CondTable(item_ids, masks, counts, inter, union, full_mask)


def _estimate(state: NodeState) -> int:
    """Subtree-size proxy of one frontier node (remaining candidate rows)."""
    return bitset.bit_count(state.cand_pos | state.cand_neg)


def _encode_units(units) -> tuple[list, list, dict]:
    """``(encoded_units, encoded_tables, stats)`` of one capture.

    Pruned states referencing the same parent table object (siblings
    share it — child tables are lazy) share one entry in the deduped
    table list, indexed in first-encounter order; identity is tracked
    with an object-keyed dict, never via ``id()`` (FRM002), and the
    dict is only probed, never iterated.
    """
    tables: list[CondTableProtocol] = []
    table_index: dict[CondTableProtocol, int] = {}
    encoded: list[list[int | str]] = []
    evals = 0
    pruned = 0
    weight = 0
    for tag, payload in units:
        if tag == _EVAL:
            evals += 1
            encoded.append(
                [_EVAL, payload.item_mask, payload.supp, payload.supn, payload.row_mask]
            )
            continue
        pruned += 1
        weight += _estimate(payload)
        index = table_index.get(payload.table)
        if index is None:
            index = len(tables)
            table_index[payload.table] = index
            tables.append(payload.table)
        encoded.append(
            [
                _PRUNED,
                index,
                payload.row_bit,
                payload.x_mask,
                payload.cand_pos,
                payload.cand_neg,
                payload.p1_removed,
                payload.supp_in,
                payload.supn_in,
                1 if payload.rm_is_positive else 0,
            ]
        )
    stats = {"evals": evals, "pruned": pruned, "frontier_weight": weight}
    return encoded, [_table_pairs(table) for table in tables], stats


def _save_entry(
    directory: Path,
    fingerprint: str,
    constraints: Constraints,
    units,
    nodes: int,
) -> Path:
    """Persist one captured entry through the checkpoint envelope."""
    encoded, tables, stats = _encode_units(units)
    stats["nodes"] = nodes
    payload = {
        "kind": FRONTIER_KIND,
        "fingerprint": fingerprint,
        "constraints": [
            constraints.minsup,
            constraints.minconf,
            constraints.minchi,
        ],
        "tables": tables,
        "units": encoded,
        "stats": stats,
    }
    path = entry_path(directory, fingerprint, constraints)
    save_checkpoint(path, payload)
    return path


def _expect_int(value, what: str, path) -> int:
    """``value`` as a non-bool int, or :class:`~repro.errors.DataError`."""
    if isinstance(value, bool) or not isinstance(value, int):
        raise DataError(f"{path}: frontier entry field {what} is not an int")
    return value


def load_entry(path: str | Path, fingerprint: str) -> dict:
    """Read and validate one frontier entry.

    Args:
        path: the ``.frontier`` file.
        fingerprint: the expected :func:`frontier_fingerprint`; entries
            from other datasets/prunings are rejected.

    Returns:
        The validated payload dict; ``payload["constraints"]`` is
        replaced by a :class:`~repro.core.constraints.Constraints`.

    Raises:
        DataError: corrupt envelope, foreign payload, or malformed
            fields (the planner treats all of these as a cache miss).
        UsageError: an envelope written by a newer format version.
    """
    payload = load_checkpoint(path)
    if payload.get("kind") != FRONTIER_KIND:
        raise DataError(
            f"{path}: not a frontier entry "
            f"(kind {payload.get('kind')!r}, expected {FRONTIER_KIND!r})"
        )
    if payload.get("fingerprint") != fingerprint:
        raise DataError(
            f"{path}: frontier entry belongs to a different dataset or "
            "pruning set"
        )
    raw = payload.get("constraints")
    if not isinstance(raw, list) or len(raw) != 3:
        raise DataError(f"{path}: frontier entry constraints are malformed")
    try:
        payload["constraints"] = Constraints(
            minsup=_expect_int(raw[0], "minsup", path),
            minconf=float(raw[1]),
            minchi=float(raw[2]),
        )
    except (ConstraintError, TypeError, ValueError) as exc:
        raise DataError(f"{path}: bad frontier constraints ({exc})") from exc
    tables = payload.get("tables")
    units = payload.get("units")
    stats = payload.get("stats")
    if (
        not isinstance(tables, list)
        or not isinstance(units, list)
        or not isinstance(stats, dict)
    ):
        raise DataError(f"{path}: frontier entry body is malformed")
    for field in ("evals", "pruned", "nodes", "frontier_weight"):
        _expect_int(stats.get(field), f"stats.{field}", path)
    for unit in units:
        if not isinstance(unit, list) or not unit:
            raise DataError(f"{path}: frontier unit is malformed")
        if unit[0] == _EVAL:
            if len(unit) != 5:
                raise DataError(f"{path}: frontier EVAL unit is malformed")
            for value in unit[1:]:
                _expect_int(value, "eval", path)
        elif unit[0] == _PRUNED:
            if len(unit) != 10:
                raise DataError(f"{path}: frontier PRUNED unit is malformed")
            for value in unit[1:]:
                _expect_int(value, "pruned", path)
            if not 0 <= unit[1] < len(tables):
                raise DataError(f"{path}: frontier table index out of range")
        else:
            raise DataError(f"{path}: unknown frontier unit tag {unit[0]!r}")
    return payload


def cache_entries(
    directory: str | Path, fingerprint: "str | None" = None
) -> list[dict]:
    """Inventory a warm-cache directory: one summary per valid entry.

    This is the registry-keyed view of the cache that long-lived hosts
    (the ``farmer serve`` dataset registry, ``docs/serve.md``) use to
    report which constraint captures exist for a dataset without paying
    for unit decoding: only each entry's envelope, key halves and stats
    block are touched.

    Args:
        directory: the warm-cache directory (missing or empty yields
            ``[]``).
        fingerprint: when given, only entries whose payload fingerprint
            matches exactly (the filename's 20-hex-char prefix is used
            to pre-filter, then verified against the payload).

    Returns:
        Summaries sorted by filename, each with ``path`` (str),
        ``fingerprint``, ``constraints``
        (:class:`~repro.core.constraints.Constraints`) and ``stats``
        (the capture's ``evals`` / ``pruned`` / ``nodes`` /
        ``frontier_weight`` ints).  Corrupt or foreign files are
        skipped, mirroring the planner's miss-on-damage policy.
    """
    root = Path(directory)
    if not root.is_dir():
        return []
    entries: list[dict] = []
    for path in sorted(root.glob(f"*{FRONTIER_SUFFIX}")):
        if fingerprint is not None and not path.name.startswith(
            fingerprint[:20]
        ):
            continue
        try:
            payload = load_checkpoint(path)
        except ReproError:
            continue
        if payload.get("kind") != FRONTIER_KIND:
            continue
        entry_fingerprint = payload.get("fingerprint")
        if not isinstance(entry_fingerprint, str):
            continue
        if fingerprint is not None and entry_fingerprint != fingerprint:
            continue
        raw = payload.get("constraints")
        stats = payload.get("stats")
        if not isinstance(raw, list) or len(raw) != 3:
            continue
        if not isinstance(stats, dict):
            continue
        try:
            constraints = Constraints(
                minsup=_expect_int(raw[0], "minsup", path),
                minconf=float(raw[1]),
                minchi=float(raw[2]),
            )
            summary_stats = {
                field: _expect_int(stats.get(field), f"stats.{field}", path)
                for field in ("evals", "pruned", "nodes", "frontier_weight")
            }
        except (ReproError, TypeError, ValueError):
            continue
        entries.append(
            {
                "path": str(path),
                "fingerprint": entry_fingerprint,
                "constraints": constraints,
                "stats": summary_stats,
            }
        )
    return entries


class _EvalIndex:
    """Support-ordered view of an entry's EVAL units for fast filtering.

    An interactive tighten is answered thousands of times against the
    same entry, so the filter must not pay per-query for the units a
    tighter ``minsup`` excludes.  The index keeps the raw EVAL rows in
    discovery order plus a support-descending permutation:
    ``minsup`` selects a bisected prefix of that permutation (Step 7
    rejects ``supp < minsup`` before anything else), the remaining
    thresholds run only over the prefix, and :class:`Candidate` objects
    are built solely for the survivors.
    """

    __slots__ = ("rows", "order", "neg_supports")

    def __init__(self, units: Sequence[Sequence[int | str]]) -> None:
        self.rows = [unit for unit in units if unit[0] == _EVAL]
        self.order = sorted(
            range(len(self.rows)),
            key=lambda ordinal: (-self.rows[ordinal][2], ordinal),
        )
        self.neg_supports = [-self.rows[ordinal][2] for ordinal in self.order]

    def satisfying(
        self, constraints: Constraints, n: int, m: int
    ) -> "list[Candidate]":
        """The entry's satisfying candidates, in discovery order.

        Args:
            constraints: the requested thresholds.
            n: dataset row count.
            m: rows labelled with the consequent.

        Returns:
            :class:`Candidate` objects for exactly the EVAL units that
            :meth:`~repro.core.constraints.Constraints.satisfied_by`
            admits, ordered as the capture traversal discovered them.
        """
        boundary = bisect.bisect_right(
            self.neg_supports, -constraints.minsup
        )
        passing = sorted(
            ordinal
            for ordinal in self.order[:boundary]
            if constraints.satisfied_by(
                self.rows[ordinal][2], self.rows[ordinal][3], n, m
            )
        )
        return [_eval_candidate(self.rows[ordinal]) for ordinal in passing]


def _eval_candidate(row: Sequence[int | str]) -> Candidate:
    """One raw EVAL unit as a :class:`Candidate` (item ids ascending)."""
    _tag, item_mask, supp, supn, row_mask = row
    return Candidate(
        tuple(bitset.iter_bits(item_mask)), item_mask, supp, supn, row_mask
    )


#: Decoded entries kept in memory, keyed by ``(path, size, mtime_ns)``;
#: a replaced file changes the key, so staleness self-invalidates.  The
#: memo is what makes steady-state re-mines sub-millisecond: the first
#: query against an entry pays the disk read + JSON parse + index
#: build, every later one starts from here.
_entry_memo: "dict[tuple[str, int, int], tuple[dict, _EvalIndex]]" = {}

#: Entries retained in :data:`_entry_memo` (FIFO beyond this).
_MEMO_CAP = 4


def _load_entry_cached(
    path: Path, fingerprint: str
) -> tuple[dict, _EvalIndex]:
    """:func:`load_entry` with the in-process memo in front.

    Args:
        path: the ``.frontier`` file.
        fingerprint: the expected dataset fingerprint.

    Returns:
        ``(payload, index)`` — the validated payload and its
        :class:`_EvalIndex`, both shared across queries (treat as
        read-only).

    Raises:
        DataError: as :func:`load_entry`.
        UsageError: as :func:`load_entry`.
    """
    stat = path.stat()
    key = (str(path), stat.st_size, stat.st_mtime_ns)
    hit = _entry_memo.get(key)
    if hit is not None:
        return hit
    payload = load_entry(path, fingerprint)
    entry = (payload, _EvalIndex(payload["units"]))
    while len(_entry_memo) >= _MEMO_CAP:
        del _entry_memo[next(iter(_entry_memo))]
    _entry_memo[key] = entry
    return entry


def _decode_units(payload: dict, full_mask: int, engine: str) -> list:
    """The entry's in-memory unit list, tables rebuilt for ``engine``."""
    tables = [
        _rebuild_table(pairs, full_mask, engine) for pairs in payload["tables"]
    ]
    units: list[tuple[str, object]] = []
    for unit in payload["units"]:
        if unit[0] == _EVAL:
            _tag, item_mask, supp, supn, row_mask = unit
            units.append(
                (
                    _EVAL,
                    Candidate(
                        tuple(bitset.iter_bits(item_mask)),
                        item_mask,
                        supp,
                        supn,
                        row_mask,
                    ),
                )
            )
            continue
        units.append(
            (
                _PRUNED,
                NodeState(
                    table=tables[unit[1]],
                    row_bit=unit[2],
                    x_mask=unit[3],
                    cand_pos=unit[4],
                    cand_neg=unit[5],
                    p1_removed=unit[6],
                    supp_in=unit[7],
                    supn_in=unit[8],
                    rm_is_positive=bool(unit[9]),
                ),
            )
        )
    return units


# ----------------------------------------------------------------------
# Filter + replay
# ----------------------------------------------------------------------


def _filter_evals(
    units, constraints: Constraints, n: int, m: int
) -> list[Candidate]:
    """The EVAL units satisfying ``constraints``, in recorded order.

    Satisfaction is re-evaluated with the pure
    :meth:`~repro.core.constraints.Constraints.satisfied_by` so the
    filter perturbs no caches or counters.
    """
    return [
        payload
        for tag, payload in units
        if tag == _EVAL and constraints.satisfied_by(payload.supp, payload.supn, n, m)
    ]


def _replay(candidates, store: _IRGStore, counters: NodeCounters) -> None:
    """Step-7 admission over a satisfying candidate sequence, in order."""
    for candidate in candidates:
        store.offer(candidate, counters)


# ----------------------------------------------------------------------
# The planner
# ----------------------------------------------------------------------


def _covers(cached: Constraints, requested: Constraints) -> bool:
    """Whether an entry captured under ``cached`` contains the whole
    tree the ``requested`` constraints would explore (no knob looser)."""
    return (
        cached.minsup <= requested.minsup
        and cached.minconf <= requested.minconf
        and cached.minchi <= requested.minchi
    )


def _meet(cached: Constraints, requested: Constraints) -> Constraints:
    """The elementwise-loosest of two constraint vectors (their meet)."""
    return Constraints(
        minsup=min(cached.minsup, requested.minsup),
        minconf=min(cached.minconf, requested.minconf),
        minchi=min(cached.minchi, requested.minchi),
    )


def _phase(telemetry, name: str):
    """``telemetry.phase(name)`` or a no-op context."""
    return nullcontext() if telemetry is None else telemetry.phase(name)


def _event(telemetry, kind: str, **fields) -> None:
    """Emit one run-log event when telemetry is attached."""
    if telemetry is not None:
        telemetry.event(kind, **fields)


def _set_reuse(telemetry, reused: int, fresh: int) -> None:
    """Publish the ``frontier.reuse_fraction`` gauge (cached evaluations
    over cached evaluations plus freshly expanded nodes)."""
    if telemetry is not None:
        total = reused + fresh
        fraction = reused / total if total else 0.0
        telemetry.registry.set_gauge("frontier.reuse_fraction", fraction)


def warm_mine_table(
    miner: "Farmer", table: TransposedTable
) -> "tuple[_IRGStore, NodeCounters, bool, ParallelReport | None]":
    """Answer one mine through the frontier cache.

    The entry point :meth:`~repro.core.farmer.Farmer.mine_table`
    delegates to when the miner was built with ``warm_cache=``.  Plans
    the cheapest correct strategy for the requested constraints:
    filter-only on a covering entry, frontier resume (serial or
    sharded, following the miner's ``n_workers``/``steal`` settings) on
    any other entry, cold capture on a miss.  Corrupt or foreign cache
    files are skipped, never fatal.

    Args:
        miner: the configured :class:`~repro.core.farmer.Farmer`.
        table: the transposed table to mine.

    Returns:
        ``(store, counters, truncated, report)`` exactly as
        :func:`~repro.core.parallel.mine_table_parallel` returns them;
        ``report`` is ``None`` unless the resume was sharded.  The
        store's entries are byte-identical to a cold mine's; the
        counters reflect only the work a warm answer actually did.
    """
    constraints = miner.constraints
    telemetry = miner.telemetry
    budget = miner.budget
    budget.start()
    directory = Path(miner.warm_cache)
    directory.mkdir(parents=True, exist_ok=True)

    store = _IRGStore()
    counters = NodeCounters()
    if table.n == 0 or not table.item_masks:
        return store, counters, False, None

    fingerprint = frontier_fingerprint(table, miner.prunings)
    entries: list[tuple[Path, dict, _EvalIndex]] = []
    corrupt = 0
    with _phase(telemetry, "plan"):
        for path in sorted(
            directory.glob(f"{fingerprint[:20]}-*{FRONTIER_SUFFIX}")
        ):
            try:
                payload, index = _load_entry_cached(path, fingerprint)
            except (DataError, UsageError):
                corrupt += 1
                continue
            entries.append((path, payload, index))

    covering = [
        entry for entry in entries if _covers(entry[1]["constraints"], constraints)
    ]
    if covering:
        path, payload, index = min(
            covering, key=lambda entry: (entry[1]["stats"]["evals"], entry[0].name)
        )
        return _answer_by_filter(
            miner, table, path, payload, index, store, counters, corrupt
        )
    if entries:
        path, payload, _index = min(
            entries,
            key=lambda entry: (
                entry[1]["stats"]["frontier_weight"],
                entry[0].name,
            ),
        )
        return _answer_by_resume(
            miner, table, directory, fingerprint, path, payload, corrupt
        )
    return _answer_by_capture(
        miner, table, directory, fingerprint, store, counters, corrupt
    )


def _answer_by_filter(
    miner, table, path, payload, index, store, counters, corrupt
):
    """Tightened (or unchanged) constraints: re-filter, zero enumeration.

    Runs entirely off the :class:`_EvalIndex` — no conditional table is
    rebuilt, no engine code runs, and on a warm memo the whole answer
    is a bisected prefix scan plus the Step-7 replay.
    """
    telemetry = miner.telemetry
    with _phase(telemetry, "filter"):
        satisfying = index.satisfying(miner.constraints, table.n, table.m)
        _replay(satisfying, store, counters)
    _event(
        telemetry,
        "cache_hit",
        mode="filter",
        entry=path.name,
        evals=payload["stats"]["evals"],
        satisfying=len(satisfying),
        corrupt=corrupt,
    )
    _set_reuse(telemetry, payload["stats"]["evals"], 0)
    return store, counters, False, None


def _answer_by_resume(
    miner, table, directory, fingerprint, path, payload, corrupt
):
    """Loosened constraints: enumerate only the recorded frontier nodes."""
    telemetry = miner.telemetry
    units = _decode_units(payload, table.all_rows_mask, miner.engine)
    pruned = [state for tag, state in units if tag == _PRUNED]
    _event(
        telemetry,
        "cache_hit",
        mode="resume",
        entry=path.name,
        evals=payload["stats"]["evals"],
        pruned=len(pruned),
        corrupt=corrupt,
    )
    sharded = miner.n_workers is not None
    _event(
        telemetry,
        "frontier_resume",
        units=len(pruned),
        weight=payload["stats"]["frontier_weight"],
        sharded=sharded,
    )
    if sharded:
        result = _resume_sharded(miner, table, units, pruned)
    else:
        result = _resume_serial(
            miner, table, directory, fingerprint, payload, units
        )
    _set_reuse(telemetry, payload["stats"]["evals"], result[1].nodes)
    return result


def _resume_serial(miner, table, directory, fingerprint, payload, units):
    """Serial frontier resume, in capture mode, growing the cache.

    The frontier subtrees are re-enumerated under the *meet* of the
    cached and requested constraints and their unit lists spliced into
    the cached sequence at the pruned nodes' positions; the merged
    capture is persisted as a new entry keyed by the meet (monotone
    cache growth), and the answer is the merged sequence filtered by
    the requested constraints.  A truncating (non-strict) time budget
    salvages the merged prefix but never persists it.
    """
    telemetry = miner.telemetry
    budget = miner.budget
    meet = _meet(payload["constraints"], miner.constraints)
    ctx = _capture_context(miner, table, meet)
    cache = KernelCache()
    counters = NodeCounters()
    merged: list = []
    truncated = False
    with _phase(telemetry, "resume"):
        try:
            for tag, unit_payload in units:
                if tag == _EVAL:
                    merged.append((tag, unit_payload))
                else:
                    _capture(
                        ctx, [unit_payload], counters, cache, budget.tick, merged
                    )
        except BudgetExceeded:
            if budget.strict:
                raise
            truncated = True
    if not truncated:
        _save_entry(directory, fingerprint, meet, merged, counters.nodes)
    store = _IRGStore()
    _replay(
        _filter_evals(merged, miner.constraints, table.n, table.m),
        store,
        counters,
    )
    return store, counters, truncated, None


def _resume_sharded(miner, table, units, pruned):
    """Sharded frontier resume: the pruned nodes become the task list.

    Each recorded frontier node is one
    :class:`~repro.core.parallel._Leaf`, executed under the requested
    constraints by the static or stealing scheduler exactly like a
    decomposition's subtree list; advisory bounds are seeded from the
    cached satisfying evaluations (all of which appear in the final
    sequence, so the usual dominance argument applies).  The stitched
    answer interleaves filtered cached evaluations with each leaf's
    candidates at the recorded positions, then replays Step-7
    admission.  Sharded resumes do not grow the cache (workers return
    satisfying candidates only, not capture units).
    """
    from .parallel import (
        DEFAULT_ADVISORY_CAP,
        DEFAULT_STEAL_QUANTUM,
        AdvisoryBounds,
        ParallelReport,
        RetryPolicy,
        _execute_tasks,
        _execute_tasks_stealing,
        _Leaf,
    )

    telemetry = miner.telemetry
    budget = miner.budget
    constraints = miner.constraints
    n_workers = miner.n_workers if miner.n_workers is not None else 1
    ctx = SearchContext.for_table(
        table, constraints, miner.prunings, engine=miner.engine
    )
    cached = _filter_evals(units, constraints, table.n, table.m)
    advisory_snapshot = None
    if miner.broadcast_bounds:
        bounds = AdvisoryBounds(cap=DEFAULT_ADVISORY_CAP)
        for candidate in cached:
            bounds.extend(
                candidate.item_mask,
                len(candidate.item_ids),
                candidate.confidence,
            )
        advisory_snapshot = bounds.snapshot()
    deadline = (
        time.monotonic() + budget.max_seconds
        if budget.max_seconds is not None
        else None
    )
    retry = miner.retry if miner.retry is not None else RetryPolicy()
    quantum = (
        miner.steal_quantum
        if miner.steal_quantum is not None
        else DEFAULT_STEAL_QUANTUM
    )
    tasks = [_Leaf(state) for state in pruned]
    coordinator = NodeCounters()
    report = ParallelReport(
        n_workers=n_workers,
        broadcast=miner.broadcast_bounds,
        coordinator=coordinator,
    )
    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, table.n * 4 + 1000))
    try:
        with _phase(telemetry, "resume"):
            if tasks:
                if miner.steal and n_workers > 1:
                    truncated = _execute_tasks_stealing(
                        tasks,
                        ctx,
                        n_workers,
                        miner.broadcast_bounds,
                        DEFAULT_ADVISORY_CAP,
                        deadline,
                        budget.strict,
                        quantum,
                        retry=retry,
                        report=report,
                        advisory_snapshot=advisory_snapshot,
                        telemetry=telemetry,
                    )
                else:
                    truncated = _execute_tasks(
                        tasks,
                        ctx,
                        n_workers,
                        miner.broadcast_bounds,
                        DEFAULT_ADVISORY_CAP,
                        deadline,
                        budget.strict,
                        table.n,
                        retry=retry,
                        report=report,
                        advisory_snapshot=advisory_snapshot,
                        telemetry=telemetry,
                    )
            else:
                truncated = False
        with _phase(telemetry, "reduce"):
            replay = NodeCounters()
            store = _IRGStore()
            sequence: list[Candidate] = []
            leaves = iter(tasks)
            for tag, unit_payload in units:
                if tag == _EVAL:
                    if constraints.satisfied_by(
                        unit_payload.supp, unit_payload.supn, table.n, table.m
                    ):
                        sequence.append(unit_payload)
                else:
                    sequence.extend(next(leaves).candidates)
            _replay(sequence, store, replay)
    finally:
        sys.setrecursionlimit(old_limit)
    report.n_tasks = len(tasks)
    report.workers = [leaf.counters for leaf in tasks]
    report.advisory_drops = sum(leaf.drops for leaf in tasks)
    merged = merge_counters([coordinator, replay, *report.workers])
    return store, merged, truncated, report


def _answer_by_capture(
    miner, table, directory, fingerprint, store, counters, corrupt
):
    """Cache miss: a cold serial mine in capture mode populates the cache.

    Capture always runs the generic serial traversal — the fused numpy
    fast path and the sharded pipeline cannot materialize pruned-node
    states — so a miss under ``n_workers`` serializes that one mine;
    every later warm answer shards its resume normally.  Truncated
    captures are answered (the salvaged prefix filters and replays like
    a cold truncated mine) but never persisted.
    """
    telemetry = miner.telemetry
    budget = miner.budget
    ctx = _capture_context(miner, table, miner.constraints)
    cache = KernelCache()
    units: list = []
    truncated = False
    with _phase(telemetry, "capture"):
        try:
            _capture(
                ctx,
                [ctx.root_state(table)],
                counters,
                cache,
                budget.tick,
                units,
            )
        except BudgetExceeded:
            if budget.strict:
                raise
            truncated = True
    if not truncated:
        _save_entry(directory, fingerprint, miner.constraints, units, counters.nodes)
    satisfying = _filter_evals(units, miner.constraints, table.n, table.m)
    _replay(satisfying, store, counters)
    _event(
        telemetry,
        "cache_miss",
        fingerprint=fingerprint[:20],
        corrupt=corrupt,
        evals=sum(1 for tag, _payload in units if tag == _EVAL),
        saved=not truncated,
    )
    _set_reuse(telemetry, 0, counters.nodes)
    return store, counters, truncated, None
