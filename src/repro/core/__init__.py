"""The paper's contribution: FARMER, MineLB and the rule-group model.

Public surface:

* :class:`~repro.core.farmer.Farmer` / :func:`~repro.core.farmer.mine_irgs`
  — the row-enumeration IRG miner (Figure 5).
* :func:`~repro.core.minelb.mine_lower_bounds` — MineLB (Figure 9).
* :class:`~repro.core.rulegroup.RuleGroup`, :class:`~repro.core.rule.Rule`
  — the result model.
* :class:`~repro.core.constraints.Constraints` — minsup/minconf/minchi.
* :mod:`~repro.core.measures` — chi-square and the extended measures.
* :mod:`~repro.core.parallel` — sharded execution across worker
  processes (``Farmer(n_workers=...)``), bit-identical to serial, with
  fault-tolerant retries (:class:`~repro.core.parallel.RetryPolicy`) and
  crash-consistent checkpoint/resume (:mod:`~repro.core.checkpoint`).
"""

from .constraints import Constraints
from .enumeration import NodeCounters, SearchBudget, merge_counters
from .farmer import ALL_PRUNINGS, Farmer, FarmerResult, mine_irgs
from .minelb import attach_lower_bounds, lower_bounds_for_group, mine_lower_bounds
from .checkpoint import CheckpointState
from .parallel import ParallelReport, RetryPolicy, shutdown_workers
from .rule import Rule
from .rulegroup import RuleGroup
from .serialize import load_rule_groups, save_rule_groups
from .validate import validate_group, validate_result

__all__ = [
    "ALL_PRUNINGS",
    "CheckpointState",
    "Constraints",
    "Farmer",
    "FarmerResult",
    "NodeCounters",
    "ParallelReport",
    "RetryPolicy",
    "Rule",
    "RuleGroup",
    "SearchBudget",
    "attach_lower_bounds",
    "load_rule_groups",
    "lower_bounds_for_group",
    "merge_counters",
    "mine_irgs",
    "mine_lower_bounds",
    "save_rule_groups",
    "shutdown_workers",
    "validate_group",
    "validate_result",
]
