"""Rule groups: the paper's central representation (Definition 2.1).

A rule group collects every rule ``A_i -> C`` whose antecedent is
supported by exactly the same set of rows ``R``.  It is fully described by

* its unique **upper bound** — the maximal antecedent, ``I(R)``, which is a
  closed itemset (Lemma 2.1), and
* its **lower bounds** — the minimal antecedents (a.k.a. minimal
  generators), computed separately by :mod:`repro.core.minelb`.

By Lemma 2.2 the members of the group are exactly the itemsets ``A`` with
``lower ⊆ A ⊆ upper`` for some lower bound, and all members share the same
support, confidence and chi-square, so the group's statistics live here
once.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import combinations
from typing import Hashable, Iterator

from ..errors import DataError, UsageError
from . import measures
from .rule import Rule

__all__ = ["RuleGroup", "count_covered_subsets"]


@dataclass(frozen=True, slots=True)
class RuleGroup:
    """A rule group with consequent ``consequent`` (Definition 2.1).

    Attributes:
        upper: antecedent of the unique upper-bound rule (closed itemset).
        consequent: class label shared by every rule in the group.
        rows: the antecedent support set ``R`` as *original* dataset row
            indices (representation-independent, unlike the miners'
            internal ORD bitsets).
        support: ``|R(upper ∪ C)|`` — the group's rule support.
        antecedent_support: ``|R(upper)| = |rows|``.
        n: dataset row count.
        m: rows labelled ``consequent`` in the dataset.
        lower_bounds: minimal generators, or ``None`` when MineLB was not
            run (the paper's Step 3 is optional).
    """

    upper: frozenset[int]
    consequent: Hashable
    rows: frozenset[int]
    support: int
    antecedent_support: int
    n: int
    m: int
    lower_bounds: tuple[frozenset[int], ...] | None = field(default=None)

    def __post_init__(self) -> None:
        if self.antecedent_support != len(self.rows):
            raise DataError(
                f"antecedent_support={self.antecedent_support} but "
                f"|rows|={len(self.rows)}"
            )
        if not 0 <= self.support <= self.antecedent_support:
            raise DataError(
                f"support={self.support} outside [0, {self.antecedent_support}]"
            )
        if self.lower_bounds is not None:
            for bound in self.lower_bounds:
                if not bound <= self.upper:
                    raise DataError(
                        f"lower bound {sorted(bound)} is not a subset of the "
                        f"upper bound {sorted(self.upper)}"
                    )

    # ------------------------------------------------------------------
    # Statistics (shared by every member, Section 2.2)
    # ------------------------------------------------------------------

    @property
    def confidence(self) -> float:
        """Confidence shared by all rules of the group."""
        return measures.confidence(self.antecedent_support, self.support)

    @property
    def chi_square(self) -> float:
        """Chi-square shared by all rules of the group."""
        return measures.chi_square(
            self.antecedent_support, self.support, self.n, self.m
        )

    @property
    def upper_rule(self) -> Rule:
        """The upper-bound rule as a :class:`Rule`."""
        return Rule(
            antecedent=self.upper,
            consequent=self.consequent,
            support=self.support,
            antecedent_support=self.antecedent_support,
            n=self.n,
            m=self.m,
        )

    def lower_rules(self) -> tuple[Rule, ...]:
        """The lower-bound rules as :class:`Rule` objects.

        Raises:
            UsageError: if lower bounds have not been computed.
        """
        if self.lower_bounds is None:
            raise UsageError("lower bounds not computed; run MineLB first")
        return tuple(
            Rule(
                antecedent=bound,
                consequent=self.consequent,
                support=self.support,
                antecedent_support=self.antecedent_support,
                n=self.n,
                m=self.m,
            )
            for bound in self.lower_bounds
        )

    # ------------------------------------------------------------------
    # Membership (Lemma 2.2)
    # ------------------------------------------------------------------

    def contains_antecedent(self, antecedent: frozenset[int]) -> bool:
        """Whether ``antecedent -> consequent`` belongs to this group.

        Requires computed lower bounds.  By Lemma 2.2, membership holds iff
        the antecedent lies between some lower bound and the upper bound.
        """
        if self.lower_bounds is None:
            raise UsageError("lower bounds not computed; run MineLB first")
        if not antecedent <= self.upper:
            return False
        return any(bound <= antecedent for bound in self.lower_bounds)

    def iter_members(self, limit: int | None = None) -> Iterator[frozenset[int]]:
        """Yield member antecedents (smallest first), up to ``limit``.

        Rule groups in microarray data routinely have billions of members
        (the whole point of mining groups instead of rules), so callers
        should pass ``limit`` except on toy data.
        """
        if self.lower_bounds is None:
            raise UsageError("lower bounds not computed; run MineLB first")
        produced = 0
        items = sorted(self.upper)
        for size in range(0, len(items) + 1):
            for subset in combinations(items, size):
                candidate = frozenset(subset)
                if any(bound <= candidate for bound in self.lower_bounds):
                    yield candidate
                    produced += 1
                    if limit is not None and produced >= limit:
                        return

    def member_count(self) -> int:
        """Exact number of member rules, by inclusion-exclusion.

        Counts subsets of the upper bound that contain at least one lower
        bound: ``sum over non-empty subfamilies S of lower bounds of
        (-1)^(|S|+1) * 2^(|upper| - |union(S)|)``.  Exponential in the
        number of lower bounds; fine for reporting, guarded by callers for
        pathological groups.
        """
        if self.lower_bounds is None:
            raise UsageError("lower bounds not computed; run MineLB first")
        return count_covered_subsets(self.upper, self.lower_bounds)

    def format(self, dataset=None) -> str:
        """Readable one-group report, with item names when available."""
        def render(itemset: frozenset[int]) -> str:
            if dataset is not None:
                return dataset.format_itemset(itemset)
            return "{" + ", ".join(str(i) for i in sorted(itemset)) + "}"

        lines = [
            f"upper  : {render(self.upper)} -> {self.consequent}",
            f"stats  : sup={self.support} antecedent_sup="
            f"{self.antecedent_support} conf={self.confidence:.3f} "
            f"chi={self.chi_square:.2f}",
        ]
        if self.lower_bounds is not None:
            for bound in self.lower_bounds:
                lines.append(f"lower  : {render(bound)} -> {self.consequent}")
        return "\n".join(lines)


def count_covered_subsets(
    upper: frozenset[int], lower_bounds: tuple[frozenset[int], ...]
) -> int:
    """Count subsets of ``upper`` containing at least one lower bound."""
    total = 0
    bounds = list(lower_bounds)
    for family_size in range(1, len(bounds) + 1):
        sign = 1 if family_size % 2 == 1 else -1
        for family in combinations(bounds, family_size):
            union = frozenset().union(*family)
            total += sign * (1 << (len(upper) - len(union)))
    return total
