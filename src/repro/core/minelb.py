"""MineLB: computing the lower bounds of a rule group (Section 3.4).

Given the upper bound ``A`` of a rule group (a closed set, Definition
3.3), its lower bounds are the *minimal* subsets ``l ⊆ A`` with
``R(l) = R(A)``.  Equivalently — and this is what MineLB exploits — ``l``
must not be contained in ``I(r) ∩ A`` for any row ``r`` outside ``R(A)``:
if it were, ``r`` would support ``l`` and enlarge ``R(l)``.

MineLB (Figure 9 in the paper) processes the *outside* closed sets
``A' = I(r) ∩ A`` incrementally, maintaining the current set of minimal
itemsets ``Γ`` that avoid every ``A'`` seen so far:

* bounds already not contained in ``A'`` stay (Γ2);
* bounds swallowed by ``A'`` (Γ1) are repaired by appending one item from
  ``A − A'`` (Lemma 3.10), keeping only candidates that do not cover a
  surviving bound or another candidate.

Only the *maximal* outside sets matter (Lemma 3.11), so they are filtered
first.  Itemsets are manipulated as bitmasks over a dense re-indexing of
``A``'s items, which keeps the cover checks cheap.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..data.dataset import ItemizedDataset
from . import bitset
from .rulegroup import RuleGroup

__all__ = ["mine_lower_bounds", "lower_bounds_for_group", "attach_lower_bounds"]


def _maximal_only(masks: set[int]) -> list[int]:
    """Keep the subset-maximal masks of a family (Lemma 3.11)."""
    ordered = sorted(masks, key=lambda mask: -bitset.bit_count(mask))
    kept: list[int] = []
    for mask in ordered:
        if not any(mask & keeper == mask for keeper in kept):
            kept.append(mask)
    return kept


def mine_lower_bounds(
    upper: frozenset[int],
    outside_itemsets: Iterable[frozenset[int]],
) -> tuple[frozenset[int], ...]:
    """Minimal generators of ``upper`` given the outside row itemsets.

    Args:
        upper: the closed set ``A`` (antecedent of the upper-bound rule).
        outside_itemsets: ``I(r)`` for every row ``r`` outside ``R(A)``
            (full row itemsets are fine — they are intersected with ``A``
            here).

    Returns:
        The lower bounds, each a subset of ``upper``, sorted for
        determinism (by size, then lexicographically).

    Lower bounds are minimal among *non-empty* antecedents, matching the
    paper's initialization with singletons: when ``outside_itemsets`` is
    empty (``R(upper)`` is the whole dataset) the mathematical minimum
    would be ``∅``, but the empty rule is never reported, so the
    singletons of ``upper`` are returned instead.  The empty upper bound
    has itself as its only generator.
    """
    items = sorted(upper)
    if not items:
        return (frozenset(),)
    position = {item: index for index, item in enumerate(items)}
    full = bitset.universe(len(items))

    outside_masks: set[int] = set()
    for row_items in outside_itemsets:
        mask = 0
        for item in row_items:
            index = position.get(item)
            if index is not None:
                mask |= 1 << index
        if mask != full:
            outside_masks.add(mask)
        # mask == full would mean the row supports all of A, i.e. the row
        # is inside R(A); callers only pass outside rows, but tolerate it.

    closed_sets = _maximal_only(outside_masks)

    # Step 1 of Figure 9: initialize with the singletons of A.
    gamma: list[int] = [1 << index for index in range(len(items))]

    # Step 3: add each maximal outside closed set incrementally.
    for closed in closed_sets:
        gamma_1 = [bound for bound in gamma if bound & closed == bound]
        gamma_2 = [bound for bound in gamma if bound & closed != bound]
        if not gamma_1:
            continue
        candidates: set[int] = set()
        missing = full & ~closed
        for bound in gamma_1:
            for item_bit in bitset.singletons(missing):
                candidates.add(bound | item_bit)
        # Keep a candidate iff nothing smaller already covers it.  It is
        # enough to test against surviving bounds (Γ2 plus the candidates
        # accepted so far, processed smallest-first): if a *rejected*
        # smaller candidate were contained in it, whatever rejected that
        # candidate is also contained in it and rejects it here too.
        # Bounds are indexed by their lowest item — a bound contained in
        # the candidate necessarily has its lowest item among the
        # candidate's items — which turns the quadratic antichain check
        # into a few short bucket scans per candidate.
        gamma = list(gamma_2)
        cover_index: dict[int, list[int]] = {}
        for bound in gamma_2:
            cover_index.setdefault(bound & -bound, []).append(bound)
        for candidate in sorted(candidates, key=bitset.bit_count):
            covered = False
            remaining = candidate
            while remaining and not covered:
                low = remaining & -remaining
                remaining ^= low
                for bound in cover_index.get(low, ()):
                    if bound & candidate == bound:
                        covered = True
                        break
            if not covered:
                gamma.append(candidate)
                cover_index.setdefault(candidate & -candidate, []).append(
                    candidate
                )

    bounds = [
        frozenset(items[index] for index in bitset.iter_bits(mask))
        for mask in gamma
    ]
    bounds.sort(key=lambda bound: (len(bound), sorted(bound)))
    return tuple(bounds)


def lower_bounds_for_group(
    dataset: ItemizedDataset, group: RuleGroup
) -> tuple[frozenset[int], ...]:
    """Lower bounds of ``group`` against its source dataset.

    Collects ``I(r)`` for every row outside the group's antecedent support
    set (Step 2 of Figure 9) and delegates to :func:`mine_lower_bounds`.

    Args:
        dataset: the itemized table the group was mined from.
        group: the rule group whose bounds to compute.

    Returns:
        The group's lower bounds, smallest-first.
    """
    outside = (
        dataset.rows[index]
        for index in range(dataset.n_rows)
        if index not in group.rows
    )
    return mine_lower_bounds(group.upper, outside)


def attach_lower_bounds(dataset: ItemizedDataset, group: RuleGroup) -> RuleGroup:
    """Return a copy of ``group`` with its ``lower_bounds`` populated."""
    return RuleGroup(
        upper=group.upper,
        consequent=group.consequent,
        rows=group.rows,
        support=group.support,
        antecedent_support=group.antecedent_support,
        n=group.n,
        m=group.m,
        lower_bounds=lower_bounds_for_group(dataset, group),
    )
