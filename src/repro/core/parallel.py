"""Sharded row enumeration: FARMER across worker processes.

The row-enumeration tree of Figure 5 is embarrassingly shardable — each
subtree conditions an independent transposed table carried entirely in its
:class:`~repro.core.farmer.NodeState` — but the Step 7 interestingness
filter is not: admitting ``I(X) -> C`` requires every rule group with a
strictly smaller antecedent to be known (Lemma 3.4).  The executor here
therefore splits the *search* and keeps the *admission* serial:

1. **Decompose** (coordinator).  Expand the tree from the root, always
   expanding the frontier node with the largest estimated subtree, until
   roughly ``chunk_factor x n_workers`` frontier subtrees exist.  A plain
   first-level split would be badly unbalanced (the subtree of the first
   ORD row covers half the unpruned tree), so large subtrees are split
   again; every frontier node becomes one task in a chunked work queue.

2. **Execute** (workers).  Each worker runs the exact serial traversal of
   its subtree (:func:`repro.core.farmer.enumerate_subtree`), collecting
   every threshold-satisfying Step 7 candidate in discovery order.  No
   admission decisions are taken in parallel.

3. **Reduce** (deterministic).  The per-task candidate sequences are
   stitched back together in serial traversal order — children before
   their parent, subtrees in ORD order — and replayed through the serial
   Step 7 store (:meth:`_IRGStore.offer`).  The concatenation equals the
   serial miner's discovery sequence, so the admitted groups, their store
   order, and the merged counters are bit-identical to a serial run,
   independent of worker count and OS scheduling.

**Advisory bound broadcast.**  With every task dispatch the coordinator
ships a snapshot of the dominance bounds accumulated so far — the
``(confidence, antecedent mask, antecedent size)`` table of candidates
already recorded by finished tasks, ordered like the Step 7 store.  A
worker drops (and counts as rejected) any candidate covered by a strictly
smaller recorded antecedent with confidence at least as high: such a
candidate is provably rejected by the final replay, because its dominator
— or, chasing rejections, some admitted dominator of that dominator — is
a constraint-satisfying group with a strictly smaller antecedent, and
Lemma 3.4 places every such group before the candidate in the replay
sequence.  The bounds are purely advisory: a stale snapshot only means a
doomed candidate is buffered and shipped before the replay rejects it.
Work done (nodes, prunings) is identical either way; the test suite pins
merged counters to the serial miner's with the broadcast on and off.

Worker pools are forked lazily and cached per worker count so repeated
mining calls (parameter sweeps, test grids) do not pay process start-up
each time; :func:`shutdown_workers` tears them down.
"""

from __future__ import annotations

import bisect
import heapq
import multiprocessing
import sys
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from ..data.transpose import TransposedTable
from ..errors import BudgetExceeded, ConstraintError
from . import bitset
from .constraints import Constraints
from .enumeration import NodeCounters, SearchBudget, merge_counters
from .farmer import (
    ALL_PRUNINGS,
    Candidate,
    NodeState,
    SearchContext,
    _IRGStore,
    enumerate_subtree,
    expand_node,
)

__all__ = [
    "AdvisoryBounds",
    "ParallelReport",
    "mine_table_parallel",
    "shutdown_workers",
]

#: Frontier subtrees generated per worker: the chunked work queue keeps
#: this many tasks per process so stragglers rebalance dynamically.
DEFAULT_CHUNK_FACTOR = 4

#: Maximum entries in a broadcast bounds snapshot.  Dominators are kept
#: in confidence-descending order, so the cap drops the weakest bounds
#: first; capping is safe because the bounds are advisory.
DEFAULT_ADVISORY_CAP = 256


class AdvisoryBounds:
    """Cross-subtree dominance bounds (the broadcast Step 7 prefilter).

    The same confidence-descending parallel-array layout (and prefix
    scan) as :class:`~repro.core.farmer._IRGStore`, but holding *recorded
    candidates* rather than admitted groups — that is sufficient: see the
    module docstring for why a covered candidate is provably rejected by
    the admission replay.
    """

    __slots__ = ("neg_confidences", "item_masks", "sizes", "cap", "drops", "_members")

    def __init__(
        self,
        entries: Iterable[tuple[float, int, int]] = (),
        cap: int = DEFAULT_ADVISORY_CAP,
    ) -> None:
        """``entries`` are ``(neg_confidence, item_mask, size)`` triples
        already sorted by ``neg_confidence`` (a snapshot)."""
        self.neg_confidences: list[float] = []
        self.item_masks: list[int] = []
        self.sizes: list[int] = []
        self.cap = cap
        #: Candidates dropped against these bounds (diagnostics).
        self.drops = 0
        self._members: set[int] = set()
        for neg_confidence, item_mask, size in entries:
            self.neg_confidences.append(neg_confidence)
            self.item_masks.append(item_mask)
            self.sizes.append(size)
            self._members.add(item_mask)

    def __len__(self) -> int:
        return len(self.neg_confidences)

    def covers(self, item_mask: int, size: int, confidence: float) -> bool:
        """Whether some recorded strictly-smaller antecedent dominates."""
        boundary = bisect.bisect_right(self.neg_confidences, -confidence)
        masks = self.item_masks
        stored_sizes = self.sizes
        for index in range(boundary):
            if (
                stored_sizes[index] < size
                and masks[index] & item_mask == masks[index]
            ):
                return True
        return False

    def extend(self, item_mask: int, size: int, confidence: float) -> None:
        """Record one candidate as a future dominator (capped)."""
        if item_mask in self._members:
            return
        neg_confidence = -confidence
        if len(self.neg_confidences) >= self.cap:
            # Full: only displace the weakest bound for a stronger one.
            if neg_confidence >= self.neg_confidences[-1]:
                return
            self._members.discard(self.item_masks[-1])
            del self.neg_confidences[-1], self.item_masks[-1], self.sizes[-1]
        position = bisect.bisect_right(self.neg_confidences, neg_confidence)
        self.neg_confidences.insert(position, neg_confidence)
        self.item_masks.insert(position, item_mask)
        self.sizes.insert(position, size)
        self._members.add(item_mask)

    def snapshot(self) -> list[tuple[float, int, int]]:
        """A picklable copy for shipping with a task dispatch."""
        return list(zip(self.neg_confidences, self.item_masks, self.sizes))


@dataclass
class ParallelReport:
    """Diagnostics of one sharded mining run.

    Attributes:
        n_workers: worker processes requested (1 = inline execution).
        broadcast: whether advisory bounds were shared with workers.
        coordinator: counters for the nodes the coordinator expanded
            while decomposing the tree into tasks.
        n_tasks: frontier subtrees placed on the work queue.
        workers: per-task counters, in dispatch (largest-first) order.
        advisory_drops: candidates dropped against broadcast bounds
            instead of being buffered for the reduce.
    """

    n_workers: int
    broadcast: bool
    coordinator: NodeCounters
    n_tasks: int = 0
    workers: list[NodeCounters] = field(default_factory=list)
    advisory_drops: int = 0


class _Leaf:
    """A frontier subtree: one work-queue task, result attached in place."""

    __slots__ = ("state", "candidates", "counters")

    def __init__(self, state: NodeState) -> None:
        self.state = state
        self.candidates: list[Candidate] = []
        self.counters = NodeCounters()


class _Branch:
    """A coordinator-expanded node: its own candidate plus ordered children."""

    __slots__ = ("candidate", "children")

    def __init__(self, candidate: Candidate | None) -> None:
        self.candidate = candidate
        self.children: list[object] = []


def _estimate(state: NodeState) -> int:
    """Subtree-size proxy for load balancing: remaining candidate rows."""
    return bitset.bit_count(state.cand_pos | state.cand_neg)


class _DeadlineTicker:
    """Per-node budget hook: check the monotonic clock every 256 nodes."""

    __slots__ = ("deadline", "ticks")

    def __init__(self, deadline: float) -> None:
        self.deadline = deadline
        self.ticks = 0

    def __call__(self) -> None:
        self.ticks += 1
        if self.ticks % 256 == 0 and time.monotonic() > self.deadline:
            raise BudgetExceeded(
                "time budget exceeded in sharded search",
                nodes_expanded=self.ticks,
            )


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def _run_subtree_task(
    ctx: SearchContext,
    state: NodeState,
    snapshot: list[tuple[float, int, int]] | None,
    advisory_cap: int,
    deadline: float | None,
    strict: bool,
    n_rows: int,
) -> tuple[list[Candidate], NodeCounters, int, bool]:
    """Executed in a worker process: serial traversal of one subtree."""
    sys.setrecursionlimit(max(sys.getrecursionlimit(), n_rows * 4 + 1000))
    counters = NodeCounters()
    sink: list[Candidate] = []
    advisory = (
        AdvisoryBounds(snapshot, cap=advisory_cap) if snapshot is not None else None
    )
    tick = _DeadlineTicker(deadline) if deadline is not None else None
    truncated = False
    try:
        enumerate_subtree(ctx, state, counters, sink, advisory, tick)
    except BudgetExceeded:
        if strict:
            raise
        truncated = True
    drops = advisory.drops if advisory is not None else 0
    return sink, counters, drops, truncated


# ----------------------------------------------------------------------
# Worker pool management
# ----------------------------------------------------------------------

_EXECUTORS: dict[int, ProcessPoolExecutor] = {}


def _get_executor(n_workers: int) -> ProcessPoolExecutor:
    executor = _EXECUTORS.get(n_workers)
    if executor is None:
        method = (
            "fork" if "fork" in multiprocessing.get_all_start_methods() else None
        )
        executor = ProcessPoolExecutor(
            max_workers=n_workers, mp_context=multiprocessing.get_context(method)
        )
        _EXECUTORS[n_workers] = executor
    return executor


def shutdown_workers() -> None:
    """Tear down the cached worker pools (for tests and embedders)."""
    while _EXECUTORS:
        _, executor = _EXECUTORS.popitem()
        executor.shutdown(wait=True, cancel_futures=True)


# ----------------------------------------------------------------------
# Coordinator side
# ----------------------------------------------------------------------


def _decompose(
    ctx: SearchContext,
    root_state: NodeState,
    coordinator: NodeCounters,
    target: int,
    expansion_cap: int,
    deadline: float | None,
    strict: bool,
) -> tuple[object, list[_Leaf], bool]:
    """Expand the tree until ``target`` frontier subtrees exist.

    Always expands the frontier node with the largest estimated subtree
    (deterministic; ties broken by creation order), performing the full
    per-node work — prunings, candidate emission — for expanded nodes.
    The decomposition does not affect the mined output: any frontier
    reassembles to the serial candidate sequence in the reduce.

    Returns ``(plan_root, tasks, truncated)`` with tasks in dispatch
    (largest-first) order.
    """
    root: object = _Leaf(root_state)
    heap: list[tuple[int, int, _Leaf, list[object] | None, int]] = [
        (-_estimate(root_state), 0, root, None, 0)
    ]
    sequence = 1
    n_leaves = 1
    expanded = 0
    truncated = False
    while heap and n_leaves < target and expanded < expansion_cap:
        if deadline is not None and time.monotonic() > deadline:
            if strict:
                raise BudgetExceeded(
                    "time budget exceeded while sharding the search",
                    nodes_expanded=expanded,
                )
            truncated = True
            break
        _, _, leaf, parent_children, index = heapq.heappop(heap)
        coordinator.nodes += 1
        expanded += 1
        _outcome, candidate, children = expand_node(ctx, leaf.state, coordinator)
        branch = _Branch(candidate)
        if parent_children is None:
            root = branch
        else:
            parent_children[index] = branch
        n_leaves -= 1
        for child_state in children:
            child = _Leaf(child_state)
            branch.children.append(child)
            heapq.heappush(
                heap,
                (
                    -_estimate(child_state),
                    sequence,
                    child,
                    branch.children,
                    len(branch.children) - 1,
                ),
            )
            sequence += 1
            n_leaves += 1
    tasks = [entry[2] for entry in sorted(heap)]
    return root, tasks, truncated


def _execute_tasks(
    tasks: Sequence[_Leaf],
    ctx: SearchContext,
    n_workers: int,
    broadcast: bool,
    advisory_cap: int,
    deadline: float | None,
    strict: bool,
    n_rows: int,
) -> tuple[bool, int]:
    """Run every task, inline (1 worker) or on the process pool.

    Results are attached to the leaves in place.  Returns
    ``(truncated, advisory_drops)``.
    """
    advisory = AdvisoryBounds(cap=advisory_cap) if broadcast else None
    truncated = False

    if n_workers == 1:
        tick = _DeadlineTicker(deadline) if deadline is not None else None
        for leaf in tasks:
            if truncated:
                break
            try:
                enumerate_subtree(
                    ctx, leaf.state, leaf.counters, leaf.candidates, advisory, tick
                )
            except BudgetExceeded:
                if strict:
                    raise
                truncated = True
        return truncated, advisory.drops if advisory is not None else 0

    executor = _get_executor(n_workers)
    pending = list(tasks)
    futures: dict = {}
    drops = 0
    error: BudgetExceeded | None = None

    def submit(leaf: _Leaf) -> None:
        snapshot = advisory.snapshot() if advisory is not None else None
        future = executor.submit(
            _run_subtree_task,
            ctx,
            leaf.state,
            snapshot,
            advisory_cap,
            deadline,
            strict,
            n_rows,
        )
        futures[future] = leaf

    for leaf in pending[:n_workers]:
        submit(leaf)
    del pending[:n_workers]

    while futures:
        done, _ = wait(list(futures), return_when=FIRST_COMPLETED)
        for future in done:
            leaf = futures.pop(future)
            try:
                sink, counters, task_drops, task_truncated = future.result()
            except BudgetExceeded as exc:
                # Strict budget tripped in a worker: stop feeding the
                # queue, drain what is already running, then re-raise.
                error = exc
                pending.clear()
                continue
            leaf.candidates = sink
            leaf.counters = counters
            drops += task_drops
            truncated = truncated or task_truncated
            if advisory is not None:
                for candidate in sink:
                    advisory.extend(
                        candidate.item_mask,
                        len(candidate.item_ids),
                        candidate.confidence,
                    )
            if pending and error is None and not truncated:
                if deadline is not None and time.monotonic() > deadline:
                    if strict:
                        error = BudgetExceeded(
                            "time budget exceeded in sharded search"
                        )
                        pending.clear()
                        continue
                    truncated = True
                    continue
                submit(pending.pop(0))
    if error is not None:
        raise error
    return truncated, drops


def _assemble(plan: object, out: list[Candidate]) -> None:
    """In-order reassembly: children first, own candidate last.

    Restores exactly the serial miner's candidate discovery sequence
    (post-order over the enumeration tree, subtrees in ORD order).
    """
    if isinstance(plan, _Leaf):
        out.extend(plan.candidates)
        return
    for child in plan.children:  # type: ignore[attr-defined]
        _assemble(child, out)
    if plan.candidate is not None:  # type: ignore[attr-defined]
        out.append(plan.candidate)


def mine_table_parallel(
    table: TransposedTable,
    *,
    constraints: Constraints,
    prunings: Iterable[str] = ALL_PRUNINGS,
    n_workers: int = 2,
    budget: SearchBudget | None = None,
    broadcast: bool = True,
    chunk_factor: int = DEFAULT_CHUNK_FACTOR,
    advisory_cap: int = DEFAULT_ADVISORY_CAP,
    expansion_cap: int | None = None,
) -> tuple[_IRGStore, NodeCounters, bool, ParallelReport]:
    """Mine ``table`` with the sharded decompose/execute/reduce pipeline.

    Returns ``(store, merged_counters, truncated, report)``; the store's
    entries (and therefore the built rule groups, their order, and the
    merged counters of a completed run) are bit-identical to the serial
    :class:`~repro.core.farmer.Farmer` on the same input, for every
    ``n_workers`` and any scheduling.

    Only wall-clock budgets are supported here: ``max_seconds`` becomes a
    shared deadline (strict budgets raise
    :class:`~repro.errors.BudgetExceeded`; non-strict ones truncate).
    ``max_nodes`` raises :class:`~repro.errors.ConstraintError` — deterministic node accounting
    needs the serial traversal, and :class:`Farmer` routes such budgets
    there automatically.
    """
    if n_workers < 1:
        raise ConstraintError(f"n_workers must be >= 1, got {n_workers}")
    deadline = None
    strict = True
    if budget is not None:
        if budget.max_nodes is not None:
            raise ConstraintError(
                "node budgets require the serial miner "
                "(deterministic node accounting)"
            )
        budget.start()
        strict = budget.strict
        if budget.max_seconds is not None:
            deadline = time.monotonic() + budget.max_seconds

    ctx = SearchContext.for_table(table, constraints, prunings)
    coordinator = NodeCounters()
    store = _IRGStore()
    report = ParallelReport(
        n_workers=n_workers, broadcast=broadcast, coordinator=coordinator
    )
    if table.n == 0 or not table.item_masks:
        return store, merge_counters([coordinator]), False, report

    target = max(2, chunk_factor * n_workers)
    cap = expansion_cap if expansion_cap is not None else max(4 * target, 64)

    old_limit = sys.getrecursionlimit()
    sys.setrecursionlimit(max(old_limit, table.n * 4 + 1000))
    try:
        plan, tasks, truncated = _decompose(
            ctx, ctx.root_state(table), coordinator, target, cap, deadline, strict
        )
        drops = 0
        if tasks and not truncated:
            task_truncated, drops = _execute_tasks(
                tasks, ctx, n_workers, broadcast, advisory_cap, deadline, strict,
                table.n,
            )
            truncated = truncated or task_truncated
        replay = NodeCounters()
        sequence: list[Candidate] = []
        _assemble(plan, sequence)
        for candidate in sequence:
            store.offer(candidate, replay)
    finally:
        sys.setrecursionlimit(old_limit)

    report.n_tasks = len(tasks)
    report.workers = [leaf.counters for leaf in tasks]
    report.advisory_drops = drops
    merged = merge_counters([coordinator, replay, *report.workers])
    return store, merged, truncated, report
